"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.core.quantities import DPCQuantities


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def blobs():
    """Three well-separated Gaussian blobs + sprinkled noise (~320 points)."""
    r = np.random.default_rng(7)
    return np.concatenate(
        [
            r.normal([0.0, 0.0], 0.3, size=(110, 2)),
            r.normal([4.0, 4.0], 0.4, size=(130, 2)),
            r.normal([8.0, 0.0], 0.25, size=(60, 2)),
            r.uniform(-1.0, 9.0, size=(20, 2)),
        ]
    )


@pytest.fixture
def blobs_quantities(blobs):
    """Baseline (ρ, δ, μ) for the blobs fixture at dc = 0.5."""
    return naive_quantities(blobs, 0.5)


def assert_quantities_equal(a: DPCQuantities, b: DPCQuantities) -> None:
    """Bit-exact equality of two quantity triples (the exactness contract)."""
    np.testing.assert_array_equal(a.rho, b.rho, err_msg="rho differs")
    np.testing.assert_array_equal(a.delta, b.delta, err_msg="delta differs")
    np.testing.assert_array_equal(a.mu, b.mu, err_msg="mu differs")


def safe_dc(points: np.ndarray, fraction: float = 0.3) -> float:
    """A dc that no pairwise distance sits near (for FP-robust exact tests).

    Takes the ``fraction`` quantile of the pairwise distances and moves it to
    the midpoint of the two unique distances bracketing it, so boundary
    comparisons (< dc) can never flip between code paths.
    """
    from repro.geometry.distance import pairwise_distances

    d = pairwise_distances(points)
    iu = np.triu_indices(len(points), k=1)
    flat = np.unique(d[iu])
    if len(flat) < 2:
        return float(flat[0] if len(flat) else 1.0) or 1.0
    idx = int(np.clip(round(fraction * (len(flat) - 1)), 0, len(flat) - 2))
    return float((flat[idx] + flat[idx + 1]) / 2.0)
