"""Integration tests for the τ-approximation (paper §3.3 + Figure 10)."""

import numpy as np
import pytest

from repro.core.assignment import assign_labels
from repro.core.baseline import naive_quantities
from repro.core.decision import select_centers_top_k
from repro.core.quantities import NO_NEIGHBOR
from repro.datasets.loaders import load_dataset
from repro.indexes.rn_list import RNListIndex
from repro.indexes.rtree import RTreeIndex
from repro.metrics.pair_metrics import pairwise_precision_recall_f1


def cluster_with(index_quantities, k, points):
    centers = select_centers_top_k(index_quantities, k)
    return assign_labels(index_quantities, centers, points=points)


class TestQualityVsTau:
    @pytest.mark.parametrize("name,k", [("birch", 30), ("s1", 15)])
    def test_tau_above_dc_reproduces_exact_clustering(self, name, k):
        ds = load_dataset(name, n=1500, seed=0)
        dc = ds.params.dc_default
        exact = RTreeIndex().fit(ds.points).quantities(dc)
        labels_ref = cluster_with(exact, k, ds.points)

        tau = dc * 3.0
        approx = RNListIndex(tau=tau).fit(ds.points).quantities(dc)
        labels = cluster_with(approx, k, ds.points)
        _, _, f1 = pairwise_precision_recall_f1(labels_ref, labels)
        assert f1 > 0.9, f"F1 {f1} too low for tau = 3 dc on {name}"

    def test_tiny_tau_degrades_quality(self):
        ds = load_dataset("birch", n=1500, seed=0)
        dc = ds.params.dc_default
        exact = RTreeIndex().fit(ds.points).quantities(dc)
        labels_ref = cluster_with(exact, 30, ds.points)

        f1s = []
        for tau in (dc / 10.0, dc * 3.0):
            approx = RNListIndex(tau=tau).fit(ds.points).quantities(dc)
            labels = cluster_with(approx, 30, ds.points)
            _, _, f1 = pairwise_precision_recall_f1(labels_ref, labels)
            f1s.append(f1)
        assert f1s[0] < f1s[1], "quality must drop when tau falls below dc"

    def test_rho_error_only_above_tau(self, blobs):
        tau = 1.0
        index = RNListIndex(tau=tau).fit(blobs)
        below = index.rho_all(0.8)
        np.testing.assert_array_equal(below, naive_quantities(blobs, 0.8).rho)
        above = index.rho_all(2.0)
        true_above = naive_quantities(blobs, 2.0).rho
        assert (above <= true_above).all()  # truncation only undercounts
        assert (above < true_above).any()


class TestProbeEconomy:
    def test_fraction_of_index_probed_is_small(self):
        """Paper §5.4: ~1-3% of the (reduced) index probed per query run."""
        ds = load_dataset("range", n=2000, seed=0)
        params = ds.params
        n = ds.n
        index = RNListIndex(tau=params.tau_star).fit(ds.points)
        index.reset_stats()
        index.quantities(params.dc_default)
        scanned = index.stats().objects_scanned
        # The δ scan touches a small multiple of n entries — a vanishing
        # fraction of the full N-List index (n(n-1) entries) the paper's
        # probe percentages are measured against.
        assert scanned < 0.02 * n * (n - 1)
        assert scanned / n < 64  # expected-constant probes per object

    def test_truncated_peak_count_small(self):
        ds = load_dataset("birch", n=1500, seed=0)
        index = RNListIndex(tau=ds.params.tau_star).fit(ds.points)
        q = index.quantities(ds.params.dc_default)
        unresolved = (q.mu == NO_NEIGHBOR).sum()
        assert unresolved < len(ds.points) * 0.05
