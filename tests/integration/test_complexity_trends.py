"""Testing the paper's complexity claims via probe counters, not wall-clock.

Theorem 1: List Index δ probes are expected O(1) per non-peak object.
Theorem 2: CH Index ρ sections are near-constant for a good w.
Observation 1 / Lemmas 1-2: pruning shrinks tree work, dramatically at the
extremes of dc.
"""

import numpy as np
import pytest

from repro.core.quantities import DensityOrder
from repro.datasets.synthetic import s1
from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex


@pytest.fixture(scope="module")
def dataset():
    return s1(n=1500, seed=0)


class TestTheorem1:
    def test_delta_probes_grow_linearly_not_quadratically(self):
        """Doubling n should roughly double total δ probes (expected O(n))."""
        sizes = (400, 800, 1600)
        probes = []
        for n in sizes:
            ds = s1(n=n, seed=1)
            index = ListIndex(scan_block=8).fit(ds.points)
            rho = index.rho_all(30_000)
            index.reset_stats()
            index.delta_all(DensityOrder(rho))
            probes.append(index.stats().objects_scanned)
        # Quadratic growth would give ratios ~4; expected-linear gives ~2.
        assert probes[1] / probes[0] < 3.0
        assert probes[2] / probes[1] < 3.0

    def test_probes_per_object_bounded(self, dataset):
        index = ListIndex(scan_block=8).fit(dataset.points)
        rho = index.rho_all(30_000)
        index.reset_stats()
        index.delta_all(DensityOrder(rho))
        assert index.stats().objects_scanned / len(dataset.points) < 40


class TestTheorem2:
    def test_ch_sections_small_and_stable(self, dataset):
        """ρ query work per object ≈ one bin's worth of entries."""
        w = 2000.0
        index = CHIndex(bin_width=w).fit(dataset.points)
        index.reset_stats()
        index.rho_all(30_000 + w / 3)  # off-edge so sections are searched
        scanned_per_object = index.stats().objects_scanned / len(dataset.points)
        assert scanned_per_object < 60

    def test_ch_scans_less_than_list_length(self, dataset):
        index = CHIndex(bin_width=2000.0).fit(dataset.points)
        index.reset_stats()
        index.rho_all(30_500.0)
        # The plain List Index would binary-search the whole (n-1)-long list;
        # CH touches only the target section.
        assert index.stats().objects_scanned < len(dataset.points) * 60


class TestTreePruning:
    def test_largest_dc_answers_from_root(self, dataset):
        index = RTreeIndex().fit(dataset.points)
        L = 2e6  # larger than the S1 diameter
        index.reset_stats()
        rho = index.rho_all(L)
        assert (rho == len(dataset.points) - 1).all()
        assert index.stats().nodes_visited == len(dataset.points)

    def test_node_visits_grow_with_dc_until_collapse(self, dataset):
        index = QuadtreeIndex().fit(dataset.points)
        visits = []
        for dc in (5_000, 200_000, 2_000_000):
            index.reset_stats()
            index.rho_all(float(dc))
            visits.append(index.stats().nodes_visited)
        assert visits[1] > visits[0], "mid dc explores more than small dc"
        assert visits[2] < visits[1], "the paper's large-dc collapse"

    def test_density_pruning_helps_most_for_peaks(self, dataset):
        """Lemma 1's motivation: peaks prune many low-density subtrees."""
        pruned = RTreeIndex().fit(dataset.points)
        unpruned = RTreeIndex(density_pruning=False).fit(dataset.points)
        for index in (pruned, unpruned):
            q = index.quantities(30_000)
        assert pruned.stats().nodes_visited < unpruned.stats().nodes_visited

    def test_distance_pruning_reduces_leaf_scans(self, dataset):
        pruned = RTreeIndex().fit(dataset.points)
        unpruned = RTreeIndex(distance_pruning=False).fit(dataset.points)
        for index in (pruned, unpruned):
            index.quantities(30_000)
        assert pruned.stats().objects_scanned < unpruned.stats().objects_scanned


class TestBalanceMatters:
    def test_rtree_shallower_than_quadtree_on_skewed_data(self):
        """Paper §4.2: quadtree height follows the data distribution."""
        rng = np.random.default_rng(5)
        skewed = np.concatenate(
            [rng.normal([0, 0], 1e-4, (900, 2)), rng.uniform(0, 1000, (100, 2))]
        )
        quad = QuadtreeIndex(capacity=16).fit(skewed)
        rtree = RTreeIndex(max_entries=16).fit(skewed)
        assert rtree.height() < quad.height()
