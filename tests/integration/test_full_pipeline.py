"""End-to-end clustering behaviour on generated datasets."""

import numpy as np
import pytest

from repro.core.dpc import DensityPeakClustering
from repro.datasets.loaders import load_dataset
from repro.datasets.synthetic import s1, science_toy
from repro.metrics.external import adjusted_rand_index


class TestRecoverGeneratorStructure:
    def test_s1_clusters_recovered(self):
        ds = s1(n=1200, seed=3)
        model = DensityPeakClustering(index="rtree", dc=30_000, n_centers=15)
        labels = model.fit_predict(ds.points)
        assert adjusted_rand_index(ds.labels, labels) > 0.9

    def test_s1_auto_everything(self):
        ds = s1(n=1200, seed=3)
        model = DensityPeakClustering(index="kdtree").fit(ds.points)
        assert 12 <= model.n_clusters_ <= 18
        assert adjusted_rand_index(ds.labels, model.labels_) > 0.8

    def test_birch_grid_recovered(self):
        ds = load_dataset("birch", n=3000, seed=1)
        model = DensityPeakClustering(index="rtree", dc=30_000, n_centers=100)
        labels = model.fit_predict(ds.points)
        assert adjusted_rand_index(ds.labels, labels) > 0.85

    def test_science_toy_decision_graph(self):
        ds = science_toy()
        model = DensityPeakClustering(index="list", dc=0.5, n_centers=2).fit(ds.points)
        # Clustered objects (ignore the 3 outliers) should match the layout.
        core = ds.labels >= 0
        assert adjusted_rand_index(ds.labels[core], model.labels_[core]) == 1.0


class TestDcSensitivity:
    """Paper Figure 1: different dc produce different clusterings."""

    def test_refit_changes_clustering(self):
        ds = load_dataset("gowalla", n=1500, seed=0)
        model = DensityPeakClustering(index="rtree", dc=0.05).fit(ds.points)
        coarse = model.labels_.copy()
        k_coarse = model.n_clusters_
        model.refit(2.0)
        assert model.n_clusters_ != k_coarse or adjusted_rand_index(
            coarse, model.labels_
        ) < 0.999

    def test_rho_monotone_in_dc(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.2, n_centers=3).fit(blobs)
        rho_02 = model.rho_.copy()
        model.refit(0.6)
        assert (model.rho_ >= rho_02).all()
        assert model.rho_.sum() > rho_02.sum()


class TestHaloEndToEnd:
    def test_halo_objects_are_border_objects(self):
        rng = np.random.default_rng(11)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.5, (200, 2)), rng.normal([2.4, 0], 0.5, (200, 2))]
        )
        model = DensityPeakClustering(index="rtree", dc=0.35, n_centers=2, halo=True)
        model.fit(pts)
        halo = model.halo_
        assert halo is not None and halo.any()
        # Halo objects have lower density than their cluster cores on average.
        core_rho = model.rho_[~halo].mean()
        halo_rho = model.rho_[halo].mean()
        assert halo_rho < core_rho


class TestOutlierStory:
    def test_checkin_noise_has_low_gamma(self):
        ds = load_dataset("brightkite", n=1500, seed=2)
        model = DensityPeakClustering(index="rtree", dc=0.5).fit(ds.points)
        graph = model.decision_graph_
        noise = ds.labels == -1
        # Background check-ins are (on average) much lower density than city
        # check-ins — the decision graph separates them.
        assert graph.rho[noise].mean() < graph.rho[~noise].mean() * 0.8
