"""Integration tests for the ablation experiments."""

import pytest

from repro.harness.ablations import (
    ablation_dimensionality,
    ablation_frontier,
    ablation_pruning,
    ablation_rtree_packing,
)


@pytest.fixture(scope="module")
def small():
    return {"profile": "test", "seed": 0}


class TestFrontier:
    def test_all_frontiers_covered(self, small):
        t = ablation_frontier(**small, datasets=["birch"])
        assert {r["frontier"] for r in t.rows} == {"batched", "heap", "stack"}
        assert {r["index"] for r in t.rows} == {"rtree", "quadtree"}

    def test_heap_visits_no_more_nodes(self, small):
        t = ablation_frontier(**small, datasets=["birch"])
        for index in ("rtree", "quadtree"):
            rows = {r["frontier"]: r["nodes_visited"] for r in t.where(index=index)}
            # Global best-first (heap) cannot be beaten by the local stack
            # order on node visits; allow equality.
            assert rows["heap"] <= rows["stack"]


class TestPruning:
    def test_full_pruning_minimises_visits(self, small):
        t = ablation_pruning(**small)
        visits = {
            (r["density"], r["distance"]): r["nodes_visited"] for r in t.rows
        }
        assert visits[(True, True)] < visits[(False, False)]
        assert visits[(True, True)] <= visits[(True, False)]
        assert visits[(True, True)] <= visits[(False, True)]


class TestPacking:
    def test_str_builds_faster_and_packs_fuller(self, small):
        t = ablation_rtree_packing(**small)
        rows = {r["packing"]: r for r in t.rows}
        assert rows["str"]["build_seconds"] < rows["dynamic"]["build_seconds"]
        assert rows["str"]["leaf_fill"] > rows["dynamic"]["leaf_fill"]


class TestDimensionality:
    def test_list_scan_is_dimension_oblivious(self, small):
        t = ablation_dimensionality(**small)
        rows = [r for r in t.rows if r["index"] == "list"]
        scans = [r["objects_scanned"] for r in rows]
        # The list index sees only distances; its probe count stays within a
        # small band across dimensions.
        assert max(scans) < 2.0 * min(scans)

    def test_tree_work_grows_with_dimension(self, small):
        t = ablation_dimensionality(**small)
        for index in ("kdtree", "rtree"):
            rows = sorted(
                (r for r in t.rows if r["index"] == index), key=lambda r: r["d"]
            )
            assert rows[-1]["objects_scanned"] > rows[0]["objects_scanned"], (
                f"{index}: box pruning should degrade from 2-D to 8-D"
            )
