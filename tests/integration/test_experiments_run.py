"""Every harness experiment runs end-to-end at the test profile and produces
tables whose rows carry the paper's expected qualitative shape."""

import numpy as np
import pytest

from repro.harness.experiments import (
    fig5_running_time,
    fig6_dc_sweep,
    fig6_dc_sweep_batched,
    fig7_binwidth_sweep,
    fig8_tau_sweep,
    fig9a_w_memory,
    fig9b_tau_memory,
    fig10_quality,
    table3_memory,
    table4_construction,
)


@pytest.fixture(scope="module")
def small():
    return {"profile": "test", "seed": 0}


def eventually(check, attempts=3):
    """Re-run a wall-clock-shape check a few times before failing.

    Timing comparisons (List vs tree build, etc.) hold by orders of
    magnitude on an idle machine but can flip transiently under heavy CPU
    contention (e.g. parallel benchmark runs).
    """
    last = None
    for _ in range(attempts):
        try:
            check()
            return
        except AssertionError as exc:  # pragma: no cover - contention only
            last = exc
    raise last


class TestFig5:
    def test_rows_and_columns(self, small):
        t = fig5_running_time(**small)
        assert set(t.columns) >= {"dataset", "method", "seconds"}
        assert len(t) >= 24  # 6 datasets x >= 4 methods
        assert all(r["seconds"] >= 0 for r in t.rows)

    def test_list_based_beats_trees_in_query_time(self, small):
        """The paper's headline Figure 5 shape (list-feasible datasets)."""

        def check():
            t = fig5_running_time(**small)
            for ds in ("s1", "query"):
                rows = {r["method"]: r["seconds"] for r in t.where(dataset=ds)}
                assert rows["CH Index"] < rows["R-tree"]
                assert rows["List Index"] < rows["R-tree"]

        eventually(check)


class TestTables34:
    def test_memory_ordering(self, small):
        """Table 3 shape: list-based ≫ tree-based memory."""
        t = table3_memory(**small)
        for ds in ("s1", "query"):
            rows = {r["method"]: r["memory_mb"] for r in t.where(dataset=ds)}
            assert rows["List Index"] > 10 * rows["R-tree"]
            assert rows["CH Index"] >= rows["List Index"]

    def test_construction_ordering(self, small):
        """Table 4 shape: trees build much faster than list indexes."""

        def check():
            t = table4_construction(**small)
            for ds in ("s1", "query"):
                rows = {r["method"]: r["seconds"] for r in t.where(dataset=ds)}
                assert rows["R-tree"] < rows["List Index"]
                assert rows["Quadtree"] < rows["List Index"]

        eventually(check)


class TestFig6:
    def test_L_collapse(self, small):
        """Tree running time at dc = L drops to near the minimum (paper 5.3.1)."""
        t = fig6_dc_sweep(**small, datasets=["s1"])
        tree_rows = [r for r in t.rows if r["method"] == "R-tree"]
        by_L = {r["is_L"]: r for r in tree_rows if r["is_L"]}
        normal = [r["rho_seconds"] for r in tree_rows if not r["is_L"]]
        assert by_L[True]["rho_seconds"] <= max(normal)

    def test_all_methods_present(self, small):
        t = fig6_dc_sweep(**small, datasets=["birch"])
        methods = set(t.column("method"))
        assert methods == {"List Index", "CH Index", "R-tree", "Quadtree"}


class TestFig6Batched:
    def test_batched_sweep_rows(self, small):
        t = fig6_dc_sweep_batched(**small, datasets=["s1"])
        assert set(t.columns) >= {
            "dataset", "method", "n_dcs", "batched_seconds", "sequential_seconds", "speedup"
        }
        assert len(t) >= 4  # one row per method
        for r in t.rows:
            assert r["batched_seconds"] > 0
            assert r["n_dcs"] >= 2


class TestFig7:
    def test_covers_w_times_dc(self, small):
        t = fig7_binwidth_sweep(**small, datasets=["birch"])
        assert len(t) == 4 * 3  # w grid x 3 dc values
        assert all(r["rho_seconds"] >= 0 for r in t.rows)


class TestFig8:
    def test_time_grows_with_tau_for_list(self, small):
        t = fig8_tau_sweep(**small, datasets=["birch"])
        rows = [r for r in t.rows if r["method"] == "List"]
        taus = [r["tau"] for r in rows]
        assert taus == sorted(taus)
        assert len(rows) == 3


class TestFig9:
    def test_histogram_memory_decreases_with_w(self, small):
        t = fig9a_w_memory(**small, datasets=["birch"])
        mems = t.column("histogram_mb")
        assert mems == sorted(mems, reverse=True), "larger w -> fewer bins -> less memory"

    def test_list_memory_increases_with_tau(self, small):
        t = fig9b_tau_memory(**small, datasets=["birch"])
        mems = t.column("memory_mb")
        assert mems == sorted(mems), "larger tau -> longer RN-Lists -> more memory"


class TestFig10:
    def test_quality_high_when_tau_covers_dc(self, small):
        t = fig10_quality(**small, datasets=["birch"])
        rows = t.rows
        top_tau = max(r["tau"] for r in rows)
        best = [r for r in rows if r["tau"] == top_tau][0]
        assert best["f1"] > 0.9

    def test_quality_columns_complete(self, small):
        t = fig10_quality(**small, datasets=["birch", "range"])
        for r in t.rows:
            assert 0.0 <= r["precision"] <= 1.0
            assert 0.0 <= r["recall"] <= 1.0
            assert 0.0 <= r["f1"] <= 1.0
