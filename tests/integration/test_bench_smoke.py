"""The δ benchmark smoke must run end to end and write a sane phase split."""

import json
import sys

import pytest


@pytest.fixture(scope="module")
def smoke_module():
    sys.path.insert(0, "benchmarks")
    try:
        import bench_delta_smoke
    finally:
        sys.path.pop(0)
    return bench_delta_smoke


def test_run_produces_phase_split(smoke_module):
    report = smoke_module.run(n=300, repeats=1)
    assert set(report["methods"]) == {"rtree", "quadtree", "kdtree", "grid"}
    for row in report["methods"].values():
        assert row["rho_seconds"] > 0.0
        assert row["delta_seconds"] > 0.0
        assert row["delta_reference_seconds"] > 0.0
        assert row["assign_seconds"] >= 0.0


def test_main_writes_json(smoke_module, tmp_path):
    out = tmp_path / "BENCH_delta.json"
    smoke_module.main(["--quick", "--n", "300", "--out", str(out)])
    records = json.loads(out.read_text())
    assert isinstance(records, list) and len(records) == 1
    report = records[-1]
    assert report["benchmark"] == "delta_engine_phase_split"
    assert report["n"] == 300
    assert "rtree" in report["methods"]
    assert report["provenance"]["schema_version"] == 1


@pytest.fixture(scope="module")
def parallel_module():
    sys.path.insert(0, "benchmarks")
    try:
        import bench_parallel_scaling
    finally:
        sys.path.pop(0)
    return bench_parallel_scaling


def test_parallel_scaling_record_shape(parallel_module):
    record = parallel_module.run(n=250, jobs=(2,), indexes=("kdtree", "grid"))
    assert record["benchmark"] == "parallel_scaling"
    assert record["usable_cpus"] >= 1
    assert set(record["methods"]) == {"kdtree", "grid"}
    for row in record["methods"].values():
        assert row["serial_seconds"] > 0.0
        cell = row["parallel"]["2"]
        assert cell["seconds"] > 0.0 and cell["speedup"] > 0.0


def test_parallel_scaling_appends_records(parallel_module, tmp_path):
    out = tmp_path / "BENCH_parallel.json"
    argv = ["--quick", "--n", "250", "--indexes", "kdtree", "--out", str(out)]
    parallel_module.main(argv)
    parallel_module.main(argv)
    records = json.loads(out.read_text())
    assert isinstance(records, list) and len(records) == 2
    assert all(r["benchmark"] == "parallel_scaling" for r in records)


@pytest.fixture(scope="module")
def serving_module():
    sys.path.insert(0, "benchmarks")
    try:
        import bench_serving_load
    finally:
        sys.path.pop(0)
    return bench_serving_load


def test_serving_load_record_shape(serving_module):
    record = serving_module.run(
        n=250, clients=3, requests_per_client=4, dc_count=3, indexes=("kdtree",)
    )
    assert record["benchmark"] == "serving_load"
    row = record["methods"]["kdtree"]
    for mode in ("serial", "coalesce", "warm_cache"):
        report = row[mode]
        assert report["requests"] == 12
        assert report["errors"] == 0
        assert report["throughput_rps"] > 0.0
        for pct in ("p50", "p95", "p99"):
            assert report["latency_ms"][pct] > 0.0
    assert row["coalesce_speedup"] > 0.0
    # The warm-cache round must actually have hit the cache.
    assert row["warm_cache"]["cache_hits"] == 12


def test_serving_load_appends_records(serving_module, tmp_path):
    out = tmp_path / "BENCH_serving.json"
    argv = [
        "--quick", "--n", "250", "--indexes", "kdtree",
        "--requests", "3", "--clients", "2", "--out", str(out),
    ]
    serving_module.main(argv)
    serving_module.main(argv)
    records = json.loads(out.read_text())
    assert isinstance(records, list) and len(records) == 2
    assert all(r["benchmark"] == "serving_load" for r in records)


@pytest.fixture(scope="module")
def build_module():
    sys.path.insert(0, "benchmarks")
    try:
        import bench_build
    finally:
        sys.path.pop(0)
    return bench_build


def test_build_bench_record_shape(build_module):
    report = build_module.run(n=400, repeats=1)
    assert report["benchmark"] == "bulk_build_vs_objects"
    assert set(report["families"]) == {"rtree", "kdtree", "quadtree"}
    for row in report["families"].values():
        assert row["objects_fit_seconds"] > 0.0
        assert row["bulk_fit_seconds"] > 0.0
        assert row["fit_speedup"] > 0.0
    assert report["streaming"]["bulk"]["rebuilds"] >= 1
    assert report["snapshot_publish"]["bulk"]["fit_publish_seconds"] > 0.0
    # the >=5k regression gate must not trip at smoke sizes
    assert report["gate"]["enforced"] is False and report["gate"]["ok"] is True


def test_build_bench_main_writes_json(build_module, tmp_path):
    out = tmp_path / "BENCH_build.json"
    assert build_module.main(["--n", "400", "--repeats", "1", "--out", str(out)]) == 0
    records = json.loads(out.read_text())
    assert isinstance(records, list) and len(records) == 1
    report = records[-1]
    assert report["benchmark"] == "bulk_build_vs_objects"
    assert report["n"] == 400
    assert report["provenance"]["schema_version"] == 1
