"""The δ benchmark smoke must run end to end and write a sane phase split."""

import json
import sys

import pytest


@pytest.fixture(scope="module")
def smoke_module():
    sys.path.insert(0, "benchmarks")
    try:
        import bench_delta_smoke
    finally:
        sys.path.pop(0)
    return bench_delta_smoke


def test_run_produces_phase_split(smoke_module):
    report = smoke_module.run(n=300, repeats=1)
    assert set(report["methods"]) == {"rtree", "quadtree", "kdtree", "grid"}
    for row in report["methods"].values():
        assert row["rho_seconds"] > 0.0
        assert row["delta_seconds"] > 0.0
        assert row["delta_reference_seconds"] > 0.0
        assert row["assign_seconds"] >= 0.0


def test_main_writes_json(smoke_module, tmp_path):
    out = tmp_path / "BENCH_delta.json"
    smoke_module.main(["--quick", "--n", "300", "--out", str(out)])
    report = json.loads(out.read_text())
    assert report["benchmark"] == "delta_engine_phase_split"
    assert report["n"] == 300
    assert "rtree" in report["methods"]
