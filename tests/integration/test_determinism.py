"""Reproducibility: same seed ⇒ bit-identical pipeline outputs."""

import numpy as np

from repro.core.dpc import DensityPeakClustering
from repro.datasets.loaders import load_dataset
from repro.harness import ABLATIONS, EXPERIMENTS


class TestSeedDeterminism:
    def test_estimator_is_deterministic(self):
        runs = []
        for _ in range(2):
            ds = load_dataset("brightkite", profile="test", seed=11)
            model = DensityPeakClustering(index="rtree", dc=0.5, seed=11).fit(ds.points)
            runs.append((model.labels_.copy(), model.centers_.copy(), model.rho_.copy()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])
        np.testing.assert_array_equal(runs[0][2], runs[1][2])

    def test_auto_dc_is_deterministic(self):
        ds = load_dataset("query", profile="test", seed=3)
        a = DensityPeakClustering(index="kdtree", seed=5).fit(ds.points)
        b = DensityPeakClustering(index="kdtree", seed=5).fit(ds.points)
        assert a.dc_ == b.dc_

    def test_quality_experiment_rows_repeat(self):
        from repro.harness.experiments import fig9b_tau_memory

        a = fig9b_tau_memory(profile="test", seed=0, datasets=["birch"])
        b = fig9b_tau_memory(profile="test", seed=0, datasets=["birch"])
        assert a.rows == b.rows  # memory numbers carry no timing noise


class TestRegistryCompleteness:
    def test_all_paper_figures_have_experiments(self):
        for key in ("fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10",
                    "table3", "table4"):
            assert key in EXPERIMENTS

    def test_ablations_registered_in_cli(self):
        for key in ABLATIONS:
            assert key in EXPERIMENTS

    def test_every_experiment_accepts_standard_kwargs(self):
        import inspect

        for name, func in EXPERIMENTS.items():
            params = inspect.signature(func).parameters
            for expected in ("profile", "seed", "datasets"):
                assert expected in params, (name, expected)
