"""Reproducibility: same seed ⇒ bit-identical pipeline outputs."""

import numpy as np

from repro.core.dpc import DensityPeakClustering
from repro.datasets.loaders import load_dataset
from repro.harness import ABLATIONS, EXPERIMENTS
from repro.indexes.registry import make_index


class TestSeedDeterminism:
    def test_estimator_is_deterministic(self):
        runs = []
        for _ in range(2):
            ds = load_dataset("brightkite", profile="test", seed=11)
            model = DensityPeakClustering(index="rtree", dc=0.5, seed=11).fit(ds.points)
            runs.append((model.labels_.copy(), model.centers_.copy(), model.rho_.copy()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])
        np.testing.assert_array_equal(runs[0][2], runs[1][2])

    def test_auto_dc_is_deterministic(self):
        ds = load_dataset("query", profile="test", seed=3)
        a = DensityPeakClustering(index="kdtree", seed=5).fit(ds.points)
        b = DensityPeakClustering(index="kdtree", seed=5).fit(ds.points)
        assert a.dc_ == b.dc_

    def test_quality_experiment_rows_repeat(self):
        from repro.harness.experiments import fig9b_tau_memory

        a = fig9b_tau_memory(profile="test", seed=0, datasets=["birch"])
        b = fig9b_tau_memory(profile="test", seed=0, datasets=["birch"])
        assert a.rows == b.rows  # memory numbers carry no timing noise


class TestParallelDeterminism:
    """Worker count and chunk size are scheduling knobs, not semantics: the
    same seed must yield bit-identical ``quantities_multi`` output *and*
    bit-identical probe counters whatever the execution geometry."""

    CONFIGS = (
        {"backend": "serial"},
        {"backend": "process", "n_jobs": 1, "chunk_size": 5},
        {"backend": "process", "n_jobs": 2, "chunk_size": 13},
        {"backend": "threads", "n_jobs": 3, "chunk_size": 37},
    )

    def _sweep(self, index_name, config, extra=None):
        ds = load_dataset("birch", profile="test", seed=17)
        dcs = [0.25, 0.5, 1.0, 4.0]
        index = make_index(index_name, **(extra or {}), **config).fit(ds.points)
        qs = index.quantities_multi(dcs)
        stats = dict(index.stats().as_dict())
        index.release_execution()
        return [(q.rho.copy(), q.delta.copy(), q.mu.copy()) for q in qs], stats

    def test_quantities_multi_invariant_across_execution_geometry(self):
        for index_name, extra in (
            ("kdtree", None),
            ("grid", None),
            ("list", None),
            ("rn-ch", {"tau": 2.0}),
        ):
            reference, ref_stats = self._sweep(index_name, self.CONFIGS[0], extra)
            for config in self.CONFIGS[1:]:
                got, got_stats = self._sweep(index_name, config, extra)
                for (r0, d0, m0), (r1, d1, m1) in zip(reference, got):
                    np.testing.assert_array_equal(r0, r1, err_msg=(index_name, config))
                    np.testing.assert_array_equal(d0, d1, err_msg=(index_name, config))
                    np.testing.assert_array_equal(m0, m1, err_msg=(index_name, config))
                assert got_stats == ref_stats, (index_name, config)

    def test_repeat_runs_same_geometry_identical(self):
        a = self._sweep("quadtree", {"backend": "process", "n_jobs": 2, "chunk_size": 19})
        b = self._sweep("quadtree", {"backend": "process", "n_jobs": 2, "chunk_size": 19})
        for (r0, d0, m0), (r1, d1, m1) in zip(a[0], b[0]):
            np.testing.assert_array_equal(r0, r1)
            np.testing.assert_array_equal(d0, d1)
            np.testing.assert_array_equal(m0, m1)
        assert a[1] == b[1]


class TestRegistryCompleteness:
    def test_all_paper_figures_have_experiments(self):
        for key in ("fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10",
                    "table3", "table4"):
            assert key in EXPERIMENTS

    def test_ablations_registered_in_cli(self):
        for key in ABLATIONS:
            assert key in EXPERIMENTS

    def test_every_experiment_accepts_standard_kwargs(self):
        import inspect

        for name, func in EXPERIMENTS.items():
            params = inspect.signature(func).parameters
            for expected in ("profile", "seed", "datasets"):
                assert expected in params, (name, expected)
