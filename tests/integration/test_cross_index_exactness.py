"""The cross-index exactness contract (DESIGN.md §2).

Every exact index — and the τ-truncated indexes with τ above the data
diameter — must produce **bit-identical** (ρ, δ, μ) to the naive baseline,
for multiple datasets, dc values, metrics and both tie conventions.
"""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.indexes.ch_index import CHIndex
from repro.indexes.grid import GridIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex

from tests.conftest import assert_quantities_equal, safe_dc

EXACT_FACTORIES = [
    pytest.param(lambda: ListIndex(), id="list"),
    pytest.param(lambda: CHIndex(), id="ch"),
    pytest.param(lambda: QuadtreeIndex(), id="quadtree"),
    pytest.param(lambda: RTreeIndex(), id="rtree-str"),
    pytest.param(lambda: RTreeIndex(packing="dynamic"), id="rtree-dynamic"),
    pytest.param(lambda: RTreeIndex(frontier="stack"), id="rtree-stack"),
    pytest.param(lambda: QuadtreeIndex(frontier="stack"), id="quadtree-stack"),
    pytest.param(lambda: KDTreeIndex(), id="kdtree"),
    pytest.param(lambda: GridIndex(), id="grid"),
    pytest.param(lambda: RNListIndex(tau=1e9), id="rn-list-inf"),
    pytest.param(lambda: RNCHIndex(tau=1e9, bin_width=1e7), id="rn-ch-inf"),
]


def make_workloads():
    rng = np.random.default_rng(99)
    blobs = np.concatenate(
        [
            rng.normal([0, 0], 0.5, (80, 2)),
            rng.normal([5, 5], 0.8, (90, 2)),
            rng.normal([9, 1], 0.3, (50, 2)),
        ]
    )
    uniform = rng.uniform(0, 10, (150, 2))
    skewed = np.concatenate(
        [rng.normal([0, 0], 0.05, (120, 2)), rng.uniform(0, 50, (60, 2))]
    )
    gridded = np.array([(x, y) for x in range(12) for y in range(12)], dtype=float)
    return [
        ("blobs", blobs),
        ("uniform", uniform),
        ("skewed", skewed),
        ("gridded", gridded + 0.0),  # heavy density ties
    ]


WORKLOADS = make_workloads()


@pytest.mark.parametrize("factory", EXACT_FACTORIES)
@pytest.mark.parametrize("workload", [w[0] for w in WORKLOADS])
def test_bit_identical_to_baseline(factory, workload):
    points = dict(WORKLOADS)[workload]
    dc = safe_dc(points, 0.05)
    base = naive_quantities(points, dc)
    got = factory().fit(points).quantities(dc)
    assert_quantities_equal(base, got)


@pytest.mark.parametrize("factory", EXACT_FACTORIES)
def test_bit_identical_strict_mode(factory):
    points = dict(WORKLOADS)["gridded"]  # maximal ties
    dc = safe_dc(points, 0.1)
    base = naive_quantities(points, dc, tie_break="strict")
    got = factory().fit(points).quantities(dc, tie_break="strict")
    assert_quantities_equal(base, got)


@pytest.mark.parametrize(
    "fraction", [0.01, 0.2, 0.5, 0.9], ids=["tiny", "small", "mid", "large"]
)
def test_dc_sweep_all_indexes_agree(fraction):
    points = dict(WORKLOADS)["blobs"]
    dc = safe_dc(points, fraction)
    base = naive_quantities(points, dc)
    for factory in (
        lambda: ListIndex(),
        lambda: CHIndex(bin_width=0.35),
        lambda: QuadtreeIndex(capacity=8),
        lambda: RTreeIndex(max_entries=4),
        lambda: KDTreeIndex(leaf_size=4),
        lambda: GridIndex(cell_size=0.9),
    ):
        assert_quantities_equal(base, factory().fit(points).quantities(dc))


@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
def test_metric_generic_indexes_agree(metric):
    """The non-quadtree indexes are metric-generic; verify beyond euclidean."""
    points = dict(WORKLOADS)["blobs"]
    base = naive_quantities(points, 1.0, metric=metric)
    for factory in (
        lambda: ListIndex(metric=metric),
        lambda: CHIndex(metric=metric),
        lambda: RTreeIndex(metric=metric),
        lambda: KDTreeIndex(metric=metric),
    ):
        got = factory().fit(points).quantities(1.0)
        assert_quantities_equal(base, got)


def test_cluster_labels_identical_across_indexes(blobs):
    reference = None
    for factory in (
        lambda: ListIndex(),
        lambda: CHIndex(),
        lambda: QuadtreeIndex(),
        lambda: RTreeIndex(),
        lambda: KDTreeIndex(),
        lambda: GridIndex(),
    ):
        result = factory().fit(blobs).cluster(0.5, n_centers=3)
        if reference is None:
            reference = result
        else:
            np.testing.assert_array_equal(reference.labels, result.labels)
            np.testing.assert_array_equal(reference.centers, result.centers)
