"""Unit tests for μ-chain cluster assignment."""

import numpy as np
import pytest

from repro.core.assignment import assign_labels
from repro.core.baseline import naive_quantities
from repro.core.quantities import NO_NEIGHBOR, DensityOrder, DPCQuantities


def make_quantities(rho, mu, delta=None, dc=1.0):
    rho = np.asarray(rho)
    if delta is None:
        delta = np.ones(len(rho), dtype=np.float64)
    return DPCQuantities(
        dc=dc,
        rho=rho,
        delta=np.asarray(delta, dtype=np.float64),
        mu=np.asarray(mu, dtype=np.int64),
        density_order=DensityOrder(rho),
    )


class TestChainPropagation:
    def test_two_chains(self):
        # 0 is the peak of cluster A (1, 2 hang off it); 3 is the peak of
        # cluster B (4 hangs off it) but mu[3] points at 0 (nearest denser).
        q = make_quantities(
            rho=[9, 5, 3, 8, 2],
            mu=[NO_NEIGHBOR, 0, 1, 0, 3],
        )
        labels = assign_labels(q, centers=np.array([0, 3]))
        np.testing.assert_array_equal(labels, [0, 0, 0, 1, 1])

    def test_single_cluster(self):
        q = make_quantities(rho=[5, 4, 3], mu=[NO_NEIGHBOR, 0, 1])
        labels = assign_labels(q, centers=np.array([0]))
        np.testing.assert_array_equal(labels, [0, 0, 0])

    def test_deep_chain(self):
        n = 50
        rho = np.arange(n)[::-1]  # densest first
        mu = np.array([NO_NEIGHBOR] + list(range(n - 1)))
        q = make_quantities(rho=rho, mu=mu)
        labels = assign_labels(q, centers=np.array([0]))
        assert (labels == 0).all()

    def test_center_order_defines_label_ids(self):
        q = make_quantities(rho=[9, 5, 8, 3], mu=[NO_NEIGHBOR, 0, 0, 2])
        labels = assign_labels(q, centers=np.array([2, 0]))
        # centers[0] = object 2 -> label 0; centers[1] = object 0 -> label 1.
        np.testing.assert_array_equal(labels, [1, 1, 0, 0])


class TestPeakFallback:
    def test_unselected_peak_joins_nearest_center(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [9.0, 0.0]])
        # Object 3 is a strict-mode peak (mu = NO_NEIGHBOR) but not a centre.
        q = make_quantities(
            rho=[4, 2, 3, 4],
            mu=[NO_NEIGHBOR, 0, 0, NO_NEIGHBOR],
        )
        labels = assign_labels(q, centers=np.array([0, 2]), points=points)
        assert labels[3] == 1  # (9,0) is nearer to (5,5) (√41) than to (0,0) (9)

    def test_unselected_peak_without_points_raises(self):
        q = make_quantities(rho=[4, 2, 4], mu=[NO_NEIGHBOR, 0, NO_NEIGHBOR])
        with pytest.raises(ValueError, match="peak"):
            assign_labels(q, centers=np.array([0]))


class TestValidation:
    def test_empty_centers_rejected(self):
        q = make_quantities(rho=[2, 1], mu=[NO_NEIGHBOR, 0])
        with pytest.raises(ValueError, match="non-empty"):
            assign_labels(q, centers=np.array([], dtype=np.int64))

    def test_out_of_range_center(self):
        q = make_quantities(rho=[2, 1], mu=[NO_NEIGHBOR, 0])
        with pytest.raises(ValueError, match="out of range"):
            assign_labels(q, centers=np.array([5]))

    def test_duplicate_centers(self):
        q = make_quantities(rho=[2, 1], mu=[NO_NEIGHBOR, 0])
        with pytest.raises(ValueError, match="duplicate"):
            assign_labels(q, centers=np.array([0, 0]))

    def test_broken_chain_detected(self):
        # mu points to a *less* dense object: inconsistent quantities.
        q = make_quantities(rho=[5, 3, 1], mu=[NO_NEIGHBOR, 2, 0])
        with pytest.raises(ValueError, match="chain broken"):
            assign_labels(q, centers=np.array([0]))


class TestEndToEnd:
    def test_labels_follow_blob_structure(self, blobs):
        q = naive_quantities(blobs, 0.5)
        from repro.core.decision import select_centers_top_k

        centers = select_centers_top_k(q, 3)
        labels = assign_labels(q, centers, points=blobs)
        assert labels.min() == 0 and labels.max() == 2
        # The three dense blobs (known generator layout) dominate the labels.
        sizes = np.bincount(labels)
        assert sorted(sizes, reverse=True)[0] >= 100


class TestDepthGroupedPropagation:
    """The vectorized rounds must mirror the sequential densest-first pass."""

    def test_multiple_unselected_peaks_batched_fallback(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.1, 0.0], [9.9, 0.0]])
        q = make_quantities(
            rho=[5, 5, 1, 1],
            mu=[NO_NEIGHBOR, NO_NEIGHBOR, 0, 1],
        )
        # Object 1 is a second peak under strict-style quantities; both it
        # and its chain land on the nearest centre.
        labels = assign_labels(q, centers=np.array([0]), points=points)
        np.testing.assert_array_equal(labels, [0, 0, 0, 0])

    def test_error_order_matches_density_order(self):
        # Object 1 (denser) is an unselected peak; object 2 has a broken
        # edge.  The sequential pass trips on object 1 first.
        q = make_quantities(rho=[9, 8, 7, 1], mu=[NO_NEIGHBOR, NO_NEIGHBOR, 3, 2])
        with pytest.raises(ValueError, match="object 1 is a peak"):
            assign_labels(q, centers=np.array([0]))

    def test_broken_edge_before_peak_in_density_order(self):
        # Object 1 has the broken edge and is denser than the peak at 2.
        q = make_quantities(rho=[9, 8, 7, 1], mu=[NO_NEIGHBOR, 3, NO_NEIGHBOR, 2])
        with pytest.raises(ValueError, match="mu chain broken at object 1"):
            assign_labels(q, centers=np.array([0]))

    def test_self_loop_mu_detected(self):
        q = make_quantities(rho=[5, 3], mu=[NO_NEIGHBOR, 1])
        with pytest.raises(ValueError, match="mu chain broken at object 1"):
            assign_labels(q, centers=np.array([0]))

    def test_matches_naive_end_to_end_order(self, blobs):
        from repro.core.decision import select_centers_top_k

        q = naive_quantities(blobs, 0.5)
        centers = select_centers_top_k(q, 3)
        labels = assign_labels(q, centers, points=blobs)
        # Sequential reference reimplemented inline for comparison.
        ref = np.full(len(blobs), -1, dtype=np.int64)
        ref[centers] = np.arange(len(centers))
        for p in q.density_order.order:
            if ref[p] != -1:
                continue
            ref[p] = ref[q.mu[p]]
        np.testing.assert_array_equal(labels, ref)

    def test_backward_mu_edge_to_center_is_valid(self):
        # mu may point at an equal-or-lower-density object when that object
        # is a centre (labelled from the start) — the sequential pass
        # assigned the label without error (code-review regression).
        q = make_quantities(rho=[5, 3], mu=[1, NO_NEIGHBOR])
        labels = assign_labels(q, centers=np.array([1]))
        np.testing.assert_array_equal(labels, [0, 0])

    def test_backward_mu_edge_to_non_center_still_raises(self):
        q = make_quantities(rho=[5, 3, 1], mu=[2, NO_NEIGHBOR, NO_NEIGHBOR])
        with pytest.raises(ValueError, match="mu chain broken at object 0"):
            assign_labels(q, centers=np.array([1]))
