"""Unit tests for index persistence (save_index / load_index)."""

import numpy as np
import pytest

from repro.indexes.ch_index import CHIndex
from repro.indexes.grid import GridIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.persist import load_index, save_index
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex

from tests.conftest import assert_quantities_equal

ALL_FACTORIES = [
    pytest.param(lambda: ListIndex(scan_block=16), id="list"),
    pytest.param(lambda: CHIndex(bin_width=0.4), id="ch"),
    pytest.param(lambda: RNListIndex(tau=2.0), id="rn-list"),
    pytest.param(lambda: RNCHIndex(tau=2.0, bin_width=0.25), id="rn-ch"),
    pytest.param(lambda: QuadtreeIndex(capacity=16), id="quadtree"),
    pytest.param(lambda: RTreeIndex(max_entries=8), id="rtree"),
    pytest.param(lambda: KDTreeIndex(leaf_size=8), id="kdtree"),
    pytest.param(lambda: GridIndex(cell_size=0.6), id="grid"),
]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_roundtrip_answers_identically(factory, blobs, tmp_path):
    path = str(tmp_path / "index.npz")
    original = factory().fit(blobs)
    save_index(original, path)
    restored = load_index(path)
    assert type(restored) is type(original)
    for dc in (0.3, 0.9):
        assert_quantities_equal(
            original.quantities(dc), restored.quantities(dc)
        )


def test_list_state_restored_not_rebuilt(blobs, tmp_path):
    path = str(tmp_path / "list.npz")
    original = ListIndex().fit(blobs)
    save_index(original, path)
    restored = load_index(path)
    np.testing.assert_array_equal(original.neighbor_ids, restored.neighbor_ids)
    np.testing.assert_array_equal(original.neighbor_dists, restored.neighbor_dists)
    assert restored.build_seconds == original.build_seconds  # copied, not re-timed


@pytest.mark.parametrize(
    "factory",
    [
        pytest.param(lambda: CHIndex(), id="ch-auto-w"),
        pytest.param(lambda: RNCHIndex(tau=2.0), id="rn-ch-auto-w"),
    ],
)
def test_auto_bin_width_roundtrip(factory, blobs, tmp_path):
    """Auto-w histograms were built with the *resolved* width; a restored
    index must query with that width, while the configured value stays
    auto so a later refit re-resolves it."""
    path = str(tmp_path / "auto.npz")
    original = factory().fit(blobs)
    save_index(original, path)
    restored = load_index(path)
    assert restored.bin_width is None
    assert restored.bin_width_ == original.bin_width_
    for dc in (0.3, 0.9):
        assert_quantities_equal(original.quantities(dc), restored.quantities(dc))


def test_params_roundtrip(blobs, tmp_path):
    path = str(tmp_path / "rt.npz")
    original = RTreeIndex(max_entries=6, packing="dynamic", frontier="stack").fit(blobs)
    save_index(original, path)
    restored = load_index(path)
    assert restored.max_entries == 6
    assert restored.packing == "dynamic"
    assert restored.frontier == "stack"


def test_rnch_big_delta_preserved(blobs, tmp_path):
    path = str(tmp_path / "rn.npz")
    original = RNListIndex(tau=0.3).fit(blobs)
    save_index(original, path)
    restored = load_index(path)
    assert restored._big_delta == original._big_delta
    q1 = original.quantities(0.2)
    q2 = restored.quantities(0.2)
    np.testing.assert_array_equal(q1.delta, q2.delta)


def test_unfitted_index_rejected(tmp_path):
    with pytest.raises(ValueError, match="unfitted"):
        save_index(ListIndex(), str(tmp_path / "x.npz"))


def test_metric_preserved(tmp_path, rng):
    pts = rng.normal(size=(60, 2))
    path = str(tmp_path / "manhattan.npz")
    original = KDTreeIndex(metric="manhattan").fit(pts)
    save_index(original, path)
    restored = load_index(path)
    assert restored.metric.name == "manhattan"
    assert_quantities_equal(original.quantities(1.0), restored.quantities(1.0))


class TestFingerprint:
    """The content fingerprint the serving cache keys on (index_fingerprint)."""

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_roundtrip_preserves_fingerprint(self, factory, blobs, tmp_path):
        path = str(tmp_path / "fp.npz")
        original = factory().fit(blobs)
        save_index(original, path)
        restored = load_index(path)
        assert restored.fingerprint() == original.fingerprint()

    def test_deterministic_across_refits(self, blobs):
        a = KDTreeIndex(leaf_size=8).fit(blobs)
        b = KDTreeIndex(leaf_size=8).fit(blobs.copy())
        assert a.fingerprint() == b.fingerprint()

    def test_changes_with_points(self, blobs):
        index = KDTreeIndex().fit(blobs)
        before = index.fingerprint()
        shifted = blobs.copy()
        shifted[0, 0] += 1e-9  # a single-ulp-ish nudge must change identity
        index.fit(shifted)
        assert index.fingerprint() != before

    def test_changes_with_params(self, blobs):
        a = KDTreeIndex(leaf_size=8).fit(blobs)
        b = KDTreeIndex(leaf_size=16).fit(blobs)
        assert a.fingerprint() != b.fingerprint()

    def test_differs_between_index_families(self, blobs):
        a = KDTreeIndex().fit(blobs)
        b = QuadtreeIndex().fit(blobs)
        assert a.fingerprint() != b.fingerprint()

    def test_unfitted_rejected(self):
        from repro.indexes.persist import index_fingerprint

        with pytest.raises(ValueError, match="unfitted"):
            index_fingerprint(ListIndex())
        with pytest.raises(RuntimeError, match="not fitted"):
            ListIndex().fingerprint()

    def test_stored_in_payload_and_verified(self, blobs, tmp_path):
        import json

        path = str(tmp_path / "fp.npz")
        original = CHIndex(bin_width=0.4).fit(blobs)
        save_index(original, path)
        with np.load(path) as data:
            meta = json.loads(str(data["meta"]))
        assert meta["fingerprint"] == original.fingerprint()

    def test_tampered_payload_rejected(self, blobs, tmp_path):
        import json

        path = str(tmp_path / "fp.npz")
        save_index(KDTreeIndex().fit(blobs), path)
        with np.load(path) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {k: data[k] for k in data.files if k != "meta"}
        arrays["points"] = arrays["points"] + 1.0  # tamper with the data
        np.savez_compressed(path, meta=json.dumps(meta), **arrays)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            load_index(path)

    def test_execution_backend_irrelevant(self, blobs):
        a = GridIndex().fit(blobs)
        b = GridIndex(backend="threads", n_jobs=2).fit(blobs)
        assert a.fingerprint() == b.fingerprint()
