"""Unit tests for the Gaussian-kernel and kNN density variants."""

import numpy as np
import pytest

from repro.core.decision import select_centers_auto, select_centers_top_k
from repro.core.assignment import assign_labels
from repro.core.quantities import NO_NEIGHBOR
from repro.extras.variants import gaussian_density, knn_density, variant_quantities
from repro.geometry.distance import pairwise_distances
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.rtree import RTreeIndex
from repro.metrics.external import adjusted_rand_index


class TestGaussianDensity:
    def test_matches_brute_force(self, blobs):
        dc = 0.5
        rho = gaussian_density(blobs, dc)
        d = pairwise_distances(blobs)
        expected = np.exp(-((d / dc) ** 2)).sum(axis=1) - 1.0
        np.testing.assert_allclose(rho, expected, rtol=1e-12)

    def test_block_invariance(self, blobs):
        a = gaussian_density(blobs, 0.5, block_rows=13)
        b = gaussian_density(blobs, 0.5, block_rows=4096)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_densities_rarely_tied(self, blobs):
        rho = gaussian_density(blobs, 0.5)
        assert len(np.unique(rho)) == len(rho)

    def test_monotone_in_dc(self, blobs):
        """A wider kernel accumulates more mass for every object."""
        small = gaussian_density(blobs, 0.2)
        large = gaussian_density(blobs, 2.0)
        assert (large > small).all()

    def test_validation(self, blobs):
        with pytest.raises(ValueError, match="dc must be positive"):
            gaussian_density(blobs, 0.0)
        with pytest.raises(ValueError, match="non-empty"):
            gaussian_density(np.empty((0, 2)), 1.0)


class TestKnnDensity:
    def test_mean_mode_matches_nlist(self, blobs):
        index = ListIndex().fit(blobs)
        rho = knn_density(index, k=5, mode="mean")
        expected = 1.0 / index.neighbor_dists[:, :5].mean(axis=1)
        np.testing.assert_allclose(rho, expected)

    def test_max_mode_is_knn_radius(self, blobs):
        index = ListIndex().fit(blobs)
        rho = knn_density(index, k=7, mode="max")
        np.testing.assert_allclose(rho, 1.0 / index.neighbor_dists[:, 6])

    def test_dense_regions_have_higher_density(self, blobs):
        index = ListIndex().fit(blobs)
        rho = knn_density(index, k=10)
        # The blobs fixture: first 110 points form the tightest blob (σ=0.3
        # vs uniform noise in the last 20 rows).
        assert rho[:110].mean() > rho[-20:].mean()

    def test_coincident_points_capped_not_inf(self):
        pts = np.concatenate([np.zeros((3, 2)), [[1.0, 0.0], [0.0, 1.0]]])
        index = ListIndex().fit(pts)
        rho = knn_density(index, k=2)
        assert np.isfinite(rho).all()
        assert rho[0] > rho[3]

    def test_validation(self, blobs):
        index = ListIndex().fit(blobs)
        with pytest.raises(ValueError, match="k must be"):
            knn_density(index, k=0)
        with pytest.raises(ValueError, match="k must be"):
            knn_density(index, k=len(blobs))
        with pytest.raises(ValueError, match="mode"):
            knn_density(index, k=3, mode="median")
        with pytest.raises(TypeError, match="ListIndex"):
            knn_density(KDTreeIndex().fit(blobs), k=3)


class TestVariantQuantities:
    def test_delta_is_nearest_denser_under_float_rho(self, blobs):
        rho = gaussian_density(blobs, 0.5)
        q = variant_quantities(RTreeIndex().fit(blobs), rho, dc=0.5)
        d = pairwise_distances(blobs)
        order = q.density_order
        for p in range(0, len(blobs), 41):
            denser = [j for j in range(len(blobs)) if order.is_denser(j, p)]
            if not denser:
                assert q.mu[p] == NO_NEIGHBOR
                assert q.delta[p] == d[p].max()
            else:
                assert q.delta[p] == pytest.approx(d[p, denser].min())

    def test_indexes_agree_on_variant_delta(self, blobs):
        rho = gaussian_density(blobs, 0.5)
        reference = None
        for factory in (
            lambda: ListIndex(),
            lambda: RTreeIndex(),
            lambda: KDTreeIndex(),
        ):
            q = variant_quantities(factory().fit(blobs), rho, dc=0.5)
            if reference is None:
                reference = q
            else:
                np.testing.assert_array_equal(reference.delta, q.delta)
                np.testing.assert_array_equal(reference.mu, q.mu)

    def test_variant_clustering_recovers_blobs(self, blobs):
        index = ListIndex().fit(blobs)
        rho = knn_density(index, k=12)
        q = variant_quantities(index, rho, dc=0.5)
        centers = select_centers_top_k(q, 3)
        labels = assign_labels(q, centers, points=blobs)
        truth = np.concatenate(
            [np.zeros(110), np.ones(130), np.full(60, 2), np.full(20, 3)]
        )
        core = truth < 3
        assert adjusted_rand_index(truth[core], labels[core]) > 0.9

    def test_length_mismatch(self, blobs):
        index = RTreeIndex().fit(blobs)
        with pytest.raises(ValueError, match="entries"):
            variant_quantities(index, np.ones(3), dc=0.5)

    def test_auto_centers_on_gaussian_density(self, blobs):
        rho = gaussian_density(blobs, 0.5)
        q = variant_quantities(KDTreeIndex().fit(blobs), rho, dc=0.5)
        centers = select_centers_auto(q, min_centers=2)
        assert 2 <= len(centers) <= 6
