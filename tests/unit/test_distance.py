"""Unit tests for the metric registry and pairwise kernels."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.geometry.distance import (
    Metric,
    available_metrics,
    distances_to_point,
    get_metric,
    make_minkowski,
    pairwise_blocks,
    pairwise_distances,
    register_metric,
)


@pytest.fixture
def pts(rng):
    return rng.normal(size=(40, 3))


class TestRegistry:
    def test_available_metrics_contains_core_set(self):
        names = available_metrics()
        for expected in ("euclidean", "sqeuclidean", "manhattan", "chebyshev", "haversine"):
            assert expected in names

    def test_get_metric_by_name(self):
        assert get_metric("euclidean").name == "euclidean"

    def test_get_metric_passthrough(self):
        m = get_metric("manhattan")
        assert get_metric(m) is m

    def test_get_metric_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("mahalanobis")

    def test_minkowski_on_demand(self):
        m = get_metric("minkowski[p=3]")
        assert m.name == "minkowski[p=3]"

    def test_minkowski_invalid_order(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            make_minkowski(0.5)

    def test_register_metric_overwrites(self):
        custom = Metric(
            "euclidean-copy",
            get_metric("euclidean").distances_from,
            get_metric("euclidean").cross,
            get_metric("euclidean").rect_mindist,
            get_metric("euclidean").rect_maxdist,
        )
        register_metric(custom)
        assert get_metric("euclidean-copy") is custom


class TestAgainstScipy:
    @pytest.mark.parametrize(
        "ours,theirs",
        [
            ("euclidean", "euclidean"),
            ("sqeuclidean", "sqeuclidean"),
            ("manhattan", "cityblock"),
            ("chebyshev", "chebyshev"),
        ],
    )
    def test_cross_matches_cdist(self, pts, ours, theirs):
        got = pairwise_distances(pts, ours)
        want = cdist(pts, pts, theirs)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_minkowski_matches_cdist(self, pts):
        got = pairwise_distances(pts, "minkowski[p=3]")
        want = cdist(pts, pts, "minkowski", p=3)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)


class TestKernelConsistency:
    """distances_from and cross must agree bit-for-bit (exactness contract)."""

    @pytest.mark.parametrize("name", ["euclidean", "manhattan", "chebyshev", "sqeuclidean"])
    def test_from_equals_cross_row(self, pts, name):
        m = get_metric(name)
        full = m.cross(pts, pts)
        for i in (0, 7, 39):
            row = m.distances_from(pts, pts[i])
            np.testing.assert_array_equal(row, full[i])

    def test_pairwise_blocks_reassemble(self, pts):
        full = pairwise_distances(pts)
        rebuilt = np.empty_like(full)
        for start, stop, block in pairwise_blocks(pts, block_rows=7):
            rebuilt[start:stop] = block
        np.testing.assert_array_equal(rebuilt, full)

    def test_pairwise_blocks_bad_block_rows(self, pts):
        with pytest.raises(ValueError, match="block_rows"):
            next(pairwise_blocks(pts, block_rows=0))

    def test_distances_to_point(self, pts):
        d = distances_to_point(pts, pts[3])
        assert d[3] == 0.0
        assert d.shape == (len(pts),)


class TestMetricCall:
    def test_single_pair_call(self):
        m = get_metric("euclidean")
        assert m(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)


class TestHaversine:
    def test_known_distance_london_paris(self):
        london = np.array([51.5074, -0.1278])
        paris = np.array([48.8566, 2.3522])
        d = get_metric("haversine").distances_from(london[None, :], paris)[0]
        assert 330.0 < d < 360.0  # ~344 km

    def test_zero_on_identical(self):
        p = np.array([[40.0, -75.0]])
        assert get_metric("haversine").distances_from(p, p[0])[0] == 0.0

    def test_rect_bounds_unsupported(self):
        m = get_metric("haversine")
        assert not m.supports_rect_bounds
        with pytest.raises(NotImplementedError):
            m.rect_mindist(np.zeros(2), np.zeros(2), np.ones(2))

    def test_cross_symmetric(self, rng):
        pts = np.column_stack([rng.uniform(-60, 60, 10), rng.uniform(-170, 170, 10)])
        d = get_metric("haversine").cross(pts, pts)
        np.testing.assert_allclose(d, d.T, atol=1e-9)
