"""Unit tests for the metric registry and pairwise kernels."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.geometry.distance import (
    Metric,
    available_metrics,
    distances_to_point,
    get_metric,
    make_minkowski,
    pairwise_blocks,
    pairwise_distances,
    register_metric,
)


@pytest.fixture
def pts(rng):
    return rng.normal(size=(40, 3))


class TestRegistry:
    def test_available_metrics_contains_core_set(self):
        names = available_metrics()
        for expected in ("euclidean", "sqeuclidean", "manhattan", "chebyshev", "haversine"):
            assert expected in names

    def test_get_metric_by_name(self):
        assert get_metric("euclidean").name == "euclidean"

    def test_get_metric_passthrough(self):
        m = get_metric("manhattan")
        assert get_metric(m) is m

    def test_get_metric_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("mahalanobis")

    def test_minkowski_on_demand(self):
        m = get_metric("minkowski[p=3]")
        assert m.name == "minkowski[p=3]"

    def test_minkowski_invalid_order(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            make_minkowski(0.5)

    def test_register_metric_overwrites(self):
        custom = Metric(
            "euclidean-copy",
            get_metric("euclidean").distances_from,
            get_metric("euclidean").cross,
            get_metric("euclidean").rect_mindist,
            get_metric("euclidean").rect_maxdist,
        )
        register_metric(custom)
        assert get_metric("euclidean-copy") is custom


class TestAgainstScipy:
    @pytest.mark.parametrize(
        "ours,theirs",
        [
            ("euclidean", "euclidean"),
            ("sqeuclidean", "sqeuclidean"),
            ("manhattan", "cityblock"),
            ("chebyshev", "chebyshev"),
        ],
    )
    def test_cross_matches_cdist(self, pts, ours, theirs):
        got = pairwise_distances(pts, ours)
        want = cdist(pts, pts, theirs)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_minkowski_matches_cdist(self, pts):
        got = pairwise_distances(pts, "minkowski[p=3]")
        want = cdist(pts, pts, "minkowski", p=3)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)


class TestKernelConsistency:
    """distances_from and cross must agree bit-for-bit (exactness contract)."""

    @pytest.mark.parametrize("name", ["euclidean", "manhattan", "chebyshev", "sqeuclidean"])
    def test_from_equals_cross_row(self, pts, name):
        m = get_metric(name)
        full = m.cross(pts, pts)
        for i in (0, 7, 39):
            row = m.distances_from(pts, pts[i])
            np.testing.assert_array_equal(row, full[i])

    def test_pairwise_blocks_reassemble(self, pts):
        full = pairwise_distances(pts)
        rebuilt = np.empty_like(full)
        for start, stop, block in pairwise_blocks(pts, block_rows=7):
            rebuilt[start:stop] = block
        np.testing.assert_array_equal(rebuilt, full)

    def test_pairwise_blocks_bad_block_rows(self, pts):
        with pytest.raises(ValueError, match="block_rows"):
            next(pairwise_blocks(pts, block_rows=0))

    def test_distances_to_point(self, pts):
        d = distances_to_point(pts, pts[3])
        assert d[3] == 0.0
        assert d.shape == (len(pts),)


class TestMetricCall:
    def test_single_pair_call(self):
        m = get_metric("euclidean")
        assert m(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)


class TestHaversine:
    def test_known_distance_london_paris(self):
        london = np.array([51.5074, -0.1278])
        paris = np.array([48.8566, 2.3522])
        d = get_metric("haversine").distances_from(london[None, :], paris)[0]
        assert 330.0 < d < 360.0  # ~344 km

    def test_zero_on_identical(self):
        p = np.array([[40.0, -75.0]])
        assert get_metric("haversine").distances_from(p, p[0])[0] == 0.0

    def test_rect_bounds_unsupported(self):
        m = get_metric("haversine")
        assert not m.supports_rect_bounds
        with pytest.raises(NotImplementedError):
            m.rect_mindist(np.zeros(2), np.zeros(2), np.ones(2))

    def test_cross_symmetric(self, rng):
        pts = np.column_stack([rng.uniform(-60, 60, 10), rng.uniform(-170, 170, 10)])
        d = get_metric("haversine").cross(pts, pts)
        np.testing.assert_allclose(d, d.T, atol=1e-9)


class TestPairedDistances:
    def test_matches_cross_diagonal_bitwise(self):
        from repro.geometry.distance import get_metric, paired_distances

        rng = np.random.default_rng(9)
        for metric in ("euclidean", "sqeuclidean", "manhattan", "chebyshev",
                       "minkowski[p=3]", "haversine"):
            for d in (2,) if metric == "haversine" else (2, 3, 5):
                a = rng.normal(size=(40, d))
                b = rng.normal(size=(40, d))
                m = get_metric(metric)
                pair = paired_distances(a, b, m)
                full = m.cross(a, b)
                np.testing.assert_array_equal(pair, np.diagonal(full))

    def test_matches_distances_from_bitwise(self):
        from repro.geometry.distance import get_metric, paired_distances

        rng = np.random.default_rng(10)
        a = rng.normal(size=(30, 2))
        q = rng.normal(size=2)
        m = get_metric("euclidean")
        pair = paired_distances(a, np.broadcast_to(q, a.shape), m)
        np.testing.assert_array_equal(pair, m.distances_from(a, q))

    def test_shape_mismatch_rejected(self):
        from repro.geometry.distance import paired_distances

        with pytest.raises(ValueError, match="differ in shape"):
            paired_distances(np.zeros((3, 2)), np.zeros((4, 2)))


class TestCrossBlocks:
    def test_reassembles_full_cross(self):
        from repro.geometry.distance import cross_blocks, get_metric

        rng = np.random.default_rng(11)
        a = rng.normal(size=(17, 2))
        b = rng.normal(size=(9, 2))
        m = get_metric("euclidean")
        out = np.empty((17, 9))
        for start, stop, block in cross_blocks(a, b, m, block_elems=30):
            out[start:stop] = block
        np.testing.assert_array_equal(out, m.cross(a, b))

    def test_invalid_block_elems(self):
        from repro.geometry.distance import cross_blocks

        with pytest.raises(ValueError, match="block_elems"):
            next(cross_blocks(np.zeros((2, 2)), np.zeros((2, 2)), block_elems=0))


class TestRectBoundsRowwiseBoxes:
    def test_many_bounds_accept_per_row_boxes(self):
        """The batched δ engine relies on rect_*_many broadcasting per-row
        (n, d) lo/hi boxes exactly like n scalar calls."""
        from repro.geometry.distance import get_metric

        rng = np.random.default_rng(12)
        for metric in ("euclidean", "sqeuclidean", "manhattan", "chebyshev"):
            m = get_metric(metric)
            pts = rng.normal(size=(25, 2))
            lo = rng.normal(size=(25, 2))
            hi = lo + rng.uniform(0.1, 2.0, size=(25, 2))
            got_min = m.rect_mindist_many(pts, lo, hi)
            got_max = m.rect_maxdist_many(pts, lo, hi)
            for i in range(len(pts)):
                assert got_min[i] == m.rect_mindist(pts[i], lo[i], hi[i])
                assert got_max[i] == m.rect_maxdist(pts[i], lo[i], hi[i])
