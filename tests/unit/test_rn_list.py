"""Unit tests for the approximate RN-List / RN-CH indexes (paper §3.3)."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.core.quantities import NO_NEIGHBOR
from repro.indexes.list_index import ListIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex

from tests.conftest import assert_quantities_equal


@pytest.fixture
def tau(blobs):
    return 1.5  # well above the dc used in tests, well below the diameter


@pytest.fixture
def fitted(blobs, tau):
    return RNListIndex(tau=tau).fit(blobs)


class TestTruncation:
    def test_rows_only_contain_neighbors_within_tau(self, blobs, fitted, tau):
        for p in range(0, len(blobs), 41):
            start, stop = fitted._offsets[p], fitted._offsets[p + 1]
            assert (fitted._dists[start:stop] < tau).all()

    def test_rows_sorted(self, fitted, blobs):
        for p in range(0, len(blobs), 41):
            start, stop = fitted._offsets[p], fitted._offsets[p + 1]
            row = fitted._dists[start:stop]
            assert (np.diff(row) >= 0).all()

    def test_row_lengths_match_rho_at_tau(self, blobs, fitted, tau):
        np.testing.assert_array_equal(
            fitted.row_lengths(), naive_quantities(blobs, tau).rho
        )

    def test_memory_smaller_than_full_list(self, blobs, fitted):
        assert fitted.memory_bytes() < ListIndex().fit(blobs).memory_bytes()

    def test_smaller_tau_smaller_memory(self, blobs):
        big = RNListIndex(tau=2.0).fit(blobs)
        small = RNListIndex(tau=0.5).fit(blobs)
        assert small.memory_bytes() < big.memory_bytes()

    def test_invalid_tau(self):
        with pytest.raises(ValueError, match="tau"):
            RNListIndex(tau=0.0)


class TestExactWhileDcBelowTau:
    def test_rho_exact(self, blobs, fitted):
        for dc in (0.2, 0.5, 1.0, 1.49):
            np.testing.assert_array_equal(
                fitted.rho_all(dc), naive_quantities(blobs, dc).rho
            )

    def test_full_quantities_exact_for_clustered_data(self, blobs, fitted):
        """Non-peak δ stays exact because every μ is within τ here."""
        base = naive_quantities(blobs, 0.5)
        got = fitted.quantities(0.5)
        np.testing.assert_array_equal(base.rho, got.rho)
        resolved = got.mu != NO_NEIGHBOR
        np.testing.assert_array_equal(got.mu[resolved], base.mu[resolved])
        np.testing.assert_array_equal(got.delta[resolved], base.delta[resolved])

    def test_tau_above_diameter_is_bit_identical_to_exact(self, blobs):
        index = RNListIndex(tau=1e6).fit(blobs)
        base = naive_quantities(blobs, 0.5)
        assert_quantities_equal(base, index.quantities(0.5))


class TestApproximationBeyondTau:
    def test_rho_is_row_length_when_dc_exceeds_tau(self, blobs, fitted):
        rho = fitted.rho_all(5.0)  # dc > tau = 1.5
        np.testing.assert_array_equal(rho, fitted.row_lengths())

    def test_truncated_peaks_get_big_delta(self, blobs):
        index = RNListIndex(tau=0.3).fit(blobs)
        q = index.quantities(0.2)
        unresolved = q.mu == NO_NEIGHBOR
        assert unresolved.sum() >= 1
        # Big-delta objects must dominate every resolved delta.
        if (~unresolved).any():
            assert q.delta[unresolved].min() > q.delta[~unresolved].max()

    def test_empty_rows_handled(self):
        # tau smaller than every pairwise gap: all rows empty.
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        index = RNListIndex(tau=1.0).fit(pts)
        assert (index.row_lengths() == 0).all()
        q = index.quantities(0.5)
        assert (q.rho == 0).all()
        assert (q.mu == NO_NEIGHBOR).all()
        assert (q.delta >= 10.0).all()


class TestRNCH:
    def test_rho_matches_rnlist_below_tau(self, blobs, tau):
        rn = RNListIndex(tau=tau).fit(blobs)
        rnch = RNCHIndex(tau=tau, bin_width=0.2).fit(blobs)
        for dc in (0.13, 0.4, 0.8, 1.2):
            np.testing.assert_array_equal(
                rnch.rho_all(dc), rn.rho_all(dc), err_msg=f"dc={dc}"
            )

    def test_rho_on_bin_edge(self, blobs, tau):
        rnch = RNCHIndex(tau=tau, bin_width=0.25).fit(blobs)
        np.testing.assert_array_equal(
            rnch.rho_all(0.5), naive_quantities(blobs, 0.5).rho
        )

    def test_rho_above_tau_falls_back_to_row_length(self, blobs, tau):
        rnch = RNCHIndex(tau=tau, bin_width=0.2).fit(blobs)
        np.testing.assert_array_equal(rnch.rho_all(tau * 2), rnch.row_lengths())

    def test_delta_identical_to_rnlist(self, blobs, tau):
        rn = RNListIndex(tau=tau).fit(blobs)
        rnch = RNCHIndex(tau=tau, bin_width=0.2).fit(blobs)
        a = rn.quantities(0.5)
        b = rnch.quantities(0.5)
        np.testing.assert_array_equal(a.delta, b.delta)
        np.testing.assert_array_equal(a.mu, b.mu)

    def test_auto_bin_width_covers_tau(self, blobs, tau):
        rnch = RNCHIndex(tau=tau, default_bins=16).fit(blobs)
        assert rnch.bin_width is None  # configured stays auto
        assert rnch.bin_width_ == pytest.approx(tau / 16)

    def test_memory_exceeds_plain_rnlist(self, blobs, tau):
        rn = RNListIndex(tau=tau).fit(blobs)
        rnch = RNCHIndex(tau=tau, bin_width=0.2).fit(blobs)
        assert rnch.memory_bytes() > rn.memory_bytes()
        assert rnch.histogram_memory_bytes() > 0

    def test_not_exact_flag(self):
        assert RNListIndex.exact is False
        assert RNCHIndex.exact is False
