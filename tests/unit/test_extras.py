"""Unit tests for the DBSCAN and k-means reference implementations."""

import numpy as np
import pytest

from repro.extras.dbscan import NOISE, dbscan
from repro.extras.kmeans import kmeans
from repro.metrics.external import adjusted_rand_index


@pytest.fixture
def two_moons(rng):
    """Two interleaved half-circles — the classic k-means failure case."""
    t = rng.uniform(0, np.pi, 200)
    upper = np.column_stack([np.cos(t), np.sin(t)]) + rng.normal(0, 0.06, (200, 2))
    lower = np.column_stack([1 - np.cos(t), 0.5 - np.sin(t)]) + rng.normal(
        0, 0.06, (200, 2)
    )
    points = np.concatenate([upper, lower])
    labels = np.concatenate([np.zeros(200), np.ones(200)]).astype(np.int64)
    return points, labels


class TestDBSCAN:
    def test_recovers_blobs(self, blobs):
        result = dbscan(blobs, eps=0.3, min_pts=4)
        assert result.n_clusters == 3
        sizes = np.bincount(result.labels[result.labels >= 0])
        assert sorted(sizes, reverse=True)[2] >= 50

    def test_handles_moons(self, two_moons):
        points, truth = two_moons
        result = dbscan(points, eps=0.2, min_pts=4)
        mask = result.labels >= 0
        assert adjusted_rand_index(truth[mask], result.labels[mask]) > 0.95

    def test_noise_detected(self, blobs):
        result = dbscan(blobs, eps=0.15, min_pts=5)
        assert result.noise_count() > 0
        assert (result.labels[~result.core_mask & (result.labels == NOISE)] == NOISE).all()

    def test_all_noise_when_eps_tiny(self, blobs):
        result = dbscan(blobs, eps=1e-9, min_pts=2)
        assert result.n_clusters == 0
        assert result.noise_count() == len(blobs)

    def test_one_cluster_when_eps_huge(self, blobs):
        result = dbscan(blobs, eps=100.0, min_pts=2)
        assert result.n_clusters == 1
        assert result.noise_count() == 0

    def test_border_points_join_clusters(self):
        # A core chain with one border point at the end.
        pts = np.array([[0.0, 0], [0.5, 0], [1.0, 0], [1.5, 0], [2.2, 0]])
        result = dbscan(pts, eps=0.8, min_pts=2)
        assert result.labels[4] == result.labels[0]
        assert not result.core_mask[4]

    def test_validation(self):
        with pytest.raises(ValueError, match="eps"):
            dbscan(np.zeros((3, 2)), eps=0.0, min_pts=2)
        with pytest.raises(ValueError, match="min_pts"):
            dbscan(np.zeros((3, 2)), eps=1.0, min_pts=0)
        with pytest.raises(ValueError, match="non-empty"):
            dbscan(np.empty((0, 2)), eps=1.0, min_pts=2)


class TestKMeans:
    def test_recovers_blobs(self, blobs):
        result = kmeans(blobs, k=3, seed=0)
        assert result.n_clusters == 3
        assert result.inertia < 1e3
        assert len(np.unique(result.labels)) == 3

    def test_fails_on_moons(self, two_moons):
        """The Section-1 point: centroid methods split non-convex clusters."""
        points, truth = two_moons
        result = kmeans(points, k=2, seed=0)
        assert adjusted_rand_index(truth, result.labels) < 0.7

    def test_k_equals_n(self, rng):
        pts = rng.normal(size=(10, 2))
        result = kmeans(pts, k=10, seed=1)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one(self, blobs):
        result = kmeans(blobs, k=1)
        np.testing.assert_allclose(result.centroids[0], blobs.mean(axis=0))

    def test_deterministic_given_seed(self, blobs):
        a = kmeans(blobs, k=3, seed=5)
        b = kmeans(blobs, k=3, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_duplicate_points(self):
        pts = np.tile([[1.0, 1.0]], (20, 1))
        result = kmeans(pts, k=3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            kmeans(np.zeros((3, 2)), k=0)
        with pytest.raises(ValueError, match="k must be"):
            kmeans(np.zeros((3, 2)), k=4)
        with pytest.raises(ValueError, match="non-empty"):
            kmeans(np.empty((0, 2)), k=1)
