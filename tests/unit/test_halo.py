"""Unit tests for halo (border-noise) detection."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.core.assignment import assign_labels
from repro.core.decision import select_centers_top_k
from repro.core.halo import halo_mask


def cluster_and_halo(points, dc, k):
    q = naive_quantities(points, dc)
    centers = select_centers_top_k(q, k)
    labels = assign_labels(q, centers, points=points)
    halo = halo_mask(points, labels, q.rho, dc)
    return q, labels, halo


class TestHalo:
    def test_far_separated_clusters_have_no_halo(self):
        rng = np.random.default_rng(3)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.2, (80, 2)), rng.normal([100, 100], 0.2, (80, 2))]
        )
        _, _, halo = cluster_and_halo(pts, dc=0.5, k=2)
        assert not halo.any()

    def test_touching_clusters_have_halo_at_border(self):
        rng = np.random.default_rng(4)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.6, (150, 2)), rng.normal([2.2, 0], 0.6, (150, 2))]
        )
        q, labels, halo = cluster_and_halo(pts, dc=0.4, k=2)
        assert halo.any()
        # Halo objects must be less dense than their cluster's core.
        for c in (0, 1):
            core = q.rho[(labels == c) & ~halo]
            edge = q.rho[(labels == c) & halo]
            if len(edge) and len(core):
                assert edge.max() <= core.max()

    def test_halo_points_near_boundary(self):
        rng = np.random.default_rng(5)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.5, (120, 2)), rng.normal([2.0, 0], 0.5, (120, 2))]
        )
        _, labels, halo = cluster_and_halo(pts, dc=0.4, k=2)
        if halo.any():
            # Halo x-coordinates concentrate between the two centres.
            xs = pts[halo][:, 0]
            assert xs.mean() == pytest.approx(1.0, abs=0.8)

    def test_blocking_invariant(self):
        rng = np.random.default_rng(6)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.5, (60, 2)), rng.normal([1.8, 0], 0.5, (60, 2))]
        )
        q = naive_quantities(pts, 0.4)
        labels = assign_labels(q, select_centers_top_k(q, 2), points=pts)
        a = halo_mask(pts, labels, q.rho, 0.4, block_rows=7)
        b = halo_mask(pts, labels, q.rho, 0.4, block_rows=4096)
        np.testing.assert_array_equal(a, b)

    def test_length_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            halo_mask(np.zeros((3, 2)), np.zeros(2, dtype=int), np.zeros(3, dtype=int), 1.0)

    def test_float_densities_not_truncated(self):
        """Gaussian-kernel/kNN variants produce real-valued ρ; an int cast
        here used to zero the fractional parts and corrupt the border
        thresholds (regression)."""
        rng = np.random.default_rng(8)
        pts = np.concatenate(
            [rng.normal([0, 0], 0.5, (100, 2)), rng.normal([1.9, 0], 0.5, (100, 2))]
        )
        q = naive_quantities(pts, 0.4)
        labels = assign_labels(q, select_centers_top_k(q, 2), points=pts)
        rho_int = q.rho.astype(np.int64)
        # Sub-integer offsets must influence the halo exactly as any other
        # float densities would — scaling ρ into (0, 1) makes an int cast
        # collapse everything to zero, so the two must now differ in general
        # but agree when the float values are integral.
        np.testing.assert_array_equal(
            halo_mask(pts, labels, rho_int, 0.4),
            halo_mask(pts, labels, rho_int.astype(np.float64), 0.4),
        )
        rho_frac = rho_int.astype(np.float64) / (rho_int.max() + 1.0)
        frac_halo = halo_mask(pts, labels, rho_frac, 0.4)
        # The threshold comparison is scale-invariant, so the fractional
        # densities must reproduce the integer-density halo — the truncating
        # cast instead returned all-False (rho_border == 0 everywhere).
        np.testing.assert_array_equal(frac_halo, halo_mask(pts, labels, rho_int, 0.4))
        assert frac_halo.any()
