"""Unit tests for the observability core (repro.obs).

Covers the three pillars in isolation: the metrics registry (instrument
kinds, label bounding, write accounting, no-op singletons), request tracing
(span trees, context propagation, cross-thread stitching, the ring buffer),
and exposition (Prometheus render/parse round trip, JSON stats dumps,
provenance stamping).
"""

import json
import threading

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import (
    dump_stats_json,
    parse_prometheus,
    phase_totals,
    render_prometheus,
)
from repro.obs.metrics import (
    MAX_LABEL_SETS,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    OVERFLOW_LABEL,
    MetricsRegistry,
)
from repro.obs.provenance import append_record, provenance_block


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs_metrics.REGISTRY.reset()
    obs_trace.reset()
    yield
    obs.disable()
    obs_metrics.REGISTRY.reset()
    obs_trace.reset()


class TestRuntime:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_enable_disable_round_trip(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_enabled_scope_restores_previous_state(self):
        with obs.enabled_scope():
            assert obs.enabled()
        assert not obs.enabled()
        obs.enable()
        with obs.enabled_scope(False):
            assert not obs.enabled()
        assert obs.enabled()


class TestNoopSingletons:
    """The disabled path must hand out the shared no-op objects."""

    def test_disabled_accessors_return_the_singletons(self):
        assert obs_metrics.counter("x_total") is NOOP_COUNTER
        assert obs_metrics.gauge("x") is NOOP_GAUGE
        assert obs_metrics.histogram("x_seconds") is NOOP_HISTOGRAM

    def test_noop_labels_returns_self(self):
        assert NOOP_COUNTER.labels("a", "b") is NOOP_COUNTER

    def test_disabled_span_is_the_noop_singleton(self):
        assert obs_trace.begin_span("x") is obs_trace.NOOP_SPAN
        with obs_trace.span("x") as sp:
            assert sp is obs_trace.NOOP_SPAN

    def test_noop_writes_register_nothing(self):
        NOOP_COUNTER.inc()
        NOOP_GAUGE.set(5)
        NOOP_HISTOGRAM.observe(0.1)
        assert obs_metrics.REGISTRY.collect() == []

    def test_cached_handle_stops_recording_after_disable(self):
        obs.enable()
        handle = obs_metrics.counter("repro_test_total", "t")
        handle.inc()
        obs.disable()
        handle.inc()  # must silently drop, not record
        obs.enable()
        [family] = [
            f for f in obs_metrics.REGISTRY.collect() if f["name"] == "repro_test_total"
        ]
        assert family["samples"][0]["value"] == 1.0


class TestMetricsRegistry:
    def test_counter_gauge_histogram_kinds(self):
        obs.enable()
        obs_metrics.counter("c_total", "c").inc(2)
        obs_metrics.gauge("g", "g").set(7)
        obs_metrics.histogram("h_seconds", "h").observe(0.003)
        by_name = {f["name"]: f for f in obs_metrics.REGISTRY.collect()}
        assert by_name["c_total"]["samples"][0]["value"] == 2.0
        assert by_name["g"]["samples"][0]["value"] == 7.0
        assert by_name["h_seconds"]["samples"][0]["count"] == 1

    def test_gauge_dec(self):
        obs.enable()
        g = obs_metrics.gauge("g")
        g.inc(5)
        g.dec(2)
        [family] = obs_metrics.REGISTRY.collect()
        assert family["samples"][0]["value"] == 3.0

    def test_histogram_bucketing(self):
        obs.enable()
        h = obs_metrics.histogram("h_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(value)
        [family] = obs_metrics.REGISTRY.collect()
        sample = family["samples"][0]
        assert sample["buckets"] == [1, 2, 1, 1]  # (≤.01, ≤.1, ≤1, +Inf]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(5.605)

    def test_boundary_value_falls_in_its_bucket(self):
        obs.enable()
        h = obs_metrics.histogram("h_seconds", buckets=(0.01, 0.1))
        h.observe(0.01)  # le="0.01" is inclusive in Prometheus
        [family] = obs_metrics.REGISTRY.collect()
        assert family["samples"][0]["buckets"] == [1, 0, 0]

    def test_kind_conflict_rejected(self):
        obs.enable()
        obs_metrics.counter("same_name")
        with pytest.raises(ValueError, match="already registered"):
            obs_metrics.gauge("same_name")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.register("counter", "bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.register("counter", "ok_total", labelnames=("bad-label",))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.register("histogram", "h", buckets=(1.0, 0.5))

    def test_wrong_label_arity_rejected(self):
        obs.enable()
        family = obs_metrics.counter("c_total", labelnames=("op",))
        with pytest.raises(ValueError, match="label values"):
            family.labels("a", "b")

    def test_label_cardinality_folds_into_overflow(self):
        obs.enable()
        family = obs_metrics.counter("c_total", labelnames=("k",))
        for i in range(MAX_LABEL_SETS + 10):
            family.labels(f"v{i}").inc()
        [collected] = obs_metrics.REGISTRY.collect()
        labels = {s["labels"]["k"] for s in collected["samples"]}
        assert OVERFLOW_LABEL in labels
        assert len(labels) == MAX_LABEL_SETS + 1
        overflow = next(
            s for s in collected["samples"] if s["labels"]["k"] == OVERFLOW_LABEL
        )
        assert overflow["value"] == 10.0

    def test_total_writes_accounts_every_write(self):
        obs.enable()
        before = obs_metrics.REGISTRY.total_writes()
        obs_metrics.counter("c_total").inc()
        obs_metrics.gauge("g").set(1)
        obs_metrics.histogram("h_seconds").observe(0.1)
        assert obs_metrics.REGISTRY.total_writes() - before == 3

    def test_concurrent_increments_do_not_lose_writes(self):
        obs.enable()
        family = obs_metrics.counter("c_total")

        def hammer():
            for _ in range(500):
                family.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        [collected] = obs_metrics.REGISTRY.collect()
        assert collected["samples"][0]["value"] == 2000.0


class TestTrace:
    def test_span_tree_nesting_and_durations(self):
        obs.enable()
        with obs_trace.span("root") as root:
            with obs_trace.span("child"):
                with obs_trace.span("grandchild"):
                    pass
        tree = obs_trace.get_trace(root.trace_id)
        assert tree["name"] == "root"
        assert tree["children"][0]["name"] == "child"
        assert tree["children"][0]["children"][0]["name"] == "grandchild"

        def check(node):
            assert node["duration_ns"] >= 0
            assert node["offset_ns"] >= 0
            for child in node["children"]:
                check(child)

        check(tree)

    def test_only_finished_roots_enter_the_buffer(self):
        obs.enable()
        sp = obs_trace.begin_span("root")
        assert obs_trace.get_trace(sp.trace_id) is None
        sp.finish()
        assert obs_trace.get_trace(sp.trace_id) is not None

    def test_finish_is_idempotent(self):
        obs.enable()
        sp = obs_trace.begin_span("root")
        sp.finish()
        end = sp.end_ns
        sp.finish()
        assert sp.end_ns == end
        assert obs_trace.recent_trace_ids().count(sp.trace_id) == 1

    def test_explicit_parent_stitches_across_threads(self):
        obs.enable()
        root = obs_trace.begin_span("root")
        names = []

        def worker():
            with obs_trace.use_span(root):
                with obs_trace.span("child") as sp:
                    names.append(sp.trace_id)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        root.finish()
        assert names == [root.trace_id]
        tree = obs_trace.get_trace(root.trace_id)
        assert [c["name"] for c in tree["children"]] == ["child"]

    def test_error_attribute_on_exception(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs_trace.span("root") as root:
                raise RuntimeError("boom")
        tree = obs_trace.get_trace(root.trace_id)
        assert tree["attrs"]["error"] == "RuntimeError"

    def test_ring_buffer_evicts_oldest(self):
        obs.enable()
        ids = []
        for _ in range(obs_trace.TRACE_BUFFER_CAPACITY + 5):
            with obs_trace.span("r") as sp:
                pass
            ids.append(sp.trace_id)
        assert obs_trace.get_trace(ids[0]) is None
        assert obs_trace.get_trace(ids[-1]) is not None


class TestExport:
    def test_prometheus_round_trip(self):
        obs.enable()
        obs_metrics.counter("repro_x_total", "help text", ("op",)).labels("a").inc(3)
        obs_metrics.gauge("repro_depth", "queue").set(2)
        obs_metrics.histogram("repro_h_seconds", "lat", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus()
        samples = parse_prometheus(text)
        assert samples["repro_x_total"] == [({"op": "a"}, 3.0)]
        assert samples["repro_depth"] == [({}, 2.0)]
        buckets = dict(
            (labels["le"], value) for labels, value in samples["repro_h_seconds_bucket"]
        )
        assert buckets == {"0.1": 0.0, "1": 1.0, "+Inf": 1.0}
        assert samples["repro_h_seconds_count"] == [({}, 1.0)]

    def test_label_escaping_round_trips(self):
        obs.enable()
        tricky = 'quote " backslash \\ done'
        obs_metrics.counter("repro_x_total", "", ("k",)).labels(tricky).inc()
        samples = parse_prometheus(render_prometheus())
        assert samples["repro_x_total"][0][0]["k"] == tricky

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is not a metric line !!!\n")

    def test_phase_totals_sums_repeated_names(self):
        obs.enable()
        with obs_trace.span("root") as root:
            with obs_trace.span("phase"):
                pass
            with obs_trace.span("phase"):
                pass
        totals = phase_totals(obs_trace.get_trace(root.trace_id))
        assert set(totals) == {"root", "phase"}
        assert totals["phase"] >= 0.0

    def test_dump_stats_json(self, tmp_path):
        obs.enable()
        obs_metrics.counter("repro_x_total").inc()
        with obs_trace.span("root") as root:
            pass
        path = tmp_path / "stats.json"
        payload = dump_stats_json(
            str(path), obs_trace.get_trace(root.trace_id), extra={"note": "hi"}
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["schema_version"] == 1
        assert "repro_x_total" in on_disk["metrics"]
        assert on_disk["trace"]["name"] == "root"
        assert on_disk["note"] == "hi"


class TestProvenance:
    def test_block_has_the_common_fields(self):
        block = provenance_block()
        assert set(block) == {
            "schema_version", "git_commit", "python", "numpy", "cpu_count", "usable_cpus",
        }
        assert block["schema_version"] == 1
        assert block["usable_cpus"] >= 1

    def test_append_record_stamps_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        append_record({"a": 1}, str(path))
        append_record({"b": 2}, str(path))
        records = json.loads(path.read_text())
        assert [sorted(r)[0] for r in records] == ["a", "b"]
        assert all("provenance" in r for r in records)

    def test_append_record_wraps_legacy_single_record_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"legacy": true}')
        append_record({"new": 1}, str(path))
        records = json.loads(path.read_text())
        assert records[0] == {"legacy": True}
        assert records[1]["new"] == 1

    def test_existing_provenance_left_untouched(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        append_record({"provenance": {"custom": True}}, str(path))
        [record] = json.loads(path.read_text())
        assert record["provenance"] == {"custom": True}
