"""Unit tests for the dataset generators and loaders."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    ExperimentParams,
    PAPER_DATASETS,
    available_datasets,
    brightkite,
    gaussian_blobs,
    gowalla,
    load_dataset,
    profile_size,
    s1,
    science_toy,
    uniform_square,
)
from repro.datasets.base import PROFILES
from repro.datasets.checkins import simulate_checkins


class TestProfiles:
    def test_sizes_preserve_paper_ordering(self):
        for profile in PROFILES:
            sizes = [profile_size(name, profile) for name in PAPER_DATASETS]
            assert sizes == sorted(sizes), f"{profile} breaks the size ordering"

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="unknown profile"):
            profile_size("s1", "huge")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            profile_size("mnist", "bench")


class TestLoaders:
    def test_all_paper_datasets_loadable(self):
        for name in PAPER_DATASETS:
            ds = load_dataset(name, profile="test")
            assert ds.name == name
            assert ds.n == profile_size(name, "test")
            assert ds.ndim == 2

    def test_available_includes_toy(self):
        assert "science-toy" in available_datasets()

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("iris")

    def test_seed_determinism(self):
        a = load_dataset("s1", profile="test", seed=42)
        b = load_dataset("s1", profile="test", seed=42)
        np.testing.assert_array_equal(a.points, b.points)

    def test_seed_changes_data(self):
        a = load_dataset("s1", profile="test", seed=1)
        b = load_dataset("s1", profile="test", seed=2)
        assert not np.array_equal(a.points, b.points)

    def test_explicit_n_overrides_profile(self):
        ds = load_dataset("query", n=321)
        assert ds.n == 321


class TestCoordinateScales:
    """The dc/w/τ grids only make sense at the original coordinate scales."""

    def test_s1_scale(self):
        ds = s1(n=500, seed=0)
        assert ds.points.min() > -2e5
        assert 8e5 < ds.points.max() < 1.2e6

    def test_query_unit_square(self):
        ds = load_dataset("query", n=500)
        assert ds.points.min() >= -0.2
        assert ds.points.max() <= 1.2

    def test_checkins_in_bbox(self):
        ds = brightkite(n=500)
        lon, lat = ds.points[:, 0], ds.points[:, 1]
        assert lon.min() >= -125.0 and lon.max() <= -66.0
        assert lat.min() >= 25.0 and lat.max() <= 50.0

    def test_dc_grid_below_diameter(self):
        for name in PAPER_DATASETS:
            ds = load_dataset(name, profile="test")
            diameter = ds.diameter_upper_bound()
            for dc in ds.params.dc_grid:
                assert dc < diameter, f"{name}: dc {dc} >= diameter {diameter}"


class TestExperimentParams:
    def test_tau_datasets_have_full_grids(self):
        for name in ("birch", "range", "brightkite", "gowalla"):
            params = load_dataset(name, profile="test").params
            assert params.tau_grid is not None
            assert params.tau_star == max(params.tau_grid)
            assert params.quality_tau_grid is not None
            assert params.fig7_dc is not None and len(params.fig7_dc) == 3

    def test_small_datasets_skip_tau(self):
        for name in ("s1", "query"):
            params = load_dataset(name, profile="test").params
            assert params.tau_grid is None


class TestGenerators:
    def test_gaussian_blobs_labels(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        pts, labels = gaussian_blobs(200, centers, sigma=0.5, seed=0)
        assert len(pts) == 200
        assert set(np.unique(labels)) == {0, 1}

    def test_gaussian_blobs_background(self):
        centers = np.array([[0.0, 0.0]])
        pts, labels = gaussian_blobs(
            100, centers, 0.5, background_fraction=0.3, bbox=(0, 0, 1, 1), seed=0
        )
        assert (labels == -1).sum() == 30

    def test_gaussian_blobs_invalid_background(self):
        with pytest.raises(ValueError, match="background_fraction"):
            gaussian_blobs(10, np.zeros((1, 2)), 1.0, background_fraction=1.0)

    def test_uniform_square_bounds(self):
        pts = uniform_square(100, side=3.0, seed=1)
        assert pts.min() >= 0.0 and pts.max() <= 3.0

    def test_simulate_checkins_zipf_skew(self):
        pts, labels = simulate_checkins(
            3000, n_cities=30, bbox=(-120, 25, -70, 50), seed=0
        )
        city_sizes = np.bincount(labels[labels >= 0], minlength=30)
        # Zipf: the biggest city dwarfs the median one.
        assert city_sizes.max() > 5 * max(np.median(city_sizes), 1)

    def test_simulate_checkins_validation(self):
        with pytest.raises(ValueError, match="n_cities"):
            simulate_checkins(10, n_cities=0, bbox=(0, 0, 1, 1))

    def test_science_toy_shape(self):
        ds = science_toy()
        assert ds.n == 28
        assert (ds.labels == -1).sum() == 3  # the three outliers


class TestDatasetContainer:
    def test_rejects_empty_points(self):
        params = ExperimentParams((1.0,), 1.0, (1.0,), 1.0)
        with pytest.raises(ValueError, match="non-empty"):
            Dataset("x", np.empty((0, 2)), params)

    def test_rejects_label_mismatch(self):
        params = ExperimentParams((1.0,), 1.0, (1.0,), 1.0)
        with pytest.raises(ValueError, match="labels length"):
            Dataset("x", np.zeros((3, 2)), params, labels=np.zeros(2, dtype=np.int64))

    def test_diameter_upper_bound_is_upper(self):
        ds = science_toy()
        from repro.geometry.distance import pairwise_distances

        true_diameter = pairwise_distances(ds.points).max()
        assert ds.diameter_upper_bound() >= true_diameter
