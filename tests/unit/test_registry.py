"""Unit tests for the index registry."""

import pytest

from repro.indexes.base import DPCIndex
from repro.indexes.registry import (
    INDEX_CLASSES,
    available_indexes,
    make_index,
    register_index,
)


class TestRegistry:
    def test_all_paper_indexes_present(self):
        names = available_indexes()
        for expected in ("list", "ch", "rn-list", "rn-ch", "quadtree", "rtree"):
            assert expected in names

    def test_extensions_present(self):
        names = available_indexes()
        assert "kdtree" in names
        assert "grid" in names

    def test_make_index_with_params(self):
        index = make_index("ch", bin_width=0.5)
        assert index.bin_width == 0.5
        assert not index.is_fitted

    def test_make_index_unknown(self):
        with pytest.raises(KeyError, match="unknown index"):
            make_index("btree")

    def test_approximate_indexes_require_tau(self):
        with pytest.raises(TypeError):
            make_index("rn-list")  # tau is intentionally mandatory

    def test_register_custom_index(self):
        class MyIndex(INDEX_CLASSES["kdtree"]):
            name = "my-kdtree"

        register_index(MyIndex)
        try:
            assert isinstance(make_index("my-kdtree"), MyIndex)
        finally:
            del INDEX_CLASSES["my-kdtree"]

    def test_register_rejects_non_index(self):
        with pytest.raises(TypeError, match="not a DPCIndex"):
            register_index(dict)

    def test_register_rejects_abstract_name(self):
        class Nameless(INDEX_CLASSES["kdtree"]):
            name = "abstract"

        with pytest.raises(ValueError, match="concrete registry name"):
            register_index(Nameless)

    def test_names_match_classes(self):
        for name, cls in INDEX_CLASSES.items():
            assert cls.name == name
            assert issubclass(cls, DPCIndex)
