"""Clock-discipline audit for the serving layer.

Deadlines and TTLs must live on one *monotonic* clock end-to-end: a request
admitted before an NTP step, a DST shift or an operator's ``date`` call must
neither expire early nor become immortal.  The serving layer uses

* ``time.perf_counter`` for every :class:`ServeRequest` deadline — admission
  stamp, ``deadline`` derivation and every ``expired()`` comparison,
  including the dispatcher's linger window;
* ``time.monotonic`` for the result cache's TTL (injectable for tests);
* ``time.time`` (wall clock) in exactly one place — the *informational*
  ``published_at`` stamp on a snapshot, which is never compared against any
  deadline.

These tests pin that inventory down: the source scan fails if a future
change sneaks a wall-clock read into a new serving module, and the
behavioural tests fail if a deadline ever reacts to a wall-clock jump.
"""

from __future__ import annotations

import inspect
import pathlib
import re
import time

import repro.serving as serving_pkg
from repro.serving.cache import ResultCache
from repro.serving.coalescer import ServeRequest


class _StubSnapshot:
    """ServeRequest never touches the snapshot at admission time."""


def _make_request(**kwargs) -> ServeRequest:
    return ServeRequest(snapshot=_StubSnapshot(), op="quantities", dc=1.0, **kwargs)


# ---------------------------------------------------------------------------
# Source inventory: wall clock appears once, and only informationally
# ---------------------------------------------------------------------------


def test_wall_clock_appears_only_in_snapshot_published_at():
    serving_dir = pathlib.Path(serving_pkg.__file__).parent
    uses = {}
    for path in sorted(serving_dir.glob("*.py")):
        hits = [
            lineno
            for lineno, line in enumerate(path.read_text().splitlines(), 1)
            if re.search(r"\btime\.time\(", line)
        ]
        if hits:
            uses[path.name] = hits
    assert set(uses) <= {"snapshots.py"}, (
        f"wall-clock reads leaked into the serving layer: {uses} — deadlines "
        "and TTLs must use perf_counter/monotonic"
    )
    source = (serving_dir / "snapshots.py").read_text()
    assert len(re.findall(r"\btime\.time\(", source)) == 1
    # ... and that one read only feeds the informational published_at stamp.
    assert re.search(r"published_at=time\.time\(\)", source)


def test_deadline_paths_use_perf_counter_only():
    """Every deadline derivation/comparison in the coalescer reads
    ``time.perf_counter`` — no mixed-clock arithmetic anywhere."""
    import repro.serving.coalescer as coalescer

    source = inspect.getsource(coalescer)
    assert not re.search(r"\btime\.time\(", source)
    assert not re.search(r"\btime\.monotonic\(", source)
    assert re.search(r"\btime\.perf_counter\(", source)


# ---------------------------------------------------------------------------
# Behaviour: deadlines are immune to wall-clock jumps
# ---------------------------------------------------------------------------


def test_request_deadline_is_one_clock_arithmetic():
    req = _make_request(timeout_s=10.0)
    # deadline = admission stamp + timeout, all in perf_counter space.
    assert req.deadline == req.enqueued_at + 10.0
    assert not req.expired(now=req.enqueued_at)
    assert not req.expired(now=req.deadline - 1e-6)
    assert req.expired(now=req.deadline)
    assert req.expired(now=req.deadline + 5.0)


def test_request_without_timeout_never_expires():
    req = _make_request()
    assert req.deadline is None
    assert not req.expired(now=req.enqueued_at + 1e9)


def test_wall_clock_jump_does_not_expire_requests(monkeypatch):
    req = _make_request(timeout_s=60.0)
    # An NTP step / operator `date` call: wall clock leaps a day forward.
    monkeypatch.setattr(time, "time", lambda: time.perf_counter() + 86_400.0)
    assert not req.expired()
    # ... and a day backward cannot resurrect an expired one.
    expired = _make_request(timeout_s=60.0)
    expired.deadline = expired.enqueued_at - 1.0
    monkeypatch.setattr(time, "time", lambda: time.perf_counter() - 86_400.0)
    assert expired.expired()


def test_perf_counter_advance_does_expire_requests(monkeypatch):
    req = _make_request(timeout_s=5.0)
    real = time.perf_counter
    monkeypatch.setattr(time, "perf_counter", lambda: real() + 6.0)
    assert req.expired()


# ---------------------------------------------------------------------------
# Cache TTL: monotonic by default, wall-clock jumps irrelevant
# ---------------------------------------------------------------------------


def test_cache_default_clock_is_monotonic():
    signature = inspect.signature(ResultCache.__init__)
    assert signature.parameters["clock"].default is time.monotonic


def test_cache_ttl_ignores_wall_clock(monkeypatch):
    ticks = [0.0]
    cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=lambda: ticks[0])
    cache.put("k", "v")
    # Wall clock jumps do not touch the injected monotonic stream.
    monkeypatch.setattr(time, "time", lambda: 1e12)
    assert cache.get("k") == "v"
    ticks[0] = 10.0 + 1e-9  # the *monotonic* stream passing the TTL does
    assert cache.get("k") is None
    assert cache.stats.expirations == 1


def test_snapshot_published_at_is_wall_clock_informational():
    """The one wall-clock stamp is for humans (as_dict), not for deadlines."""
    import numpy as np

    from repro.indexes.list_index import ListIndex
    from repro.serving.snapshots import SnapshotStore

    store = SnapshotStore()
    index = ListIndex().fit(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]]))
    before = time.time()
    snapshot = store.publish("s", index)
    after = time.time()
    assert before <= snapshot.published_at <= after
