"""Error paths and file-format robustness of index persistence."""

import json
import os

import numpy as np
import pytest

from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.persist import CorruptSnapshotError, load_index, save_index


@pytest.fixture
def saved(tmp_path, blobs):
    path = str(tmp_path / "index.npz")
    save_index(KDTreeIndex().fit(blobs), path)
    return path


def _rewrite_meta(path, mutate):
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != "meta"}
        meta = json.loads(str(data["meta"]))
    mutate(meta)
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)


class TestLoadErrors:
    def test_wrong_version_rejected(self, saved):
        _rewrite_meta(saved, lambda m: m.update(format_version=99))
        with pytest.raises(ValueError, match="unsupported index file version"):
            load_index(saved)

    def test_unknown_index_type_rejected(self, saved):
        _rewrite_meta(saved, lambda m: m.update(index_name="btree"))
        with pytest.raises(ValueError, match="unknown index type"):
            load_index(saved)

    def test_not_an_index_file(self, tmp_path):
        path = str(tmp_path / "random.npz")
        np.savez(path, data=np.zeros(3))
        with pytest.raises(KeyError):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(str(tmp_path / "nope.npz"))


class TestCorruptionAndAtomicity:
    """Crash-mid-save and bitrot: typed errors, quarantine, atomic rename."""

    def test_truncated_file_raises_corrupt_snapshot_error(self, saved):
        """A payload cut short by a crash mid-write must fail with a clear
        typed error, not whatever numpy/zipfile internals happen to throw."""
        size = os.path.getsize(saved)
        with open(saved, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(CorruptSnapshotError, match="truncated or corrupt"):
            load_index(saved)
        # the bad payload was quarantined: retries fail clean
        assert not os.path.exists(saved)
        assert os.path.exists(saved + ".corrupt")
        with pytest.raises(FileNotFoundError):
            load_index(saved)

    def test_quarantine_opt_out_leaves_file(self, saved):
        with open(saved, "r+b") as fh:
            fh.truncate(os.path.getsize(saved) // 2)
        with pytest.raises(CorruptSnapshotError) as info:
            load_index(saved, quarantine=False)
        assert info.value.quarantined_to is None
        assert os.path.exists(saved)

    def test_corrupt_snapshot_error_is_a_value_error(self):
        assert issubclass(CorruptSnapshotError, ValueError)

    def test_save_is_atomic_over_existing_payload(self, saved, tmp_path, blobs):
        """Overwriting a snapshot goes through rename: at no point does the
        target hold a partial payload, and no temp files are left behind."""
        before = load_index(saved, quarantine=False).fingerprint()
        save_index(KDTreeIndex(leaf_size=4).fit(blobs), saved)
        after = load_index(saved, quarantine=False).fingerprint()
        assert after != before  # different params ⇒ different content
        assert sorted(os.listdir(tmp_path)) == ["index.npz"]

    def test_save_appends_npz_suffix_like_numpy(self, tmp_path, blobs):
        """The atomic path must keep np.savez's suffix behaviour: a bare
        path gains .npz, so pre-existing callers find their files."""
        save_index(KDTreeIndex().fit(blobs), str(tmp_path / "bare"))
        assert os.path.exists(tmp_path / "bare.npz")
        assert load_index(str(tmp_path / "bare.npz")).is_fitted


class TestGeographicEndToEnd:
    """Haversine + list index on check-in coordinates: real-world km radii."""

    def test_haversine_dpc_pipeline(self):
        rng = np.random.default_rng(8)
        # Two 'cities' ~340 km apart (roughly London / Paris) in (lat, lon).
        london = rng.normal([51.5, -0.13], [0.05, 0.08], size=(60, 2))
        paris = rng.normal([48.86, 2.35], [0.05, 0.08], size=(60, 2))
        points = np.concatenate([london, paris])
        from repro.indexes.list_index import ListIndex

        index = ListIndex(metric="haversine").fit(points)
        result = index.cluster(dc=20.0, n_centers=2)  # 20 km radius
        labels = result.labels
        assert (labels[:60] == labels[0]).all()
        assert (labels[60:] == labels[60]).all()
        assert labels[0] != labels[60]

    def test_haversine_rho_is_km_radius_count(self):
        # Points 111 km apart along a meridian: 1 degree latitude.
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        from repro.indexes.list_index import ListIndex

        index = ListIndex(metric="haversine").fit(points)
        np.testing.assert_array_equal(index.rho_all(120.0), [1, 2, 1])
        np.testing.assert_array_equal(index.rho_all(100.0), [0, 0, 0])
