"""Error paths and file-format robustness of index persistence."""

import json

import numpy as np
import pytest

from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.persist import load_index, save_index


@pytest.fixture
def saved(tmp_path, blobs):
    path = str(tmp_path / "index.npz")
    save_index(KDTreeIndex().fit(blobs), path)
    return path


def _rewrite_meta(path, mutate):
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != "meta"}
        meta = json.loads(str(data["meta"]))
    mutate(meta)
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)


class TestLoadErrors:
    def test_wrong_version_rejected(self, saved):
        _rewrite_meta(saved, lambda m: m.update(format_version=99))
        with pytest.raises(ValueError, match="unsupported index file version"):
            load_index(saved)

    def test_unknown_index_type_rejected(self, saved):
        _rewrite_meta(saved, lambda m: m.update(index_name="btree"))
        with pytest.raises(ValueError, match="unknown index type"):
            load_index(saved)

    def test_not_an_index_file(self, tmp_path):
        path = str(tmp_path / "random.npz")
        np.savez(path, data=np.zeros(3))
        with pytest.raises(KeyError):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(str(tmp_path / "nope.npz"))


class TestGeographicEndToEnd:
    """Haversine + list index on check-in coordinates: real-world km radii."""

    def test_haversine_dpc_pipeline(self):
        rng = np.random.default_rng(8)
        # Two 'cities' ~340 km apart (roughly London / Paris) in (lat, lon).
        london = rng.normal([51.5, -0.13], [0.05, 0.08], size=(60, 2))
        paris = rng.normal([48.86, 2.35], [0.05, 0.08], size=(60, 2))
        points = np.concatenate([london, paris])
        from repro.indexes.list_index import ListIndex

        index = ListIndex(metric="haversine").fit(points)
        result = index.cluster(dc=20.0, n_centers=2)  # 20 km radius
        labels = result.labels
        assert (labels[:60] == labels[0]).all()
        assert (labels[60:] == labels[60]).all()
        assert labels[0] != labels[60]

    def test_haversine_rho_is_km_radius_count(self):
        # Points 111 km apart along a meridian: 1 degree latitude.
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        from repro.indexes.list_index import ListIndex

        index = ListIndex(metric="haversine").fit(points)
        np.testing.assert_array_equal(index.rho_all(120.0), [1, 2, 1])
        np.testing.assert_array_equal(index.rho_all(100.0), [0, 0, 0])
