"""Unit tests for the ASCII chart rendering."""

import pytest

from repro.harness.charts import CHART_SPECS, bar_chart, chart_table, grouped_chart
from repro.harness.tables import Table


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], title="demo")
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert len(lines) == 3
        # The larger value gets the longer bar.
        assert lines[2].count("█") > lines[1].count("█")

    def test_scaling_to_width(self):
        text = bar_chart(["x"], [123.0], width=10)
        assert text.splitlines()[-1].count("█") == 10

    def test_zero_values(self):
        text = bar_chart(["x", "y"], [0.0, 0.0])
        assert "█" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="labels vs"):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "(no data)" in bar_chart([], [], title="none")


class TestGroupedChart:
    def test_groups_rendered(self):
        text = grouped_chart(
            {"g1": {"a": 1.0, "b": 2.0}, "g2": {"a": 4.0}}, title="demo"
        )
        assert "g1:" in text and "g2:" in text
        # Bars scale against the global maximum (4.0).
        lines = {l.strip().split(" |")[0]: l for l in text.splitlines() if "|" in l}
        assert lines["a"].count("█") < len(text)


class TestChartTable:
    def _table(self):
        t = Table("demo", ["ds", "m", "v"])
        t.add_row(ds="x", m="list", v=1.0)
        t.add_row(ds="x", m="tree", v=3.0)
        t.add_row(ds="y", m="list", v=2.0)
        t.add_row(ds="y", m="tree", v=None)  # missing values are skipped
        return t

    def test_flat_chart(self):
        text = chart_table(self._table(), "v", "m")
        assert "list" in text and "tree" in text

    def test_grouped_chart(self):
        text = chart_table(self._table(), "v", "m", group_column="ds")
        assert "x:" in text and "y:" in text
        assert text.count("list") == 2
        assert text.count("tree") == 1  # the None row dropped

    def test_specs_reference_real_columns(self):
        """Every CHART_SPECS entry must name columns its experiment emits."""
        from repro.harness.experiments import EXPERIMENTS

        for name, spec in CHART_SPECS.items():
            table = EXPERIMENTS[name]
            # Can't afford running them here; validate against the Table
            # constructors by static inspection of the source instead.
            import inspect

            source = inspect.getsource(table)
            for column in filter(None, spec.values()):
                assert f'"{column}"' in source, (name, column)
