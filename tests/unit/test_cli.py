"""Unit tests for the two CLIs (python -m repro, python -m repro.harness)."""

import numpy as np
import pytest

from repro.__main__ import main as repro_main
from repro.harness.__main__ import main as harness_main


class TestClusterCommand:
    def test_builtin_dataset(self, capsys):
        code = repro_main(
            [
                "cluster", "--dataset", "s1", "--profile", "test",
                "--index", "kdtree", "--dc", "30000", "--n-centers", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters: 15" in out
        assert "decision graph" in out

    def test_csv_input_and_output(self, tmp_path, capsys, blobs):
        inp = tmp_path / "points.csv"
        outp = tmp_path / "labels.txt"
        np.savetxt(inp, blobs, delimiter=",")
        code = repro_main(
            [
                "cluster", "--input", str(inp), "--index", "rtree",
                "--dc", "0.5", "--n-centers", "3", "--out", str(outp),
            ]
        )
        assert code == 0
        labels = np.loadtxt(outp)
        assert len(labels) == len(blobs)
        assert set(np.unique(labels)) == {0.0, 1.0, 2.0}

    def test_auto_dc_and_centers(self, tmp_path, capsys, blobs):
        inp = tmp_path / "points.csv"
        np.savetxt(inp, blobs, delimiter=",")
        code = repro_main(["cluster", "--input", str(inp), "--index", "grid"])
        assert code == 0
        assert "clusters:" in capsys.readouterr().out

    def test_halo_flag(self, capsys):
        code = repro_main(
            [
                "cluster", "--dataset", "s1", "--profile", "test",
                "--index", "rtree", "--dc", "30000", "--halo",
            ]
        )
        assert code == 0
        assert "halo objects:" in capsys.readouterr().out

    def test_rn_index_with_tau(self, capsys):
        code = repro_main(
            [
                "cluster", "--dataset", "s1", "--profile", "test",
                "--index", "rn-list", "--tau", "100000", "--dc", "30000",
            ]
        )
        assert code == 0

    def test_both_input_and_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            repro_main(
                ["cluster", "--input", "x.csv", "--dataset", "s1"]
            )

    def test_neither_input_rejected(self):
        with pytest.raises(SystemExit):
            repro_main(["cluster"])

    def test_info(self, capsys):
        assert repro_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "rtree" in out and "gowalla" in out


class TestHarnessCli:
    def test_single_experiment(self, capsys):
        code = harness_main(["fig9b", "--profile", "test", "--datasets", "birch"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9b" in out
        assert "[fig9b:" in out

    def test_chart_flag(self, capsys):
        code = harness_main(
            ["fig9b", "--profile", "test", "--datasets", "birch", "--chart"]
        )
        assert code == 0
        assert "█" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        code = harness_main(
            ["fig9b", "--profile", "test", "--datasets", "birch", "--csv", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "memory_mb" in path.read_text().splitlines()[0]

    def test_ablation_target(self, capsys):
        code = harness_main(["ablation-dimensionality", "--profile", "test"])
        assert code == 0
        assert "dimensionality" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["fig99"])
