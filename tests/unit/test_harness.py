"""Unit tests for the harness: tables, runner plumbing, method selection."""

import numpy as np
import pytest

from repro.datasets.loaders import load_dataset
from repro.harness.runner import (
    MethodSpec,
    full_list_bytes,
    list_index_fits,
    paper_methods,
    time_naive,
    time_quantities,
)
from repro.harness.tables import Table
from repro.indexes.kdtree import KDTreeIndex


class TestTable:
    def test_add_and_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(a=1, b="x")
        t.add_row(a=2.5)
        text = t.render()
        assert "demo" in text
        assert "2.5" in text
        assert text.count("\n") == 4  # title, header, separator, 2 rows

    def test_unknown_column_rejected(self):
        t = Table("demo", ["a"])
        with pytest.raises(KeyError, match="unknown columns"):
            t.add_row(z=1)

    def test_missing_values_render_as_dash(self):
        t = Table("demo", ["a", "b"])
        t.add_row(a=1)
        assert "-" in t.render().splitlines()[-1]

    def test_column_and_where(self):
        t = Table("demo", ["ds", "v"])
        t.add_row(ds="x", v=1)
        t.add_row(ds="y", v=2)
        t.add_row(ds="x", v=3)
        assert t.column("v") == [1, 2, 3]
        assert [r["v"] for r in t.where(ds="x")] == [1, 3]

    def test_column_unknown(self):
        with pytest.raises(KeyError, match="unknown column"):
            Table("demo", ["a"]).column("b")

    def test_to_csv(self, tmp_path):
        t = Table("demo", ["a", "b"])
        t.add_row(a=1, b=2)
        path = tmp_path / "out.csv"
        text = t.to_csv(str(path))
        assert "a,b" in text
        assert path.read_text() == text

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            Table("demo", [])

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        for v in (0.0, 1e-9, 123456.789, 3.14159, 150.0):
            t.add_row(v=v)
        rendered = t.render()
        assert "0" in rendered and "1e-09" in rendered


class TestTiming:
    def test_time_quantities(self, blobs):
        index = KDTreeIndex().fit(blobs)
        q, timing = time_quantities(index, 0.5)
        assert len(q) == len(blobs)
        assert timing.rho_seconds >= 0.0
        assert timing.total_seconds >= timing.delta_seconds

    def test_time_naive(self, blobs):
        q, seconds = time_naive(blobs, 0.5)
        assert len(q) == len(blobs)
        assert seconds > 0.0


class TestFeasibility:
    def test_full_list_bytes_formula(self):
        assert full_list_bytes(1000) == 1000 * 999 * 12

    def test_list_index_fits_thresholds(self):
        assert list_index_fits(1000, memory_budget_mb=100)
        assert not list_index_fits(100_000, memory_budget_mb=100)


class TestPaperMethods:
    def test_small_dataset_gets_full_lists_and_naive(self):
        ds = load_dataset("s1", profile="test")
        methods = paper_methods(ds, memory_budget_mb=300)
        labels = [m.label for m in methods]
        assert labels == ["List Index", "CH Index", "R-tree", "Quadtree", "DPC"]
        assert not any(m.approximate for m in methods)

    def test_large_dataset_falls_back_to_tau(self):
        ds = load_dataset("birch", profile="test")
        methods = paper_methods(ds, memory_budget_mb=0.001)
        labels = [m.label for m in methods]
        assert "DPC" not in labels  # naive skipped when memory-infeasible
        approx = {m.label: m.approximate for m in methods}
        assert approx["List Index"] and approx["CH Index"]

    def test_skip_unfit_lists_drops_them(self):
        ds = load_dataset("birch", profile="test")
        methods = paper_methods(ds, memory_budget_mb=0.001, skip_unfit_lists=True)
        labels = [m.label for m in methods]
        assert labels == ["R-tree", "Quadtree"]

    def test_method_build(self, blobs):
        spec = MethodSpec("kd", lambda: KDTreeIndex())
        index = spec.build(blobs)
        assert index.is_fitted

    def test_naive_method_cannot_build(self):
        spec = MethodSpec("DPC", None)
        with pytest.raises(ValueError, match="naive baseline"):
            spec.build(np.zeros((3, 2)))


class TestClusterTiming:
    def test_time_cluster_phase_split(self, blobs):
        from repro.harness.runner import time_cluster

        index = KDTreeIndex().fit(blobs)
        result, timing = time_cluster(index, 0.5, n_centers=3)
        assert result.n_clusters == 3
        assert timing.rho_seconds >= 0.0
        assert timing.delta_seconds > 0.0
        assert timing.assign_seconds > 0.0
        assert timing.total_seconds == pytest.approx(
            timing.rho_seconds + timing.delta_seconds + timing.assign_seconds
        )
        assert timing.query.total_seconds < timing.total_seconds

    def test_time_cluster_matches_cluster(self, blobs):
        from repro.harness.runner import time_cluster

        index = KDTreeIndex().fit(blobs)
        result, _ = time_cluster(index, 0.5, n_centers=3)
        direct = KDTreeIndex().fit(blobs).cluster(0.5, n_centers=3)
        np.testing.assert_array_equal(result.labels, direct.labels)
        np.testing.assert_array_equal(result.centers, direct.centers)
