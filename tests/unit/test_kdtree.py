"""Unit tests for the kd-tree index (extension)."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.indexes.kdtree import KDTreeIndex

from tests.conftest import assert_quantities_equal, safe_dc


@pytest.fixture
def fitted(blobs):
    return KDTreeIndex(leaf_size=16).fit(blobs)


class TestStructure:
    def test_counts(self, fitted, blobs):
        assert fitted.root.nc == len(blobs)

    def test_balanced_height(self, fitted, blobs):
        import math

        n = len(blobs)
        expected = math.ceil(math.log2(max(n / fitted.leaf_size, 1))) + 1
        assert fitted.height() <= expected + 1

    def test_two_children_everywhere(self, fitted):
        for node in fitted.root.iter_nodes():
            if node.children is not None:
                assert len(node.children) == 2

    def test_boxes_tight(self, fitted, blobs):
        for node in fitted.root.iter_nodes():
            if node.is_leaf and len(node.ids):
                pts = blobs[node.ids]
                np.testing.assert_allclose(node.lo, pts.min(axis=0))
                np.testing.assert_allclose(node.hi, pts.max(axis=0))

    def test_median_split_sizes(self, fitted):
        for node in fitted.root.iter_nodes():
            if node.children is not None:
                left, right = node.children
                assert abs(left.nc - right.nc) <= 1

    def test_duplicates_terminate(self):
        pts = np.tile([[3.0, 3.0]], (40, 1))
        index = KDTreeIndex(leaf_size=4).fit(pts)
        assert index.root.nc == 40

    def test_leaf_size_validation(self):
        with pytest.raises(ValueError, match="leaf_size"):
            KDTreeIndex(leaf_size=0)


class TestQueries:
    def test_matches_naive_2d(self, blobs, fitted):
        dc = safe_dc(blobs, 0.3)
        assert_quantities_equal(naive_quantities(blobs, dc), fitted.quantities(dc))

    def test_matches_naive_5d(self, rng):
        pts = rng.normal(size=(150, 5))
        index = KDTreeIndex(leaf_size=8).fit(pts)
        base = naive_quantities(pts, 1.5)
        assert_quantities_equal(base, index.quantities(1.5))

    def test_matches_naive_1d(self, rng):
        pts = rng.normal(size=(100, 1))
        index = KDTreeIndex(leaf_size=8).fit(pts)
        base = naive_quantities(pts, 0.5)
        assert_quantities_equal(base, index.quantities(0.5))

    def test_manhattan_metric(self, rng):
        pts = rng.normal(size=(120, 2))
        index = KDTreeIndex(metric="manhattan").fit(pts)
        base = naive_quantities(pts, 0.8, metric="manhattan")
        assert_quantities_equal(base, index.quantities(0.8))

    def test_strict_mode(self, blobs, fitted):
        base = naive_quantities(blobs, 0.5, tie_break="strict")
        assert_quantities_equal(base, fitted.quantities(0.5, tie_break="strict"))
