"""Unit tests for the decision graph and centre-selection strategies."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.core.decision import (
    DecisionGraph,
    select_centers_auto,
    select_centers_threshold,
    select_centers_top_k,
    suggest_outliers,
)
from repro.datasets.synthetic import science_toy


@pytest.fixture
def toy_quantities():
    ds = science_toy()
    return naive_quantities(ds.points, ds.params.dc_default)


class TestDecisionGraph:
    def test_from_quantities_copies(self, toy_quantities):
        g = DecisionGraph.from_quantities(toy_quantities)
        g.rho[0] = -99
        assert toy_quantities.rho[0] != -99

    def test_top_gamma_ordering(self, toy_quantities):
        g = DecisionGraph.from_quantities(toy_quantities)
        ids = g.top_gamma(5)
        gammas = g.gamma[ids]
        assert all(gammas[i] >= gammas[i + 1] for i in range(len(gammas) - 1))

    def test_top_gamma_bounds(self, toy_quantities):
        g = DecisionGraph.from_quantities(toy_quantities)
        with pytest.raises(ValueError, match="k must be"):
            g.top_gamma(0)
        with pytest.raises(ValueError, match="k must be"):
            g.top_gamma(len(g) + 1)

    def test_as_table_renders(self, toy_quantities):
        text = DecisionGraph.from_quantities(toy_quantities).as_table(3)
        assert "rho" in text and "delta" in text
        assert len(text.splitlines()) == 4


class TestThresholdSelection:
    def test_finds_two_toy_centers(self, toy_quantities):
        q = toy_quantities
        centers = select_centers_threshold(q, rho_min=5, delta_min=1.0)
        # The toy has two dense groups; both centres must come from different
        # groups (ids < 13 are group A, 13..24 group B).
        assert len(centers) == 2
        assert (centers < 13).sum() == 1
        assert ((centers >= 13) & (centers < 25)).sum() == 1

    def test_centers_sorted_densest_first(self, toy_quantities):
        centers = select_centers_threshold(toy_quantities, 1, 0.5)
        ranks = toy_quantities.density_order.rank[centers]
        assert all(ranks[i] < ranks[i + 1] for i in range(len(ranks) - 1))

    def test_impossible_thresholds_raise(self, toy_quantities):
        with pytest.raises(ValueError, match="no object satisfies"):
            select_centers_threshold(toy_quantities, rho_min=1e9, delta_min=1e9)


class TestTopKSelection:
    def test_k_centers_returned(self, toy_quantities):
        assert len(select_centers_top_k(toy_quantities, 2)) == 2

    def test_top2_matches_threshold_centers(self, toy_quantities):
        a = set(select_centers_top_k(toy_quantities, 2).tolist())
        b = set(select_centers_threshold(toy_quantities, 5, 1.0).tolist())
        assert a == b


class TestAutoSelection:
    def test_toy_auto_finds_two(self, toy_quantities):
        centers = select_centers_auto(toy_quantities, min_centers=2)
        assert len(centers) == 2

    def test_respects_max_centers(self, toy_quantities):
        centers = select_centers_auto(toy_quantities, max_centers=1)
        assert len(centers) == 1

    def test_min_centers_floor(self, toy_quantities):
        centers = select_centers_auto(toy_quantities, min_centers=4)
        assert len(centers) >= 4

    def test_invalid_bounds(self, toy_quantities):
        with pytest.raises(ValueError, match="min_centers"):
            select_centers_auto(toy_quantities, min_centers=0)
        with pytest.raises(ValueError, match="max_centers"):
            select_centers_auto(toy_quantities, max_centers=1, min_centers=3)

    def test_degenerate_gamma_fallback(self):
        # A uniform grid at tiny dc: every rho = 0, gamma dominated by delta;
        # MAD of log-gamma may be 0 -> gap fallback path must not crash.
        xs = np.linspace(0, 1, 5)
        pts = np.array([(x, y) for x in xs for y in xs])
        q = naive_quantities(pts, 1e-6)
        centers = select_centers_auto(q)
        assert len(centers) >= 1

    def test_many_similar_centers_not_collapsed(self):
        # 12 equal blobs: the MAD rule must find ~12, not cut at the first gap.
        rng = np.random.default_rng(0)
        centers_true = [(i * 10.0, j * 10.0) for i in range(4) for j in range(3)]
        pts = np.concatenate(
            [rng.normal(c, 0.4, size=(60, 2)) for c in centers_true]
        )
        q = naive_quantities(pts, 1.0)
        centers = select_centers_auto(q)
        assert 10 <= len(centers) <= 14


class TestOutliers:
    def test_toy_outliers_found(self, toy_quantities):
        # Ids 25, 26, 27 are the isolated points of the toy layout.
        outliers = suggest_outliers(toy_quantities, rho_max=1, delta_min=1.0)
        assert set(outliers.tolist()) >= {25, 26, 27}
        assert all(o >= 25 or toy_quantities.rho[o] <= 1 for o in outliers)

    def test_sorted_by_descending_delta(self, toy_quantities):
        outliers = suggest_outliers(toy_quantities, rho_max=2, delta_min=0.5)
        deltas = toy_quantities.delta[outliers]
        assert all(deltas[i] >= deltas[i + 1] for i in range(len(deltas) - 1))

    def test_empty_when_thresholds_exclude_all(self, toy_quantities):
        assert len(suggest_outliers(toy_quantities, rho_max=-1, delta_min=1e9)) == 0
