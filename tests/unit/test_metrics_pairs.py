"""Unit tests for pairwise Precision/Recall/F1 (the paper's Eqs. 3–5)."""

import itertools

import numpy as np
import pytest

from repro.metrics.pair_metrics import (
    PairQuality,
    contingency_matrix,
    pair_confusion,
    pairwise_precision_recall_f1,
)


def brute_force_pairs(reference, obtained):
    """O(n²) ground truth for the pair counts."""
    tp = fp = fn = tn = 0
    n = len(reference)
    for i, j in itertools.combinations(range(n), 2):
        same_ref = reference[i] == reference[j]
        same_obt = obtained[i] == obtained[j]
        if same_ref and same_obt:
            tp += 1
        elif not same_ref and same_obt:
            fp += 1
        elif same_ref and not same_obt:
            fn += 1
        else:
            tn += 1
    return tp, fp, fn, tn


class TestContingency:
    def test_simple_table(self):
        ref = np.array([0, 0, 1, 1])
        obt = np.array([0, 1, 1, 1])
        table, ref_sizes, obt_sizes = contingency_matrix(ref, obt)
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])
        np.testing.assert_array_equal(ref_sizes, [2, 2])
        np.testing.assert_array_equal(obt_sizes, [1, 3])

    def test_arbitrary_label_values(self):
        ref = np.array([10, 10, -5])
        obt = np.array([99, 7, 7])
        table, _, _ = contingency_matrix(ref, obt)
        assert table.sum() == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="differ in length"):
            contingency_matrix(np.zeros(3), np.zeros(4))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            contingency_matrix(np.zeros((2, 2)), np.zeros(4))


class TestPairConfusion:
    def test_matches_brute_force(self, rng):
        for _ in range(10):
            n = int(rng.integers(5, 40))
            ref = rng.integers(0, 4, size=n)
            obt = rng.integers(0, 5, size=n)
            q = pair_confusion(ref, obt)
            tp, fp, fn, tn = brute_force_pairs(ref, obt)
            assert (q.tp, q.fp, q.fn, q.tn) == (tp, fp, fn, tn)

    def test_identical_partitions_perfect(self):
        labels = np.array([0, 0, 1, 1, 2])
        p, r, f1 = pairwise_precision_recall_f1(labels, labels)
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_relabeling_invariance(self):
        ref = np.array([0, 0, 1, 1, 2, 2])
        obt = np.array([5, 5, 9, 9, 1, 1])  # same partition, new names
        assert pairwise_precision_recall_f1(ref, obt) == (1.0, 1.0, 1.0)

    def test_hand_computed_example(self):
        # G = {0,1,2 | 3,4}; C = {0,1 | 2,3,4}
        ref = np.array([0, 0, 0, 1, 1])
        obt = np.array([0, 0, 1, 1, 1])
        q = pair_confusion(ref, obt)
        # Together in both: (0,1), (3,4) -> TP=2
        # Together in C only: (2,3), (2,4) -> FP=2
        # Together in G only: (0,2), (1,2) -> FN=2
        assert (q.tp, q.fp, q.fn) == (2, 2, 2)
        assert q.precision == pytest.approx(0.5)
        assert q.recall == pytest.approx(0.5)
        assert q.f1 == pytest.approx(0.5)

    def test_all_singletons_vs_one_cluster(self):
        ref = np.arange(6)  # all apart
        obt = np.zeros(6)  # all together
        q = pair_confusion(ref, obt)
        assert q.tp == 0
        assert q.fp == 15
        assert q.fn == 0
        assert q.precision == 0.0
        assert q.recall == 1.0  # vacuous: no together-pairs in G

    def test_f1_zero_when_no_overlap(self):
        ref = np.array([0, 0, 1, 1])
        obt = np.array([0, 1, 0, 1])
        q = pair_confusion(ref, obt)
        assert q.tp == 0
        assert q.f1 == 0.0


class TestPairQuality:
    def test_as_dict_roundtrip(self):
        q = PairQuality(tp=3, fp=1, fn=2, tn=4)
        d = q.as_dict()
        assert d["tp"] == 3
        assert d["precision"] == pytest.approx(0.75)
        assert d["recall"] == pytest.approx(0.6)

    def test_degenerate_single_object(self):
        q = pair_confusion(np.array([0]), np.array([0]))
        assert (q.precision, q.recall, q.f1) == (1.0, 1.0, 1.0)
