"""Structural unit tests for the partitioned index (repro.indexes.partition).

Bit-identity against monolithic fits lives in
tests/properties/test_prop_partition.py; here we pin down the layout
machinery itself: deterministic balanced tiling, constructor validation,
halo auto-growth, persistence (round-trip + tamper detection), the
``DPCIndex.partitioned()`` helper and the observability surface.
"""

import numpy as np
import pytest

from repro.indexes.partition import (
    PARTITION_SCHEMES,
    PartitionedIndex,
    assign_partitions,
)
from repro.indexes.persist import CorruptSnapshotError, load_index, save_index
from repro.indexes.registry import make_index
from repro.indexes.rtree import RTreeIndex

from tests.conftest import assert_quantities_equal, safe_dc


@pytest.fixture
def points():
    r = np.random.default_rng(42)
    base = r.normal(0.0, 1.5, size=(30, 2))
    return np.concatenate([base, base[:10], r.uniform(-4, 4, size=(20, 2))])


class TestAssignPartitions:
    @pytest.mark.parametrize("scheme", PARTITION_SCHEMES)
    @pytest.mark.parametrize("partitions", (1, 2, 3, 7))
    def test_balanced_disjoint_cover(self, points, scheme, partitions):
        assign = assign_partitions(points, partitions, scheme)
        assert assign.shape == (len(points),)
        sizes = np.bincount(assign, minlength=partitions)
        assert sizes.sum() == len(points)
        assert (sizes > 0).all()
        # Equal-count packing: tile sizes differ by at most one.
        assert sizes.max() - sizes.min() <= 1

    def test_deterministic(self, points):
        a = assign_partitions(points, 4, "morton")
        b = assign_partitions(points, 4, "morton")
        np.testing.assert_array_equal(a, b)

    def test_duplicates_break_ties_by_id(self):
        # A fully coincident cloud still packs into contiguous id runs.
        points = np.zeros((8, 2))
        assign = assign_partitions(points, 4, "morton")
        np.testing.assert_array_equal(assign, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_unknown_scheme_rejected(self, points):
        with pytest.raises(ValueError, match="scheme"):
            assign_partitions(points, 2, "hilbert")


class TestConstructorValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            PartitionedIndex(family="btree")

    def test_no_nesting(self):
        with pytest.raises(ValueError, match="nest"):
            PartitionedIndex(family="partitioned")

    @pytest.mark.parametrize("family", ("rn-list", "rn-ch"))
    def test_approximate_families_rejected(self, family):
        with pytest.raises(ValueError, match="approximate"):
            PartitionedIndex(family=family, family_params={"tau": 2.0})

    def test_metric_without_rect_bounds_rejected(self):
        with pytest.raises(ValueError, match="rect"):
            PartitionedIndex(metric="haversine", family="list")

    def test_bad_partition_count(self):
        with pytest.raises(ValueError, match="partitions"):
            PartitionedIndex(partitions=0)

    def test_negative_halo(self):
        with pytest.raises(ValueError, match="halo"):
            PartitionedIndex(halo=-1.0)

    def test_bad_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            PartitionedIndex(scheme="zigzag")

    @pytest.mark.parametrize("key", ("metric", "backend", "n_jobs", "chunk_size"))
    def test_family_params_cannot_override_execution(self, key):
        with pytest.raises(ValueError, match=key):
            PartitionedIndex(family_params={key: "x"})

    def test_required_ndim_follows_family(self):
        assert PartitionedIndex(family="quadtree").required_ndim == 2
        assert PartitionedIndex(family="kdtree").required_ndim is None


class TestHaloGrowth:
    def test_queries_grow_the_halo_monotonically(self, points):
        dc = safe_dc(points)
        index = make_index("partitioned", family="rtree", partitions=3).fit(points)
        assert index.partition_stats()["halo"] == 0.0
        index.rho_all(dc)
        stats = index.partition_stats()
        assert stats["halo"] == dc
        assert stats["halo_regrows"] == 1
        # A narrower query rides the existing strip: no refit.
        index.rho_all(dc / 2)
        assert index.partition_stats()["halo_regrows"] == 1
        # A wider one regrows exactly once more.
        index.quantities(dc * 2)
        stats = index.partition_stats()
        assert stats["halo"] == dc * 2
        assert stats["halo_regrows"] == 2

    def test_configured_halo_presizes_the_strip(self, points):
        dc = safe_dc(points)
        index = make_index(
            "partitioned", family="rtree", partitions=3, halo=dc
        ).fit(points)
        index.quantities(dc)
        stats = index.partition_stats()
        assert stats["halo"] == dc
        assert stats["halo_regrows"] == 0


class TestPersistence:
    def test_round_trip_preserves_layout_and_results(self, points, tmp_path):
        dc = safe_dc(points)
        path = str(tmp_path / "part.npz")
        index = make_index(
            "partitioned",
            family="kdtree",
            partitions=3,
            family_params={"leaf_size": 8},
        ).fit(points)
        index.quantities(dc)  # grow the halo so the stored width is real
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, PartitionedIndex)
        assert loaded.fingerprint() == index.fingerprint()
        assert loaded.partition_stats()["halo"] == index.partition_stats()["halo"]
        assert (
            loaded.partition_stats()["member_sizes"]
            == index.partition_stats()["member_sizes"]
        )
        for tie_break in ("id", "strict"):
            assert_quantities_equal(
                index.quantities(dc, tie_break=tie_break),
                loaded.quantities(dc, tie_break=tie_break),
            )

    def test_tampered_members_are_rejected(self, points, tmp_path):
        path = str(tmp_path / "part.npz")
        index = make_index("partitioned", family="rtree", partitions=3).fit(points)
        index.quantities(safe_dc(points))
        save_index(index, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = {k: payload[k] for k in payload.files}
        # Silently shrinking a tile would drop halo neighbours — the digest
        # must catch the edit even though the arrays stay self-consistent.
        arrays["partmembers0"] = arrays["partmembers0"][:-1]
        np.savez(path.removesuffix(".npz"), **arrays)
        with pytest.raises(CorruptSnapshotError, match="partition"):
            load_index(path)

    def test_tampered_assignment_is_rejected(self, points, tmp_path):
        path = str(tmp_path / "part.npz")
        index = make_index("partitioned", family="rtree", partitions=3).fit(points)
        save_index(index, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = {k: payload[k] for k in payload.files}
        arrays["partassign"] = arrays["partassign"][::-1].copy()
        np.savez(path.removesuffix(".npz"), **arrays)
        with pytest.raises(CorruptSnapshotError, match="partition"):
            load_index(path)


class TestPartitionedHelper:
    def test_wraps_family_with_constructor_params(self, points):
        dc = safe_dc(points)
        mono = RTreeIndex(max_entries=6).fit(points)
        part = mono.partitioned(partitions=3, halo=dc).fit(points)
        assert isinstance(part, PartitionedIndex)
        assert part.family == "rtree"
        assert part.family_params["max_entries"] == 6
        assert_quantities_equal(mono.quantities(dc), part.quantities(dc))


class TestObservability:
    def test_partition_stats_shape(self, points):
        dc = safe_dc(points)
        index = make_index("partitioned", family="grid", partitions=4).fit(points)
        index.quantities(dc)
        stats = index.partition_stats()
        assert stats["partitions"] == 4
        assert stats["scheme"] == "morton"
        assert stats["family"] == "grid"
        assert sum(stats["core_sizes"]) == len(points)
        assert all(
            m >= c for m, c in zip(stats["member_sizes"], stats["core_sizes"])
        )
        assert stats["halo_points"] == sum(stats["member_sizes"]) - len(points)
        # Every non-peak query resolved through exactly one of the two paths.
        assert stats["local_settled"] + stats["gathered"] == len(points) - 1

    def test_probe_counters_fold_into_parent_stats(self, points):
        index = make_index("partitioned", family="rtree", partitions=3).fit(points)
        index.quantities(safe_dc(points))
        assert index.stats().distance_evals > 0

    def test_describe_reports_layout(self, points):
        index = make_index("partitioned", family="rtree", partitions=3).fit(points)
        info = index.describe()
        assert info["family"] == "rtree"
        assert info["partitions"] == 3
        assert info["halo"] == 0.0

    def test_memory_bytes_counts_subs(self, points):
        index = make_index("partitioned", family="rtree", partitions=3).fit(points)
        mono = RTreeIndex().fit(points)
        assert index.memory_bytes() > mono.memory_bytes() / 2
