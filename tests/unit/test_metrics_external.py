"""Unit tests for ARI / NMI / FMI / purity / V-measure."""

import numpy as np
import pytest

from repro.metrics.external import (
    adjusted_rand_index,
    fowlkes_mallows_index,
    normalized_mutual_information,
    purity_score,
    v_measure,
)


@pytest.fixture
def perfect():
    labels = np.array([0, 0, 0, 1, 1, 2, 2, 2])
    return labels, labels.copy()


@pytest.fixture
def renamed():
    ref = np.array([0, 0, 0, 1, 1, 2, 2, 2])
    obt = np.array([7, 7, 7, 3, 3, 0, 0, 0])
    return ref, obt


class TestARI:
    def test_perfect(self, perfect):
        assert adjusted_rand_index(*perfect) == pytest.approx(1.0)

    def test_relabeling_invariant(self, renamed):
        assert adjusted_rand_index(*renamed) == pytest.approx(1.0)

    def test_random_labels_near_zero(self, rng):
        ref = rng.integers(0, 5, size=2000)
        obt = rng.integers(0, 5, size=2000)
        assert abs(adjusted_rand_index(ref, obt)) < 0.05

    def test_known_value(self):
        # sklearn doc example: ARI([0,0,1,1],[0,0,1,2]) = 0.5714...
        ref = np.array([0, 0, 1, 1])
        obt = np.array([0, 0, 1, 2])
        assert adjusted_rand_index(ref, obt) == pytest.approx(0.5714285714, abs=1e-9)

    def test_degenerate_all_one_cluster(self):
        labels = np.zeros(5)
        assert adjusted_rand_index(labels, labels) == 1.0


class TestFMI:
    def test_perfect(self, perfect):
        assert fowlkes_mallows_index(*perfect) == pytest.approx(1.0)

    def test_known_value(self):
        # sklearn doc example: FMI([0,0,1,1],[0,0,1,2]) = sqrt(1/2 * 1) ...
        ref = np.array([0, 0, 1, 1])
        obt = np.array([0, 0, 1, 2])
        # TP=1, FP=0, FN=1 -> precision 1.0, recall 0.5 -> FMI = sqrt(0.5)
        assert fowlkes_mallows_index(ref, obt) == pytest.approx(np.sqrt(0.5))


class TestNMI:
    def test_perfect(self, perfect):
        assert normalized_mutual_information(*perfect) == pytest.approx(1.0)

    def test_relabeling_invariant(self, renamed):
        assert normalized_mutual_information(*renamed) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        ref = rng.integers(0, 4, size=5000)
        obt = rng.integers(0, 4, size=5000)
        assert normalized_mutual_information(ref, obt) < 0.01

    def test_symmetry(self, rng):
        ref = rng.integers(0, 3, size=100)
        obt = rng.integers(0, 5, size=100)
        a = normalized_mutual_information(ref, obt)
        b = normalized_mutual_information(obt, ref)
        assert a == pytest.approx(b)

    def test_degenerate_single_clusters(self):
        assert normalized_mutual_information(np.zeros(4), np.zeros(4)) == 1.0


class TestPurity:
    def test_perfect(self, perfect):
        assert purity_score(*perfect) == 1.0

    def test_known_value(self):
        ref = np.array([0, 0, 0, 1, 1, 1])
        obt = np.array([0, 0, 1, 1, 1, 1])
        # cluster 0: 2 of class 0; cluster 1: 3 of class 1 + 1 of class 0.
        assert purity_score(ref, obt) == pytest.approx(5.0 / 6.0)

    def test_singletons_always_pure(self):
        ref = np.array([0, 0, 1, 1])
        obt = np.arange(4)
        assert purity_score(ref, obt) == 1.0


class TestVMeasure:
    def test_perfect(self, perfect):
        h, c, v = v_measure(*perfect)
        assert (h, c, v) == (pytest.approx(1.0), pytest.approx(1.0), pytest.approx(1.0))

    def test_homogeneous_but_incomplete(self):
        # Splitting a true cluster keeps homogeneity 1, lowers completeness.
        ref = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        obt = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        h, c, v = v_measure(ref, obt)
        assert h == pytest.approx(1.0)
        assert c < 1.0
        assert 0.0 < v < 1.0

    def test_complete_but_inhomogeneous(self):
        # Merging everything keeps completeness 1, kills homogeneity.
        ref = np.array([0, 0, 1, 1])
        obt = np.zeros(4)
        h, c, v = v_measure(ref, obt)
        assert c == pytest.approx(1.0)
        assert h == pytest.approx(0.0)
        assert v == pytest.approx(0.0)

    def test_beta_weighting(self):
        ref = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        obt = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        _, _, v_precision_weighted = v_measure(ref, obt, beta=0.5)
        _, _, v_balanced = v_measure(ref, obt, beta=1.0)
        # beta < 1 weights homogeneity (which is 1.0 here) more heavily.
        assert v_precision_weighted > v_balanced
