"""Unit tests for the DensityPeakClustering estimator."""

import numpy as np
import pytest

from repro.core.dpc import DensityPeakClustering
from repro.indexes.kdtree import KDTreeIndex


class TestFit:
    def test_fit_predict_three_blobs(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.5, n_centers=3)
        labels = model.fit_predict(blobs)
        assert len(labels) == len(blobs)
        assert model.n_clusters_ == 3
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_auto_dc(self, blobs):
        model = DensityPeakClustering(index="rtree", n_centers=3).fit(blobs)
        assert model.dc_ is not None and model.dc_ > 0

    def test_auto_centers(self, blobs):
        model = DensityPeakClustering(index="quadtree", dc=0.5).fit(blobs)
        assert model.n_clusters_ >= 2

    def test_threshold_selection(self, blobs):
        model = DensityPeakClustering(
            index="kdtree", dc=0.5, rho_min=10, delta_min=1.0
        ).fit(blobs)
        assert model.n_clusters_ >= 2

    def test_halo_flag(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.5, n_centers=3, halo=True)
        model.fit(blobs)
        assert model.halo_ is not None
        assert model.halo_.dtype == bool

    def test_index_params_forwarded(self, blobs):
        model = DensityPeakClustering(
            index="ch", dc=0.5, n_centers=3, index_params={"bin_width": 0.4}
        ).fit(blobs)
        assert model.index_.bin_width == 0.4

    def test_prebuilt_index_instance(self, blobs):
        index = KDTreeIndex().fit(blobs)
        model = DensityPeakClustering(index=index, dc=0.5, n_centers=3).fit(blobs)
        assert model.index_ is index

    def test_prebuilt_index_wrong_points_rejected(self, blobs):
        index = KDTreeIndex().fit(blobs)
        other = blobs + 100.0
        with pytest.raises(ValueError, match="different points"):
            DensityPeakClustering(index=index, dc=0.5).fit(other)

    def test_index_params_with_instance_rejected(self, blobs):
        index = KDTreeIndex().fit(blobs)
        model = DensityPeakClustering(index=index, dc=0.5, index_params={"leaf_size": 4})
        with pytest.raises(ValueError, match="index_params"):
            model.fit(blobs)


class TestRefit:
    def test_refit_reuses_index(self, blobs):
        model = DensityPeakClustering(index="rtree", dc=0.3, n_centers=3).fit(blobs)
        index_before = model.index_
        model.refit(0.8)
        assert model.index_ is index_before
        assert model.dc_ == 0.8

    def test_refit_changes_result(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.2, n_centers=3).fit(blobs)
        rho_small = model.rho_.copy()
        model.refit(1.0)
        assert model.rho_.sum() > rho_small.sum()

    def test_refit_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before refit"):
            DensityPeakClustering().refit(0.5)


class TestRefitMany:
    def test_matches_sequential_refits(self, blobs):
        dcs = [0.2, 0.5, 1.1]
        for index in ("list", "ch", "rtree"):
            model = DensityPeakClustering(index=index, dc=0.3, n_centers=3).fit(blobs)
            batched = model.refit_many(dcs)
            assert len(batched) == len(dcs)
            twin = DensityPeakClustering(index=index, dc=0.3, n_centers=3).fit(blobs)
            for dc, result in zip(dcs, batched):
                twin.refit(dc)
                assert result.dc == dc
                np.testing.assert_array_equal(result.labels, twin.labels_)
                np.testing.assert_array_equal(result.centers, twin.centers_)

    def test_estimator_points_at_last_dc(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.2, n_centers=3).fit(blobs)
        results = model.refit_many([0.4, 0.9])
        assert model.dc_ == 0.9
        np.testing.assert_array_equal(model.labels_, results[-1].labels)

    def test_halo_propagates(self, blobs):
        model = DensityPeakClustering(
            index="kdtree", dc=0.3, n_centers=3, halo=True
        ).fit(blobs)
        for result in model.refit_many([0.3, 0.6]):
            assert result.halo is not None and result.halo.dtype == bool

    def test_refit_many_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before refit_many"):
            DensityPeakClustering().refit_many([0.5])


class TestAccessors:
    def test_unfitted_accessors_raise(self):
        model = DensityPeakClustering()
        for attr in ("labels_", "centers_", "rho_", "delta_", "mu_", "decision_graph_"):
            with pytest.raises(RuntimeError, match="not fitted"):
                getattr(model, attr)

    def test_decision_graph_alignment(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.5, n_centers=3).fit(blobs)
        graph = model.decision_graph_
        assert len(graph) == len(blobs)
        np.testing.assert_array_equal(graph.rho, model.rho_)

    def test_conflicting_selection_args(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.5, n_centers=2, rho_min=1)
        with pytest.raises(ValueError, match="not both"):
            model.fit(blobs)

    def test_partial_thresholds_rejected(self, blobs):
        model = DensityPeakClustering(index="kdtree", dc=0.5, rho_min=1)
        with pytest.raises(ValueError, match="together"):
            model.fit(blobs)

    def test_result_consistency(self, blobs):
        model = DensityPeakClustering(index="grid", dc=0.5, n_centers=3).fit(blobs)
        result = model.result_
        np.testing.assert_array_equal(result.labels, model.labels_)
        assert result.n_clusters == model.n_clusters_
        # Every centre is labelled with its own cluster id.
        for c, center in enumerate(model.centers_):
            assert model.labels_[center] == c
