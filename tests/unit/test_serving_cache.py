"""ResultCache: LRU order, TTL, fingerprint invalidation, the put guard."""

import pytest

from repro.serving.cache import ResultCache, result_key


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def key(fp="fp", dc=1.0, op="cluster", **kwargs):
    return result_key(fp, op, dc, "id", **kwargs)


class TestBasics:
    def test_get_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get(key()) is None
        assert cache.put(key(), "value")
        assert cache.get(key()) == "value"
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_key_normalisation(self):
        # int dc and float dc produce bit-identical results -> one entry.
        cache = ResultCache()
        cache.put(result_key("fp", "cluster", 1, "id"), "v")
        assert cache.get(result_key("fp", "cluster", 1.0, "id")) == "v"

    def test_quantities_key_ignores_selection_params(self):
        # Selection/halo params don't change a quantities answer; stray
        # values must not fragment the cache.
        assert result_key("fp", "quantities", 1.0, "id", n_centers=5, halo=True) == \
            result_key("fp", "quantities", 1.0, "id")
        assert result_key("fp", "cluster", 1.0, "id", n_centers=5) != \
            result_key("fp", "cluster", 1.0, "id")

    def test_distinct_params_distinct_entries(self):
        cache = ResultCache()
        cache.put(key(dc=1.0), "a")
        cache.put(key(dc=2.0), "b")
        cache.put(key(dc=1.0, n_centers=3), "c")
        cache.put(key(dc=1.0, halo=True), "d")
        cache.put(key(dc=1.0, op="quantities"), "e")
        assert len(cache) == 5
        assert cache.get(key(dc=1.0)) == "a"

    def test_zero_capacity_disables(self):
        cache = ResultCache(max_entries=0)
        assert not cache.put(key(), "value")
        assert cache.get(key()) is None
        assert len(cache) == 0


class TestLRU:
    def test_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put(key(dc=1.0), "a")
        cache.put(key(dc=2.0), "b")
        cache.get(key(dc=1.0))  # freshen a -> b is now LRU
        cache.put(key(dc=3.0), "c")
        assert cache.get(key(dc=2.0)) is None
        assert cache.get(key(dc=1.0)) == "a"
        assert cache.get(key(dc=3.0)) == "c"
        assert cache.stats.evictions == 1

    def test_overwrite_same_key_keeps_size(self):
        cache = ResultCache(max_entries=2)
        cache.put(key(), "a")
        cache.put(key(), "b")
        assert len(cache) == 1
        assert cache.get(key()) == "b"


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put(key(), "value")
        clock.now = 9.0
        assert cache.get(key()) == "value"
        clock.now = 10.5
        assert cache.get(key()) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=None, clock=clock)
        cache.put(key(), "value")
        clock.now = 1e9
        assert cache.get(key()) == "value"

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl_seconds"):
            ResultCache(ttl_seconds=0)


class TestInvalidation:
    def test_invalidate_fingerprint_drops_only_its_entries(self):
        cache = ResultCache()
        cache.put(key(fp="old", dc=1.0), "a")
        cache.put(key(fp="old", dc=2.0), "b")
        cache.put(key(fp="new", dc=1.0), "c")
        assert cache.invalidate_fingerprint("old") == 2
        assert cache.get(key(fp="old", dc=1.0)) is None
        assert cache.get(key(fp="new", dc=1.0)) == "c"
        assert cache.stats.invalidations == 2

    def test_guard_rejects_put(self):
        cache = ResultCache()
        assert not cache.put(key(), "stale", guard=lambda: False)
        assert cache.get(key()) is None
        assert cache.stats.rejected_puts == 1
        assert cache.put(key(), "fresh", guard=lambda: True)
        assert cache.get(key()) == "fresh"

    def test_clear(self):
        cache = ResultCache()
        cache.put(key(), "value")
        cache.clear()
        assert len(cache) == 0


def test_describe_shape():
    cache = ResultCache(max_entries=8, ttl_seconds=60.0)
    cache.put(key(), "value")
    info = cache.describe()
    assert info["entries"] == 1
    assert info["max_entries"] == 8
    assert info["ttl_seconds"] == 60.0
    for field in ("hits", "misses", "evictions", "expirations", "invalidations"):
        assert field in info
