"""Unit tests for the R-tree index (paper Section 4.2): STR and dynamic."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.indexes.rtree import RTreeIndex

from tests.conftest import assert_quantities_equal, safe_dc


@pytest.fixture
def str_tree(blobs):
    return RTreeIndex(max_entries=8).fit(blobs)


@pytest.fixture
def dyn_tree(blobs):
    return RTreeIndex(max_entries=8, packing="dynamic").fit(blobs)


def leaf_depths(root):
    out = []

    def walk(node, depth):
        if node.is_leaf:
            out.append(depth)
        else:
            for child in node.children:
                walk(child, depth + 1)

    walk(root, 0)
    return out


class TestSTRConstruction:
    def test_counts_sum_to_n(self, str_tree, blobs):
        assert str_tree.root.nc == len(blobs)

    def test_balanced_leaves(self, str_tree):
        depths = leaf_depths(str_tree.root)
        assert max(depths) == min(depths), "STR packing must be height-balanced"

    def test_leaves_full_except_last(self, str_tree, blobs):
        sizes = [len(n.ids) for n in str_tree.root.iter_nodes() if n.is_leaf]
        assert sum(sizes) == len(blobs)
        assert sum(1 for s in sizes if s < str_tree.max_entries) <= max(
            1, len(sizes) // 4
        ), "STR packs nearly all leaves to capacity"

    def test_mbrs_tight_over_children(self, str_tree, blobs):
        for node in str_tree.root.iter_nodes():
            if node.is_leaf:
                pts = blobs[node.ids]
                np.testing.assert_allclose(node.lo, pts.min(axis=0))
                np.testing.assert_allclose(node.hi, pts.max(axis=0))
            else:
                lo = np.min([c.lo for c in node.children], axis=0)
                hi = np.max([c.hi for c in node.children], axis=0)
                np.testing.assert_allclose(node.lo, lo)
                np.testing.assert_allclose(node.hi, hi)

    def test_fanout_respected(self, str_tree):
        for node in str_tree.root.iter_nodes():
            if node.children is not None:
                assert len(node.children) <= str_tree.max_entries

    def test_works_in_3d(self, rng):
        pts = rng.normal(size=(200, 3))
        index = RTreeIndex(max_entries=8).fit(pts)
        base = naive_quantities(pts, 1.0)
        assert_quantities_equal(base, index.quantities(1.0))

    def test_single_leaf_tree(self):
        pts = np.random.default_rng(0).normal(size=(5, 2))
        index = RTreeIndex(max_entries=8).fit(pts)
        assert index.root.is_leaf
        assert index.height() == 1


class TestDynamicConstruction:
    def test_counts_sum_to_n(self, dyn_tree, blobs):
        assert dyn_tree.root.nc == len(blobs)

    def test_every_point_in_exactly_one_leaf(self, dyn_tree, blobs):
        seen = np.concatenate(
            [n.ids for n in dyn_tree.root.iter_nodes() if n.is_leaf]
        )
        assert len(seen) == len(blobs)
        assert len(np.unique(seen)) == len(blobs)

    def test_node_capacities_respected(self, dyn_tree):
        for node in dyn_tree.root.iter_nodes():
            if node.is_leaf:
                assert len(node.ids) <= dyn_tree.max_entries
            else:
                assert 2 <= len(node.children) <= dyn_tree.max_entries

    def test_mbrs_contain_contents(self, dyn_tree, blobs):
        for node in dyn_tree.root.iter_nodes():
            if node.is_leaf:
                pts = blobs[node.ids]
                assert (pts >= node.lo - 1e-9).all()
                assert (pts <= node.hi + 1e-9).all()
            else:
                for child in node.children:
                    assert (child.lo >= node.lo - 1e-9).all()
                    assert (child.hi <= node.hi + 1e-9).all()

    def test_queries_match_naive(self, blobs, dyn_tree):
        dc = safe_dc(blobs, 0.25)
        assert_quantities_equal(naive_quantities(blobs, dc), dyn_tree.quantities(dc))


class TestQueries:
    def test_str_quantities_match_naive(self, blobs, str_tree):
        for dc in (0.2, 0.5, safe_dc(blobs, 0.5)):
            assert_quantities_equal(
                naive_quantities(blobs, dc), str_tree.quantities(dc)
            )

    def test_strict_mode(self, blobs, str_tree):
        base = naive_quantities(blobs, 0.5, tie_break="strict")
        assert_quantities_equal(base, str_tree.quantities(0.5, tie_break="strict"))

    def test_stack_frontier(self, blobs):
        stack = RTreeIndex(frontier="stack").fit(blobs).quantities(0.5)
        assert_quantities_equal(naive_quantities(blobs, 0.5), stack)

    def test_str_packing_prunes_better_than_dynamic(self, blobs, str_tree, dyn_tree):
        """The paper's §4.2 claim: packing yields a better structure.

        Compare logical work (node visits), not wall-clock, for robustness.
        """
        str_tree.reset_stats()
        dyn_tree.reset_stats()
        str_tree.quantities(0.5)
        dyn_tree.quantities(0.5)
        assert (
            str_tree.stats().nodes_visited <= dyn_tree.stats().nodes_visited * 1.5
        ), "STR should not visit drastically more nodes than dynamic"


class TestValidation:
    def test_invalid_max_entries(self):
        with pytest.raises(ValueError, match="max_entries"):
            RTreeIndex(max_entries=1)

    def test_invalid_packing(self):
        with pytest.raises(ValueError, match="packing"):
            RTreeIndex(packing="hilbert")

    def test_invalid_min_entries(self):
        with pytest.raises(ValueError, match="min_entries"):
            RTreeIndex(max_entries=8, min_entries=7)

    def test_memory_linear(self, str_tree, blobs):
        assert 0 < str_tree.memory_bytes() < len(blobs) * 1000
