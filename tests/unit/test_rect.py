"""Unit tests for axis-aligned rectangles and their metric bounds."""

import numpy as np
import pytest

from repro.geometry.rect import Rect, bounding_rect


@pytest.fixture
def unit_square():
    return Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))


class TestConstruction:
    def test_rejects_lo_above_hi(self):
        with pytest.raises(ValueError, match="degenerate"):
            Rect(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="equal length"):
            Rect(np.array([0.0]), np.array([1.0, 2.0]))

    def test_zero_extent_allowed(self):
        r = Rect(np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        assert r.area() == 0.0

    def test_basic_properties(self, unit_square):
        assert unit_square.ndim == 2
        assert unit_square.area() == 1.0
        assert unit_square.margin() == 2.0
        np.testing.assert_array_equal(unit_square.center, [0.5, 0.5])


class TestPredicates:
    def test_contains_point(self, unit_square):
        assert unit_square.contains_point([0.5, 0.5])
        assert unit_square.contains_point([0.0, 1.0])  # boundary is inside
        assert not unit_square.contains_point([1.5, 0.5])

    def test_contains_rect(self, unit_square):
        inner = Rect(np.array([0.2, 0.2]), np.array([0.8, 0.8]))
        assert unit_square.contains_rect(inner)
        assert not inner.contains_rect(unit_square)

    def test_intersects(self, unit_square):
        overlapping = Rect(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        disjoint = Rect(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        touching = Rect(np.array([1.0, 0.0]), np.array([2.0, 1.0]))
        assert unit_square.intersects(overlapping)
        assert not unit_square.intersects(disjoint)
        assert unit_square.intersects(touching)  # closed boxes share the edge

    def test_union_and_enlargement(self, unit_square):
        other = Rect(np.array([2.0, 0.0]), np.array([3.0, 1.0]))
        u = unit_square.union(other)
        np.testing.assert_array_equal(u.lo, [0.0, 0.0])
        np.testing.assert_array_equal(u.hi, [3.0, 1.0])
        assert unit_square.enlargement(other) == pytest.approx(2.0)

    def test_intersection_area(self, unit_square):
        other = Rect(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        assert unit_square.intersection_area(other) == pytest.approx(0.25)
        disjoint = Rect(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        assert unit_square.intersection_area(disjoint) == 0.0

    def test_expanded_to(self, unit_square):
        grown = unit_square.expanded_to([2.0, -1.0])
        np.testing.assert_array_equal(grown.lo, [0.0, -1.0])
        np.testing.assert_array_equal(grown.hi, [2.0, 1.0])


class TestMetricBounds:
    def test_mindist_inside_is_zero(self, unit_square):
        assert unit_square.mindist([0.3, 0.7]) == 0.0

    def test_mindist_outside(self, unit_square):
        assert unit_square.mindist([2.0, 0.5]) == pytest.approx(1.0)
        assert unit_square.mindist([2.0, 2.0]) == pytest.approx(np.sqrt(2.0))

    def test_maxdist_from_corner(self, unit_square):
        assert unit_square.maxdist([0.0, 0.0]) == pytest.approx(np.sqrt(2.0))

    def test_bounds_bracket_true_distances(self, rng, unit_square):
        """mindist ≤ dist(q, x) ≤ maxdist for every x in the box."""
        inside = rng.uniform(0.0, 1.0, size=(200, 2))
        for q in ([-0.5, 0.5], [0.5, 0.5], [3.0, -2.0]):
            q = np.asarray(q)
            d = np.sqrt(((inside - q) ** 2).sum(axis=1))
            assert unit_square.mindist(q) <= d.min() + 1e-12
            assert unit_square.maxdist(q) >= d.max() - 1e-12

    @pytest.mark.parametrize("metric", ["manhattan", "chebyshev", "sqeuclidean"])
    def test_bounds_other_metrics(self, rng, unit_square, metric):
        from repro.geometry.distance import get_metric

        m = get_metric(metric)
        inside = rng.uniform(0.0, 1.0, size=(100, 2))
        q = np.array([2.5, -0.5])
        d = m.distances_from(inside, q)
        assert unit_square.mindist(q, metric) <= d.min() + 1e-12
        assert unit_square.maxdist(q, metric) >= d.max() - 1e-12

    def test_haversine_bounds_rejected(self, unit_square):
        with pytest.raises(ValueError, match="no exact rectangle bounds"):
            unit_square.mindist([0.0, 0.0], "haversine")


class TestSubdivision:
    def test_quadrants_partition_area(self, unit_square):
        quads = unit_square.quadrants()
        assert len(quads) == 4
        assert sum(q.area() for q in quads) == pytest.approx(unit_square.area())
        for q in quads:
            assert unit_square.contains_rect(q)

    def test_quadrants_requires_2d(self):
        r3 = Rect(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError, match="2-D"):
            r3.quadrants()

    def test_split_at(self, unit_square):
        left, right = unit_square.split_at(0, 0.3)
        assert left.hi[0] == 0.3
        assert right.lo[0] == 0.3
        assert left.area() + right.area() == pytest.approx(1.0)

    def test_split_at_out_of_range(self, unit_square):
        with pytest.raises(ValueError, match="outside"):
            unit_square.split_at(1, 1.5)


class TestBoundingRect:
    def test_tight_box(self, rng):
        pts = rng.normal(size=(50, 2))
        r = bounding_rect(pts)
        np.testing.assert_array_equal(r.lo, pts.min(axis=0))
        np.testing.assert_array_equal(r.hi, pts.max(axis=0))

    def test_padding(self, rng):
        pts = rng.normal(size=(50, 2))
        r = bounding_rect(pts, pad=1.0)
        assert np.all(r.lo < pts.min(axis=0))
        assert np.all(r.hi > pts.max(axis=0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            bounding_rect(np.empty((0, 2)))
