"""Unit tests for the Quadtree index (paper Section 4.1)."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.indexes.quadtree import QuadtreeIndex

from tests.conftest import assert_quantities_equal, safe_dc


@pytest.fixture
def fitted(blobs):
    return QuadtreeIndex(capacity=16).fit(blobs)


class TestStructure:
    def test_counts_sum_to_n(self, fitted, blobs):
        assert fitted.root.nc == len(blobs)

    def test_internal_counts_equal_children_sum(self, fitted):
        for node in fitted.root.iter_nodes():
            if node.children is not None:
                assert node.nc == sum(c.nc for c in node.children)

    def test_leaves_respect_capacity(self, fitted):
        for node in fitted.root.iter_nodes():
            if node.is_leaf:
                assert len(node.ids) <= fitted.capacity

    def test_children_boxes_inside_parent(self, fitted):
        for node in fitted.root.iter_nodes():
            if node.children is None:
                continue
            for child in node.children:
                assert (child.lo >= node.lo - 1e-9).all()
                assert (child.hi <= node.hi + 1e-9).all()

    def test_points_inside_their_leaf_box(self, fitted, blobs):
        for node in fitted.root.iter_nodes():
            if node.is_leaf and len(node.ids):
                pts = blobs[node.ids]
                assert (pts >= node.lo - 1e-9).all()
                assert (pts <= node.hi + 1e-9).all()

    def test_every_point_in_exactly_one_leaf(self, fitted, blobs):
        seen = np.concatenate(
            [node.ids for node in fitted.root.iter_nodes() if node.is_leaf]
        )
        assert len(seen) == len(blobs)
        assert len(np.unique(seen)) == len(blobs)

    def test_max_depth_caps_height(self, blobs):
        index = QuadtreeIndex(capacity=1, max_depth=3).fit(blobs)
        assert index.height() <= 4  # root + 3 levels

    def test_duplicate_points_terminate(self):
        pts = np.tile([[1.0, 2.0]], (50, 1))
        index = QuadtreeIndex(capacity=4).fit(pts)
        assert index.root.nc == 50  # would recurse forever without max_depth

    def test_collinear_points_handled(self):
        pts = np.column_stack([np.linspace(0, 1, 40), np.zeros(40)])
        index = QuadtreeIndex(capacity=4).fit(pts)
        q = index.quantities(0.1)
        base = naive_quantities(pts, 0.1)
        assert_quantities_equal(base, q)

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            QuadtreeIndex().fit(np.zeros((10, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="capacity"):
            QuadtreeIndex(capacity=0)
        with pytest.raises(ValueError, match="max_depth"):
            QuadtreeIndex(max_depth=0)


class TestQueries:
    def test_quantities_match_naive(self, blobs, fitted):
        dc = safe_dc(blobs, 0.2)
        assert_quantities_equal(naive_quantities(blobs, dc), fitted.quantities(dc))

    def test_strict_mode_matches(self, blobs, fitted):
        base = naive_quantities(blobs, 0.5, tie_break="strict")
        assert_quantities_equal(base, fitted.quantities(0.5, tie_break="strict"))

    def test_stack_frontier_matches_heap(self, blobs):
        heap = QuadtreeIndex(frontier="heap").fit(blobs).quantities(0.5)
        stack = QuadtreeIndex(frontier="stack").fit(blobs).quantities(0.5)
        assert_quantities_equal(heap, stack)

    def test_huge_dc_contains_root(self, blobs, fitted):
        fitted.reset_stats()
        rho = fitted.rho_all(1e9)
        assert (rho == len(blobs) - 1).all()
        # Root fully contained -> exactly one node visit per query object.
        assert fitted.stats().nodes_visited == len(blobs)
        assert fitted.stats().nodes_contained == len(blobs)

    def test_tiny_dc_all_zero(self, blobs, fitted):
        assert (fitted.rho_all(1e-12) == 0).all()

    def test_invalid_frontier(self):
        with pytest.raises(ValueError, match="frontier"):
            QuadtreeIndex(frontier="queue")

    def test_haversine_rejected(self):
        with pytest.raises(ValueError, match="rectangle bounds"):
            QuadtreeIndex(metric="haversine")


class TestPruning:
    def test_pruning_off_same_results_more_work(self, blobs):
        base = naive_quantities(blobs, 0.5)
        pruned = QuadtreeIndex().fit(blobs)
        unpruned = QuadtreeIndex(density_pruning=False, distance_pruning=False).fit(blobs)
        assert_quantities_equal(base, pruned.quantities(0.5))
        assert_quantities_equal(base, unpruned.quantities(0.5))
        assert (
            unpruned.stats().nodes_visited > pruned.stats().nodes_visited
        ), "disabling Lemma 1+2 must increase node visits"

    def test_density_pruning_counter_moves(self, blobs, fitted):
        fitted.reset_stats()
        fitted.quantities(0.5)
        assert fitted.stats().nodes_pruned_density > 0
        assert fitted.stats().nodes_pruned_distance > 0

    def test_memory_reasonable(self, fitted, blobs):
        # O(n) structure: far below the quadratic list index.
        assert 0 < fitted.memory_bytes() < len(blobs) * 1000
