"""Unit tests for the shared vectorized query kernels."""

import numpy as np
import pytest

from repro.core.quantities import NO_NEIGHBOR, DensityOrder
from repro.indexes.kernels import (
    bounded_searchsorted,
    build_row_histograms,
    ch_rho_from_histograms,
    prefetch_scan_block,
    resolve_bin,
    row_searchsorted,
    scan_first_denser,
)


def random_csr(rng, n_rows, max_len=40, allow_empty=True):
    lengths = rng.integers(0 if allow_empty else 1, max_len + 1, size=n_rows)
    offsets = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    # sorted within each row, not globally
    flat = rng.uniform(0, 10, size=int(offsets[-1]))
    for p in range(n_rows):
        flat[offsets[p] : offsets[p + 1]].sort()
    return offsets, flat


class TestBoundedSearchsorted:
    @pytest.mark.parametrize("side", ["left", "right"])
    def test_matches_numpy_per_row(self, rng, side):
        offsets, flat = random_csr(rng, 60)
        needle = 5.0
        got = bounded_searchsorted(flat, offsets[:-1], offsets[1:], needle, side)
        for p in range(60):
            row = flat[offsets[p] : offsets[p + 1]]
            expected = offsets[p] + np.searchsorted(row, needle, side)
            assert got[p] == expected

    def test_needle_grid_broadcast(self, rng):
        offsets, flat = random_csr(rng, 25)
        needles = np.array([0.0, 2.5, 5.0, 9.9, 20.0])
        got = bounded_searchsorted(
            flat, offsets[:-1, None], offsets[1:, None], needles[None, :]
        )
        assert got.shape == (25, 5)
        for p in range(25):
            row = flat[offsets[p] : offsets[p + 1]]
            np.testing.assert_array_equal(
                got[p] - offsets[p], np.searchsorted(row, needles)
            )

    def test_duplicate_values_left_vs_right(self):
        flat = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        starts = np.array([0])
        stops = np.array([5])
        assert bounded_searchsorted(flat, starts, stops, 2.0, "left")[0] == 1
        assert bounded_searchsorted(flat, starts, stops, 2.0, "right")[0] == 4

    def test_empty_rows_return_start(self):
        flat = np.array([1.0, 2.0])
        starts = np.array([0, 1, 2])
        stops = np.array([1, 1, 2])  # middle row empty
        got = bounded_searchsorted(flat, starts, stops, 99.0)
        np.testing.assert_array_equal(got, [1, 1, 2])

    def test_invalid_side(self):
        with pytest.raises(ValueError, match="side"):
            bounded_searchsorted(np.arange(3.0), [0], [3], 1.0, side="middle")


class TestRowSearchsorted:
    def test_scalar_needle(self, rng):
        rows = np.sort(rng.uniform(0, 1, size=(30, 17)), axis=1)
        got = row_searchsorted(rows, 0.4)
        expected = [np.searchsorted(rows[p], 0.4) for p in range(30)]
        np.testing.assert_array_equal(got, expected)

    def test_per_row_needles(self, rng):
        rows = np.sort(rng.uniform(0, 1, size=(12, 9)), axis=1)
        needles = rng.uniform(0, 1, size=12)
        got = row_searchsorted(rows, needles)
        expected = [np.searchsorted(rows[p], needles[p]) for p in range(12)]
        np.testing.assert_array_equal(got, expected)

    def test_grid_needles(self, rng):
        rows = np.sort(rng.uniform(0, 1, size=(8, 21)), axis=1)
        dcs = np.linspace(0.0, 1.2, 5)
        got = row_searchsorted(rows, dcs[None, :])
        assert got.shape == (8, 5)
        for p in range(8):
            np.testing.assert_array_equal(got[p], np.searchsorted(rows[p], dcs))

    def test_grid_with_as_many_needles_as_rows(self, rng):
        """(1, n) grids must not be confused with per-row (n,) needles."""
        rows = np.sort(rng.uniform(0, 1, size=(6, 10)), axis=1)
        dcs = np.linspace(0.1, 0.9, 6)
        got = row_searchsorted(rows, dcs[None, :])
        assert got.shape == (6, 6)
        for p in range(6):
            np.testing.assert_array_equal(got[p], np.searchsorted(rows[p], dcs))


class TestBuildRowHistograms:
    def test_matches_per_row_searchsorted(self, rng):
        offsets, flat = random_csr(rng, 40)
        w = 0.73
        n_bins = np.array(
            [
                int(np.floor((flat[offsets[p + 1] - 1] if offsets[p + 1] > offsets[p] else 0.0) / w)) + 1
                for p in range(40)
            ],
            dtype=np.int64,
        )
        edges = w * np.arange(1, int(n_bins.max()) + 1, dtype=np.float64)
        hist_offsets, values = build_row_histograms(flat, offsets, n_bins, edges)
        for p in range(40):
            row = flat[offsets[p] : offsets[p + 1]]
            expected = np.searchsorted(row, edges[: n_bins[p]], side="left")
            np.testing.assert_array_equal(
                values[hist_offsets[p] : hist_offsets[p + 1]], expected
            )

    def test_blocking_invariance(self, rng):
        offsets, flat = random_csr(rng, 50)
        n_bins = np.full(50, 7, dtype=np.int64)
        edges = 1.6 * np.arange(1, 8, dtype=np.float64)
        a = build_row_histograms(flat, offsets, n_bins, edges, block_elems=8)
        b = build_row_histograms(flat, offsets, n_bins, edges, block_elems=10**7)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError, match="edges"):
            build_row_histograms(
                np.arange(3.0), np.array([0, 3]), np.array([5]), np.arange(1.0, 3.0)
            )


class TestScanFirstDenser:
    def brute(self, offsets, ids, dists, key):
        n = len(offsets) - 1
        delta = np.full(n, np.nan)
        mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)
        for p in range(n):
            for j in range(offsets[p], offsets[p + 1]):
                if key[ids[j]] < key[p]:
                    delta[p] = dists[j]
                    mu[p] = ids[j]
                    break
        return delta, mu

    @pytest.mark.parametrize("block", [1, 3, 32])
    def test_matches_bruteforce(self, rng, block):
        n = 50
        offsets, dists = random_csr(rng, n, max_len=12)
        ids = rng.integers(0, n, size=int(offsets[-1])).astype(np.int32)
        key = rng.permutation(n)
        delta, mu, resolved, scanned = scan_first_denser(offsets, ids, dists, key, block=block)
        b_delta, b_mu = self.brute(offsets, ids, dists, key)
        np.testing.assert_array_equal(mu, b_mu)
        found = b_mu != NO_NEIGHBOR
        np.testing.assert_array_equal(resolved, found)
        np.testing.assert_array_equal(delta[found], b_delta[found])
        assert scanned > 0

    def test_prefetch_gives_identical_results(self, rng):
        n = 60
        offsets, dists = random_csr(rng, n, max_len=20)
        ids = rng.integers(0, n, size=int(offsets[-1])).astype(np.int32)
        key = rng.permutation(n)
        plain = scan_first_denser(offsets, ids, dists, key, block=8)
        pre = prefetch_scan_block(offsets, ids, dists, 8)
        fetched = scan_first_denser(offsets, ids, dists, key, block=8, prefetch=pre)
        np.testing.assert_array_equal(plain[1], fetched[1])
        np.testing.assert_array_equal(plain[2], fetched[2])
        np.testing.assert_array_equal(plain[0][plain[2]], fetched[0][fetched[2]])
        assert plain[3] == fetched[3]  # identical scanned accounting


class TestResolveBin:
    def test_plain_cases(self):
        assert resolve_bin(1.0, 0.5) == 2
        assert resolve_bin(0.49, 0.5) == 0
        assert resolve_bin(0.51, 0.5) == 1

    def test_invariant_holds_on_random_pairs(self, rng):
        for _ in range(500):
            w = float(rng.uniform(0.01, 3.0))
            dc = float(rng.uniform(0.001, 50.0))
            t = resolve_bin(dc, w)
            assert w * t <= dc < w * (t + 1)


class TestChRhoFromHistograms:
    def test_matches_plain_searchsorted(self, rng):
        """The histogram-guided search equals a full binary search per row."""
        n = 45
        offsets, dists = random_csr(rng, n, max_len=30, allow_empty=False)
        w = 0.9
        lengths = np.diff(offsets)
        n_bins = np.array(
            [int(np.floor(dists[offsets[p + 1] - 1] / w)) + 1 for p in range(n)],
            dtype=np.int64,
        )
        edges = w * np.arange(1, int(n_bins.max()) + 1, dtype=np.float64)
        h_off, h_val = build_row_histograms(dists, offsets, n_bins, edges)
        h_val[h_off[1:] - 1] = lengths  # last bin covers the whole row
        for dc in (0.3, 0.9, 2.45, 7.0, 100.0):
            rho, scanned, searches = ch_rho_from_histograms(
                h_off, h_val, dists, offsets[:-1], dc, w
            )
            expected = [
                np.searchsorted(dists[offsets[p] : offsets[p + 1]], dc) for p in range(n)
            ]
            np.testing.assert_array_equal(rho, expected, err_msg=f"dc={dc}")
            assert scanned >= 0 and searches >= 0


class TestPeakDeltaSweep:
    def test_hand_computed_maxima(self):
        from repro.geometry.distance import get_metric
        from repro.indexes.base import IndexStats
        from repro.indexes.kernels import peak_delta_sweep

        points = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0], [0.0, 1.0]])
        stats = IndexStats()
        out = peak_delta_sweep(points, np.array([0, 2]), get_metric("euclidean"), stats)
        # Farthest from (0,0) is (6,8) at 10; farthest from (6,8) is (0,0).
        np.testing.assert_allclose(out, [10.0, 10.0])
        assert stats.distance_evals == 2 * 4

    def test_empty_and_blocked(self):
        from repro.geometry.distance import get_metric
        from repro.indexes.kernels import peak_delta_sweep

        points = np.arange(20, dtype=np.float64).reshape(10, 2)
        assert len(peak_delta_sweep(points, np.array([], dtype=np.int64),
                                    get_metric("euclidean"))) == 0
        # Tiny block size forces multiple cross slabs; same values.
        full = peak_delta_sweep(points, np.arange(10), get_metric("euclidean"))
        tiny = peak_delta_sweep(points, np.arange(10), get_metric("euclidean"),
                                block_elems=4)
        np.testing.assert_array_equal(full, tiny)


class TestFlatTree:
    def _two_leaf_tree(self):
        from repro.indexes.treebase import TreeNode

        left = TreeNode(np.array([0.0, 0.0]), np.array([1.0, 1.0]),
                        ids=np.array([0, 1]))
        right = TreeNode(np.array([4.0, 0.0]), np.array([5.0, 1.0]),
                         ids=np.array([2, 3]))
        root = TreeNode(np.array([0.0, 0.0]), np.array([5.0, 1.0]),
                        children=[left, right])
        root.finalize_counts()
        return root

    def test_flatten_layout(self):
        from repro.indexes.kernels import flatten_tree

        flat = flatten_tree(self._two_leaf_tree())
        assert flat.n_nodes == 3
        assert flat.levels == [(0, 1), (1, 3)]
        np.testing.assert_array_equal(flat.child_count, [2, 0, 0])
        assert flat.child_start[0] == 1
        np.testing.assert_array_equal(flat.nc, [4, 2, 2])
        np.testing.assert_array_equal(flat.leaf_ids, [0, 1, 2, 3])
        np.testing.assert_array_equal(flat.leaf_node_of, [1, 1, 2, 2])

    def test_flat_maxrho_hand_computed(self):
        from repro.indexes.kernels import flat_tree_maxrho, flatten_tree

        flat = flatten_tree(self._two_leaf_tree())
        rho_rows = np.array([[5, 1, 7, 2], [1, 1, 1, 9]], dtype=np.int64)
        maxrho = flat_tree_maxrho(flat, rho_rows)
        np.testing.assert_array_equal(maxrho, [[7, 5, 7], [9, 1, 9]])


class TestTreeDeltaBatched:
    def test_hand_computed_two_leaf_tree(self):
        from repro.geometry.distance import get_metric
        from repro.indexes.base import IndexStats
        from repro.indexes.kernels import flatten_tree, tree_delta_batched

        from repro.indexes.treebase import TreeNode

        pts = np.array([[0.0, 0.0], [1.0, 0.0], [4.0, 0.0], [5.0, 0.0]])
        left = TreeNode(pts[0], pts[1], ids=np.array([0, 1]))
        right = TreeNode(pts[2], pts[3], ids=np.array([2, 3]))
        root = TreeNode(pts[0], pts[3], children=[left, right])
        root.finalize_counts()
        flat = flatten_tree(root)
        rho = np.array([4, 3, 2, 1])
        order = DensityOrder(rho)
        delta, mu = tree_delta_batched(
            flat, pts,
            np.array([1, 2, 3]), np.zeros(3, dtype=np.int64),
            rho[None, :], order.rank[None, :],
            get_metric("euclidean"), IndexStats(),
        )
        # 1 -> 0 (dist 1); 2 -> 1 (dist 3); 3 -> 2 (dist 1).
        np.testing.assert_array_equal(mu, [0, 1, 2])
        np.testing.assert_allclose(delta, [1.0, 3.0, 1.0])

    def test_distance_tie_resolves_to_smaller_id(self):
        from repro.geometry.distance import get_metric
        from repro.indexes.base import IndexStats
        from repro.indexes.kernels import flatten_tree, tree_delta_batched
        from repro.indexes.treebase import TreeNode

        # Object 2 sits exactly between denser objects 0 and 1, one per leaf.
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 0.0]])
        left = TreeNode(np.array([0.0, 0.0]), np.array([1.0, 0.0]),
                        ids=np.array([0, 2]))
        right = TreeNode(np.array([2.0, 0.0]), np.array([2.0, 0.0]),
                         ids=np.array([1]))
        root = TreeNode(np.array([0.0, 0.0]), np.array([2.0, 0.0]),
                        children=[left, right])
        root.finalize_counts()
        rho = np.array([5, 5, 1])
        order = DensityOrder(rho)
        delta, mu = tree_delta_batched(
            flatten_tree(root), pts,
            np.array([1, 2]), np.zeros(2, dtype=np.int64),
            rho[None, :], order.rank[None, :],
            get_metric("euclidean"), IndexStats(),
        )
        # Results align with qid = [1, 2]: row 0 is object 1, row 1 object 2.
        assert mu[0] == 0 and delta[0] == 2.0   # tie on rho: smaller id denser
        assert mu[1] == 0 and delta[1] == 1.0   # equidistant: smaller id wins

    def test_multi_order_rows_are_independent(self):
        from repro.geometry.distance import get_metric
        from repro.indexes.base import IndexStats
        from repro.indexes.kernels import flatten_tree, tree_delta_batched
        from repro.indexes.treebase import TreeNode

        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        leaf = TreeNode(pts[0], pts[2], ids=np.array([0, 1, 2]))
        leaf.finalize_counts()
        flat = flatten_tree(leaf)
        rho_rows = np.array([[3, 2, 1], [1, 2, 3]])
        orders = [DensityOrder(r) for r in rho_rows]
        key_rows = np.stack([o.rank for o in orders])
        delta, mu = tree_delta_batched(
            flat, pts,
            np.array([1, 2, 0, 1]), np.array([0, 0, 1, 1]),
            rho_rows, key_rows, get_metric("euclidean"), IndexStats(),
        )
        # Order 0 (densest first): 1 -> 0, 2 -> 1.  Order 1 (reversed):
        # 0 -> 1, 1 -> 2.
        np.testing.assert_array_equal(mu, [0, 1, 1, 2])
        np.testing.assert_allclose(delta, [1.0, 2.0, 1.0, 2.0])


class TestGridDeltaBatched:
    def test_matches_scalar_reference_on_blobs(self):
        from repro.core.baseline import naive_quantities
        from repro.indexes.grid import GridIndex

        rng = np.random.default_rng(3)
        pts = np.round(rng.uniform(0, 6, (150, 2)) * 3) / 3
        base = naive_quantities(pts, 0.8)
        got = GridIndex(cell_size=0.7).fit(pts).quantities(0.8)
        np.testing.assert_array_equal(base.delta, got.delta)
        np.testing.assert_array_equal(base.mu, got.mu)

    def test_single_occupied_cell(self):
        from repro.indexes.grid import GridIndex

        pts = np.array([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])
        q = GridIndex(cell_size=5.0).fit(pts).quantities(1.0)
        # Coincident ties all resolve to the smallest denser id.
        np.testing.assert_array_equal(q.mu, [NO_NEIGHBOR, 0, 0])


class TestTreeRhoBatched:
    def test_contained_node_adds_wholesale(self):
        from repro.geometry.distance import get_metric
        from repro.indexes.base import IndexStats
        from repro.indexes.kernels import flatten_tree, tree_rho_batched
        from repro.indexes.treebase import TreeNode

        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [9.0, 9.0]])
        left = TreeNode(np.array([0.0, 0.0]), np.array([0.1, 0.1]),
                        ids=np.array([0, 1, 2]))
        right = TreeNode(pts[3], pts[3], ids=np.array([3]))
        root = TreeNode(np.array([0.0, 0.0]), np.array([9.0, 9.0]),
                        children=[left, right])
        root.finalize_counts()
        stats = IndexStats()
        counts = tree_rho_batched(
            flatten_tree(root), pts, 1.0, get_metric("euclidean"), stats
        )
        np.testing.assert_array_equal(counts, [2, 2, 2, 0])
        # Objects 0-2 fully contain the left leaf in their query circle;
        # object 3 fully contains the (degenerate) right leaf.
        assert stats.nodes_contained == 4
