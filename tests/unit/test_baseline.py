"""Unit tests for the naive Θ(n²) baseline and the dc estimator."""

import numpy as np
import pytest

from repro.core.baseline import estimate_dc, naive_quantities, naive_rho
from repro.core.quantities import NO_NEIGHBOR


class TestNaiveRho:
    def test_matches_definition(self, blobs):
        """ρ(p) = |{q ≠ p : dist(p,q) < dc}| by direct double loop."""
        pts = blobs[:60]
        dc = 0.5
        rho = naive_rho(pts, dc)
        for p in range(len(pts)):
            count = sum(
                1
                for q in range(len(pts))
                if q != p and np.sqrt(((pts[p] - pts[q]) ** 2).sum()) < dc
            )
            assert rho[p] == count

    def test_strict_inequality_at_boundary(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        # dist(0,1) == 1.0 exactly; Eq. 1 uses strict '<'.
        np.testing.assert_array_equal(naive_rho(pts, 1.0), [0, 0, 0])
        np.testing.assert_array_equal(naive_rho(pts, 1.0000001), [1, 2, 1])

    def test_blocking_invariant(self, blobs):
        full = naive_rho(blobs, 0.4, block_rows=len(blobs))
        small = naive_rho(blobs, 0.4, block_rows=17)
        np.testing.assert_array_equal(full, small)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="dc must be positive"):
            naive_rho(np.zeros((3, 2)), 0.0)
        with pytest.raises(ValueError, match="non-empty"):
            naive_rho(np.zeros((0, 2)), 1.0)


class TestNaiveQuantities:
    def test_delta_is_distance_to_nearest_denser(self, blobs):
        pts = blobs[:80]
        q = naive_quantities(pts, 0.5)
        d = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(-1))
        for p in range(len(pts)):
            if q.mu[p] == NO_NEIGHBOR:
                continue
            denser = [
                j
                for j in range(len(pts))
                if q.rho[j] > q.rho[p] or (q.rho[j] == q.rho[p] and j < p)
            ]
            assert q.delta[p] == d[p, denser].min()
            assert q.density_order.is_denser(int(q.mu[p]), p)
            assert d[p, q.mu[p]] == q.delta[p]

    def test_global_peak_gets_max_distance(self, blobs):
        q = naive_quantities(blobs, 0.5)
        peak = int(q.density_order.order[0])
        assert q.mu[peak] == NO_NEIGHBOR
        d = np.sqrt(((blobs - blobs[peak]) ** 2).sum(axis=1))
        assert q.delta[peak] == d.max()

    def test_strict_mode_many_peaks(self):
        # Four corners of a square: all densities 0 at tiny dc -> all peaks.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        q = naive_quantities(pts, 0.01, tie_break="strict")
        assert (q.mu == NO_NEIGHBOR).all()
        np.testing.assert_allclose(q.delta, np.sqrt(2.0))

    def test_id_mode_single_peak(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        q = naive_quantities(pts, 0.01)
        assert (q.mu == NO_NEIGHBOR).sum() == 1
        assert q.mu[0] == NO_NEIGHBOR  # smallest id wins all ties

    def test_reuses_precomputed_rho(self, blobs):
        rho = naive_rho(blobs, 0.5)
        q = naive_quantities(blobs, 0.5, rho=rho)
        assert q.rho is rho

    def test_blocking_invariant(self, blobs):
        a = naive_quantities(blobs, 0.5, block_rows=13)
        b = naive_quantities(blobs, 0.5, block_rows=1024)
        np.testing.assert_array_equal(a.delta, b.delta)
        np.testing.assert_array_equal(a.mu, b.mu)


class TestEstimateDc:
    def test_targets_neighbor_fraction(self, blobs):
        dc = estimate_dc(blobs, neighbor_fraction=0.02)
        rho = naive_rho(blobs, dc)
        mean_fraction = rho.mean() / (len(blobs) - 1)
        assert 0.005 < mean_fraction < 0.08  # loose but meaningful bracket

    def test_monotone_in_fraction(self, blobs):
        assert estimate_dc(blobs, 0.01) <= estimate_dc(blobs, 0.2)

    def test_deterministic_given_seed(self, blobs):
        assert estimate_dc(blobs, seed=5) == estimate_dc(blobs, seed=5)

    def test_sampling_path(self, blobs):
        dc = estimate_dc(blobs, sample_size=50, seed=3)
        assert dc > 0.0

    def test_rejects_bad_fraction(self, blobs):
        with pytest.raises(ValueError, match="neighbor_fraction"):
            estimate_dc(blobs, neighbor_fraction=1.5)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="at least 2"):
            estimate_dc(np.zeros((1, 2)))

    def test_coincident_points_fallback(self):
        pts = np.array([[1.0, 1.0]] * 5 + [[2.0, 2.0]] * 5)
        dc = estimate_dc(pts, neighbor_fraction=0.01)
        assert dc > 0.0

    def test_all_identical_raises(self):
        pts = np.ones((6, 2))
        with pytest.raises(ValueError, match="coincide"):
            estimate_dc(pts)
