"""Unit tests for the shared tree machinery (TreeNode + TreeIndexBase)."""

import numpy as np
import pytest

from repro.core.quantities import DensityOrder
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.treebase import TreeNode


class TestTreeNode:
    def test_leaf_basics(self):
        node = TreeNode(np.zeros(2), np.ones(2), ids=np.array([1, 2, 3]))
        assert node.is_leaf
        assert node.nc == 3
        assert node.height() == 1

    def test_finalize_counts_and_tuple_boxes(self):
        leaf_a = TreeNode(np.zeros(2), np.ones(2), ids=np.array([0, 1]))
        leaf_b = TreeNode(np.ones(2), 2 * np.ones(2), ids=np.array([2]))
        root = TreeNode(np.zeros(2), 2 * np.ones(2), children=[leaf_a, leaf_b])
        assert root.finalize_counts() == 3
        assert root.lo_t == (0.0, 0.0) and root.hi_t == (2.0, 2.0)
        assert leaf_b.lo_t == (1.0, 1.0)

    def test_iter_nodes_visits_all(self):
        leaf_a = TreeNode(np.zeros(2), np.ones(2), ids=np.array([0]))
        leaf_b = TreeNode(np.ones(2), 2 * np.ones(2), ids=np.array([1]))
        root = TreeNode(np.zeros(2), 2 * np.ones(2), children=[leaf_a, leaf_b])
        assert len(list(root.iter_nodes())) == 3

    def test_rect_property(self):
        node = TreeNode(np.zeros(2), np.ones(2), ids=np.array([0]))
        assert node.rect.area() == 1.0


class TestMaxrhoAnnotation:
    def test_annotation_is_subtree_max(self, blobs):
        index = RTreeIndex(max_entries=8).fit(blobs)
        rho = index.rho_all(0.5)
        index._annotate_maxrho(rho)
        for node in index.root.iter_nodes():
            ids = np.concatenate(
                [leaf.ids for leaf in node.iter_nodes() if leaf.is_leaf]
            )
            assert node.maxrho == rho[ids].max()

    def test_reannotation_per_dc(self, blobs):
        # The per-object reference frontiers annotate TreeNode.maxrho; the
        # batched engine keeps its annotation in the FlatTree arrays.
        index = QuadtreeIndex(frontier="heap").fit(blobs)
        index.quantities(0.2)
        small = index.root.maxrho
        index.quantities(2.0)
        assert index.root.maxrho > small

    def test_flat_annotation_matches_node_annotation(self, blobs):
        from repro.indexes.kernels import flat_tree_maxrho

        index = QuadtreeIndex().fit(blobs)
        rho = index.rho_all(0.5)
        index._annotate_maxrho(rho)
        flat = index._flat_tree()
        flat_rows = flat_tree_maxrho(flat, rho[None, :])
        # Node 0 of the flat image is the root; spot-check the whole BFS
        # order against the per-node annotation.
        nodes = [index.root]
        start, stop = 0, 1
        while start < stop:
            for i in range(start, stop):
                if nodes[i].children is not None:
                    nodes.extend(nodes[i].children)
            start, stop = stop, len(nodes)
        for i, node in enumerate(nodes):
            assert flat_rows[0, i] == node.maxrho


class TestBoundFns:
    def test_fast_path_matches_generic_euclidean_2d(self, blobs):
        index = KDTreeIndex().fit(blobs)
        mindist, maxdist, q_of = index._bound_fns()
        rect_min = index.metric.rect_mindist
        rect_max = index.metric.rect_maxdist
        nodes = list(index.root.iter_nodes())[:10]
        for p in blobs[::50]:
            q = q_of(p)
            for node in nodes:
                assert mindist(q, node) == pytest.approx(
                    rect_min(p, node.lo, node.hi), abs=1e-12
                )
                assert maxdist(q, node) == pytest.approx(
                    rect_max(p, node.lo, node.hi), abs=1e-12
                )

    def test_generic_path_used_for_other_metrics(self, blobs):
        index = KDTreeIndex(metric="manhattan").fit(blobs)
        mindist, _, q_of = index._bound_fns()
        node = index.root
        p = blobs[0]
        assert mindist(q_of(p), node) == index.metric.rect_mindist(p, node.lo, node.hi)

    def test_generic_path_used_for_3d(self, rng):
        pts = rng.normal(size=(80, 3))
        index = KDTreeIndex().fit(pts)
        mindist, _, q_of = index._bound_fns()
        p = pts[0]
        assert mindist(q_of(p), index.root) == index.metric.rect_mindist(
            p, index.root.lo, index.root.hi
        )


class TestStatsBookkeeping:
    def test_reset_stats(self, blobs):
        index = RTreeIndex().fit(blobs)
        index.quantities(0.5)
        assert index.stats().total_work() > 0
        index.reset_stats()
        assert index.stats().total_work() == 0

    def test_refit_resets_stats(self, blobs):
        """Probe counters are per-fit epochs; a refit must not accumulate
        work from the previous dataset (regression — the Theorem 1-4
        complexity checks silently double-counted across re-fits)."""
        index = RTreeIndex().fit(blobs)
        index.quantities(0.5)
        assert index.stats().total_work() > 0
        index.fit(blobs * 2.0)
        assert index.stats().total_work() == 0

    def test_stats_dict_keys(self, blobs):
        index = RTreeIndex().fit(blobs)
        index.quantities(0.5)
        d = index.stats().as_dict()
        assert set(d) == {
            "distance_evals",
            "objects_scanned",
            "nodes_visited",
            "nodes_pruned_density",
            "nodes_pruned_distance",
            "nodes_contained",
            "binary_searches",
        }

    def test_node_count_and_height(self, blobs):
        index = RTreeIndex(max_entries=4).fit(blobs)
        assert index.node_count() == len(list(index.root.iter_nodes()))
        assert index.height() >= 2

    def test_root_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RTreeIndex().root


class TestFlatTreeLifecycle:
    def test_bulk_fit_builds_flat_image_up_front(self, blobs):
        index = RTreeIndex().fit(blobs)
        assert index.build_ == "bulk"
        assert index._flat is not None  # the image *is* the fit product
        assert index._root is None  # no object graph materialised by fit...
        index.quantities(0.5)
        assert index._root is None  # ...nor by the batched queries

    def test_objects_memory_bytes_counts_flat_image(self, blobs):
        index = RTreeIndex(build="objects").fit(blobs)
        before = index.memory_bytes()
        index.quantities(0.5)  # materialises the FlatTree lazily
        after = index.memory_bytes()
        assert after > before
        assert after - before == index._flat.nbytes()

    def test_refit_drops_flat_cache_objects(self, blobs):
        index = RTreeIndex(build="objects").fit(blobs)
        index.quantities(0.5)
        assert index._flat is not None
        index.fit(blobs * 2.0)
        assert index._flat is None  # old tree not pinned across refits
        index.quantities(0.5)
        assert index._flat.root is index.root

    def test_refit_replaces_flat_image_bulk(self, blobs):
        index = RTreeIndex().fit(blobs)
        stale = index._flat
        index.fit(blobs * 2.0)
        assert index._flat is not stale  # old image not pinned across refits
        assert index._flat is not None

    def test_materialised_graph_does_not_double_count_flat_arrays(self, blobs):
        """tree_from_flat nodes are views into the flat arrays; only the
        per-node object overhead may be added on top of the image."""
        index = RTreeIndex().fit(blobs)
        before = index.memory_bytes()
        assert before == index._flat.nbytes()
        n_nodes = index.node_count()
        index.root  # materialise the object graph from the image
        added = index.memory_bytes() - before
        assert added == 64 * n_nodes + 8 * (n_nodes - 1)

    def test_rejected_refit_leaves_index_queryable(self, blobs):
        """Regression: clearing the tree before fit() validation ran left a
        previously-fitted index answering nothing after a bad refit call."""
        index = RTreeIndex().fit(blobs)
        expected = index.quantities(0.5)
        import numpy as np
        import pytest

        with pytest.raises(ValueError):
            index.fit(np.empty((0, 2)))
        got = index.quantities(0.5)
        np.testing.assert_array_equal(expected.rho, got.rho)
        np.testing.assert_array_equal(expected.delta, got.delta)

    def test_refit_drops_shard_pack_with_flat_cache(self, blobs):
        """Regression: the FlatTree cache is counted by memory_bytes and was
        invalidated on refit, but the *published* copy of it — the
        shared-memory shard image workers read — survived a second fit,
        leaving process-backend queries answering from the old dataset's
        tree.  Both caches must die together."""
        index = RTreeIndex(backend="process", n_jobs=2, chunk_size=17).fit(blobs)
        try:
            first = index.quantities(0.5)
            assert index._shard_pack is not None
            stale_pack = index._shard_pack
            stale_flat = index._flat
            index.fit(blobs * 2.0)
            assert index._flat is not stale_flat
            assert index._shard_pack is None
            assert stale_pack._finalizer.alive is False  # unlinked, not leaked
            got = index.quantities(0.5)
            ref = RTreeIndex().fit(blobs * 2.0).quantities(0.5)
            import numpy as np

            np.testing.assert_array_equal(ref.rho, got.rho)
            np.testing.assert_array_equal(ref.delta, got.delta)
            np.testing.assert_array_equal(ref.mu, got.mu)
            assert not np.array_equal(first.rho, got.rho) or len(first.rho) != len(got.rho)
        finally:
            index.release_execution()
