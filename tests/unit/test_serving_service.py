"""ClusteringService + RequestCoalescer behaviour (exactness, caching, errors)."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.indexes.registry import make_index
from repro.serving.coalescer import RequestCoalescer, ServeRequest
from repro.serving.service import ClusteringService


@pytest.fixture
def service(blobs):
    with ClusteringService(linger_ms=1.0) as service:
        service.fit_snapshot("main", blobs, index="kdtree")
        yield service


class TestExactness:
    def test_quantities_matches_direct_call(self, service, blobs):
        direct = make_index("kdtree").fit(blobs)
        for dc in (0.3, 0.5, 0.9):
            served = service.quantities("main", dc).value
            reference = direct.quantities(dc)
            np.testing.assert_array_equal(served.rho, reference.rho)
            np.testing.assert_array_equal(served.delta, reference.delta)
            np.testing.assert_array_equal(served.mu, reference.mu)

    def test_cluster_matches_direct_call(self, service, blobs):
        direct = make_index("kdtree").fit(blobs)
        served = service.cluster("main", 0.5, n_centers=3, halo=True).value
        reference = direct.cluster(0.5, n_centers=3, halo=True)
        np.testing.assert_array_equal(served.labels, reference.labels)
        np.testing.assert_array_equal(served.centers, reference.centers)
        np.testing.assert_array_equal(served.halo, reference.halo)

    def test_serial_and_coalesced_dispatch_agree(self, blobs):
        results = {}
        for dispatch in ("serial", "coalesce"):
            with ClusteringService(dispatch=dispatch) as service:
                service.fit_snapshot("main", blobs, index="grid")
                with ThreadPoolExecutor(6) as pool:
                    futures = [
                        service.submit("main", "cluster", dc, n_centers=3, use_cache=False)
                        for dc in (0.3, 0.5, 0.7, 0.3, 0.5, 0.7)
                    ]
                    results[dispatch] = [f.result().value for f in futures]
        for a, b in zip(results["serial"], results["coalesce"]):
            np.testing.assert_array_equal(a.labels, b.labels)
            np.testing.assert_array_equal(a.rho, b.rho)
            np.testing.assert_array_equal(a.delta, b.delta)

    def test_tie_break_conventions_served(self, service, blobs):
        direct = make_index("kdtree").fit(blobs)
        for tie_break in ("id", "strict"):
            served = service.quantities("main", 0.5, tie_break=tie_break).value
            reference = direct.quantities(0.5, tie_break)
            np.testing.assert_array_equal(served.mu, reference.mu)


class TestCache:
    def test_hit_returns_same_object(self, service):
        first = service.cluster("main", 0.5, n_centers=3)
        second = service.cluster("main", 0.5, n_centers=3)
        assert not first.meta["cache_hit"]
        assert second.meta["cache_hit"]
        assert second.value is first.value  # memoised, trivially bit-identical

    def test_quantities_and_cluster_cached_separately(self, service):
        service.quantities("main", 0.5)
        result = service.cluster("main", 0.5, n_centers=3)
        assert not result.meta["cache_hit"]

    def test_use_cache_false_bypasses(self, service):
        service.cluster("main", 0.5, n_centers=3)
        result = service.cluster("main", 0.5, n_centers=3, use_cache=False)
        assert not result.meta["cache_hit"]

    def test_refit_regression_no_stale_results(self, service, blobs):
        """After a fit on new data (snapshot swap), the service must never
        serve results derived from the old dataset — the PR-3 refit
        invalidation extended up through the cache layer."""
        old = service.cluster("main", 0.5, n_centers=3)
        new_points = blobs + 5.0
        service.fit_snapshot("main", new_points, index="kdtree")
        fresh = service.cluster("main", 0.5, n_centers=3)
        assert not fresh.meta["cache_hit"]
        assert fresh.meta["fingerprint"] != old.meta["fingerprint"]
        reference = make_index("kdtree").fit(new_points).cluster(0.5, n_centers=3)
        np.testing.assert_array_equal(fresh.value.labels, reference.labels)
        np.testing.assert_array_equal(fresh.value.rho, reference.rho)

    def test_republish_same_data_keeps_cache_warm(self, service, blobs):
        service.cluster("main", 0.5, n_centers=3)
        service.fit_snapshot("main", blobs, index="kdtree")  # same content
        assert service.cluster("main", 0.5, n_centers=3).meta["cache_hit"]

    def test_shared_fingerprint_survives_other_names_swap(self, service, blobs):
        """Two names serving identical content share cache entries; swapping
        one must not cold-start the other (content-addressed keys)."""
        service.fit_snapshot("twin", blobs, index="kdtree")  # same fp as "main"
        warm = service.cluster("main", 0.5, n_centers=3)
        service.fit_snapshot("main", blobs + 9.0, index="kdtree")  # swap "main"
        still_warm = service.cluster("twin", 0.5, n_centers=3)
        assert still_warm.meta["cache_hit"]
        assert still_warm.meta["fingerprint"] == warm.meta["fingerprint"]
        # Once the last holder goes too, the fingerprint's entries purge.
        service.drop_snapshot("twin")
        assert service.cache.stats.invalidations > 0

    def test_drop_purges_cache(self, service, blobs):
        service.cluster("main", 0.5, n_centers=3)
        service.drop_snapshot("main")
        assert service.cache.stats.invalidations > 0
        with pytest.raises(KeyError):
            service.cluster("main", 0.5)


class TestCoalescing:
    def test_concurrent_requests_batch_into_one_engine_call(self, blobs):
        with ClusteringService(linger_ms=25.0) as service:
            service.fit_snapshot("main", blobs, index="grid")
            barrier = threading.Barrier(8)

            def query(dc):
                barrier.wait()
                return service.submit("main", "quantities", dc, use_cache=False).result()

            with ThreadPoolExecutor(8) as pool:
                results = list(pool.map(query, [0.3, 0.4, 0.5, 0.6, 0.3, 0.4, 0.5, 0.6]))
            stats = service.coalescer.stats
            assert stats["requests"] == 8
            # All 8 arrived inside one linger window -> far fewer engine calls
            # than requests, with duplicate dcs deduplicated.
            assert stats["engine_calls"] < 8
            assert stats["deduped_dcs"] >= 1
            coalesced = [r for r in results if r.meta.get("coalesced")]
            assert coalesced, "at least some requests must have shared a batch"

    def test_mixed_ops_share_one_quantities_run(self, blobs):
        with ClusteringService(linger_ms=25.0) as service:
            service.fit_snapshot("main", blobs, index="grid")
            barrier = threading.Barrier(2)
            direct = make_index("grid").fit(blobs)

            def run(op):
                barrier.wait()
                kwargs = {"n_centers": 3} if op == "cluster" else {}
                return service.submit("main", op, 0.5, use_cache=False, **kwargs).result()

            with ThreadPoolExecutor(2) as pool:
                q_res, c_res = pool.map(run, ["quantities", "cluster"])
            np.testing.assert_array_equal(q_res.value.rho, direct.quantities(0.5).rho)
            np.testing.assert_array_equal(
                c_res.value.labels, direct.cluster(0.5, n_centers=3).labels
            )

    def test_bad_selection_params_fail_only_that_request(self, blobs):
        with ClusteringService(linger_ms=25.0) as service:
            service.fit_snapshot("main", blobs, index="grid")
            barrier = threading.Barrier(2)

            def good():
                barrier.wait()
                return service.submit("main", "cluster", 0.5, n_centers=3).result()

            def bad():
                barrier.wait()
                # n_centers AND thresholds together is a per-request error.
                return service.submit(
                    "main", "cluster", 0.5, n_centers=3, rho_min=1.0, delta_min=0.1
                ).result()

            with ThreadPoolExecutor(2) as pool:
                good_future = pool.submit(good)
                bad_future = pool.submit(bad)
                assert good_future.result().value.n_clusters == 3
                with pytest.raises(ValueError, match="not both"):
                    bad_future.result()

    def test_engine_error_propagates(self, service):
        with pytest.raises(ValueError, match="dc must be positive"):
            service.cluster("main", -1.0)
        with pytest.raises(ValueError, match="dc must be positive"):
            service.cluster("main", float("nan"))

    def test_bad_dc_cannot_poison_a_batch(self, blobs):
        """An invalid dc is rejected at admission, so it can never ride a
        coalesced batch and fail its batch-mates (serial equivalence)."""
        with ClusteringService(linger_ms=25.0) as service:
            service.fit_snapshot("main", blobs, index="grid")
            barrier = threading.Barrier(2)

            def good():
                barrier.wait()
                return service.submit("main", "cluster", 0.5, n_centers=3).result()

            def bad():
                barrier.wait()
                return service.submit("main", "cluster", -1.0)

            with ThreadPoolExecutor(2) as pool:
                good_future = pool.submit(good)
                bad_future = pool.submit(bad)
                assert good_future.result().value.n_clusters == 3
                with pytest.raises(ValueError, match="dc must be positive"):
                    bad_future.result()

    def test_coalescer_close_rejects_new_submits(self):
        coalescer = RequestCoalescer()
        coalescer.close()
        with pytest.raises(RuntimeError, match="closed"):
            coalescer.submit(
                ServeRequest(snapshot=None, op="quantities", dc=1.0)  # type: ignore[arg-type]
            )

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            RequestCoalescer(max_batch=0)
        with pytest.raises(ValueError, match="linger_ms"):
            RequestCoalescer(linger_ms=-1.0)
        with pytest.raises(ValueError, match="dispatch"):
            ClusteringService(dispatch="magic")
        with pytest.raises(ValueError, match="op must be"):
            ServeRequest(snapshot=None, op="explode", dc=1.0)  # type: ignore[arg-type]


class TestLoadgen:
    def test_errors_excluded_from_throughput_and_percentiles(self, blobs):
        from repro.serving.loadgen import run_load

        with ClusteringService() as service:
            service.fit_snapshot("main", blobs, index="grid")
            # Every request targets a missing snapshot -> all error.
            report = run_load(service, "ghost", [0.5], clients=2, requests_per_client=3)
        assert report.requests == 6 and report.errors == 6
        assert report.throughput_rps == 0.0
        assert all(np.isnan(v) for v in report.latency_ms.values())

    def test_successful_run_counts(self, blobs):
        from repro.serving.loadgen import run_load

        with ClusteringService() as service:
            service.fit_snapshot("main", blobs, index="grid")
            report = run_load(
                service, "main", [0.4, 0.6], clients=2, requests_per_client=3,
                use_cache=True, cluster_params={"n_centers": 3},
            )
        assert report.requests == 6 and report.errors == 0
        assert report.throughput_rps > 0.0
        assert report.latency_ms["p50"] > 0.0
        assert report.cache_hits >= 1  # 6 draws over 2 dcs must repeat


class TestMetaAndStats:
    def test_meta_fields(self, service):
        result = service.cluster("main", 0.5, n_centers=3)
        for field in ("snapshot", "fingerprint", "snapshot_version", "op",
                      "cache_hit", "batch_size", "batch_dcs", "elapsed_ms"):
            assert field in result.meta
        assert result.meta["snapshot"] == "main"
        assert result.meta["op"] == "cluster"

    def test_stats_shape(self, service):
        service.cluster("main", 0.5, n_centers=3)
        stats = service.stats()
        assert stats["dispatch"] == "coalesce"
        assert stats["snapshots"][0]["name"] == "main"
        assert "hits" in stats["cache"]
        assert stats["coalescer"]["requests"] >= 1

    def test_stats_returns_snapshot_copies(self, service):
        """Mutating what stats() returned must never touch live state."""
        service.cluster("main", 0.5, n_centers=3)
        stats = service.stats()
        stats["coalescer"]["requests"] = -999
        stats["cache"]["hits"] = -999
        stats["health"]["state"] = "broken"
        fresh = service.stats()
        assert fresh["coalescer"]["requests"] >= 1
        assert fresh["cache"]["hits"] >= 0
        assert fresh["health"]["state"] != "broken"

    def test_health_returns_copy_not_live_counters(self, service):
        service.cluster("main", 0.5, n_centers=3)
        health = service.health()
        health["shed"] = -999
        health["snapshots"]["main"]["state"] = "broken"
        fresh = service.health()
        assert fresh["shed"] >= 0
        assert fresh["snapshots"]["main"]["state"] in ("healthy", "degraded")

    def test_unknown_snapshot_raises_keyerror(self, service):
        with pytest.raises(KeyError, match="no snapshot named"):
            service.quantities("nope", 0.5)

    def test_close_is_idempotent(self, blobs):
        service = ClusteringService()
        service.fit_snapshot("main", blobs, index="grid")
        service.close()
        service.close()
