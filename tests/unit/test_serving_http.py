"""HTTP front-end: routes, JSON fidelity, error codes, CLI serve wiring."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.indexes.persist import save_index
from repro.indexes.registry import make_index
from repro.serving.http import make_server, serialize_value
from repro.serving.service import ClusteringService


@pytest.fixture
def served(blobs):
    """A live server over one published snapshot; yields (base_url, service)."""
    with ClusteringService(linger_ms=1.0) as service:
        service.fit_snapshot("main", blobs, index="kdtree")
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            yield f"http://{host}:{port}", service
        finally:
            server.shutdown()
            server.server_close()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.load(response)


def post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def delete(base, path):
    request = urllib.request.Request(base + path, method="DELETE")
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


class TestRoutes:
    def test_healthz(self, served):
        base, _ = served
        out = get(base, "/healthz")
        assert out["status"] == "ok"
        assert out["snapshots"] == 1
        health = out["health"]
        assert health["state"] == "healthy"
        assert health["shedding"] is False
        assert health["snapshots"]["main"]["state"] == "healthy"

    def test_snapshots_listing(self, served):
        base, service = served
        rows = get(base, "/v1/snapshots")["snapshots"]
        assert rows[0]["name"] == "main"
        assert rows[0]["fingerprint"] == service.store.get("main").fingerprint

    def test_query_bit_identical_through_json(self, served, blobs):
        base, _ = served
        out = post(base, "/v1/query", {
            "snapshot": "main", "op": "cluster", "dc": 0.5,
            "n_centers": 3, "halo": True,
        })
        reference = make_index("kdtree").fit(blobs).cluster(0.5, n_centers=3, halo=True)
        assert out["labels"] == reference.labels.tolist()
        assert out["rho"] == reference.rho.tolist()
        assert out["centers"] == reference.centers.tolist()
        assert out["halo"] == reference.halo.tolist()
        # JSON floats are repr-based shortest round-trip: bit-identical δ.
        np.testing.assert_array_equal(np.asarray(out["delta"]), reference.delta)
        assert out["n_clusters"] == reference.n_clusters
        assert out["meta"]["cache_hit"] is False

    def test_quantities_op(self, served, blobs):
        base, _ = served
        out = post(base, "/v1/query", {"snapshot": "main", "op": "quantities", "dc": 0.5})
        reference = make_index("kdtree").fit(blobs).quantities(0.5)
        assert out["mu"] == reference.mu.tolist()
        assert "labels" not in out

    def test_cache_hit_over_http(self, served):
        base, _ = served
        body = {"snapshot": "main", "op": "cluster", "dc": 0.4, "n_centers": 3}
        first = post(base, "/v1/query", body)
        second = post(base, "/v1/query", body)
        assert not first["meta"]["cache_hit"]
        assert second["meta"]["cache_hit"]
        assert second["labels"] == first["labels"]

    def test_publish_points_then_query(self, served, rng):
        base, _ = served
        points = rng.normal(size=(60, 2))
        published = post(base, "/v1/snapshots/extra", {
            "points": points.tolist(), "index": "grid",
            "params": {"target_occupancy": 4},
        })["published"]
        assert published["n"] == 60
        out = post(base, "/v1/query", {"snapshot": "extra", "op": "cluster", "dc": 0.8})
        reference = make_index("grid", target_occupancy=4).fit(points).cluster(0.8)
        assert out["labels"] == reference.labels.tolist()

    def test_publish_from_persisted_path(self, served, blobs, tmp_path):
        base, _ = served
        path = str(tmp_path / "saved.npz")
        fitted = make_index("ch", bin_width=0.4).fit(blobs)
        save_index(fitted, path)
        published = post(base, "/v1/snapshots/loaded", {"path": path})["published"]
        assert published["fingerprint"] == fitted.fingerprint()

    def test_delete_snapshot(self, served):
        base, _ = served
        assert delete(base, "/v1/snapshots/main") == {"dropped": "main"}
        assert get(base, "/healthz")["snapshots"] == 0

    def test_stats(self, served):
        base, _ = served
        post(base, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": 0.5})
        stats = get(base, "/v1/stats")
        assert stats["coalescer"]["requests"] >= 1
        assert stats["cache"]["misses"] >= 1


class TestErrors:
    def expect_error(self, fn, code):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fn()
        assert excinfo.value.code == code
        return json.load(excinfo.value)

    def test_unknown_route_404(self, served):
        base, _ = served
        body = self.expect_error(lambda: get(base, "/v1/nope"), 404)
        assert "no route" in body["error"]

    def test_unknown_snapshot_404(self, served):
        base, _ = served
        body = self.expect_error(
            lambda: post(base, "/v1/query", {"snapshot": "ghost", "op": "cluster", "dc": 1.0}),
            404,
        )
        assert "no snapshot" in body["error"]

    def test_bad_dc_400(self, served):
        base, _ = served
        self.expect_error(
            lambda: post(base, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": -1}),
            400,
        )

    def test_missing_dc_400(self, served):
        base, _ = served
        body = self.expect_error(
            lambda: post(base, "/v1/query", {"snapshot": "main", "op": "cluster"}), 400
        )
        assert "dc" in body["error"]

    def test_bad_op_400(self, served):
        base, _ = served
        self.expect_error(
            lambda: post(base, "/v1/query", {"snapshot": "main", "op": "explode", "dc": 1.0}),
            400,
        )

    def test_missing_body_400_closes_connection(self, served):
        # The unread body would desync a keep-alive socket; the server must
        # end the connection with the error.
        base, _ = served
        request = urllib.request.Request(base + "/v1/query", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert excinfo.value.headers.get("Connection") == "close"

    def test_invalid_json_400(self, served):
        base, _ = served
        request = urllib.request.Request(base + "/v1/query", data=b"{nope")
        body = self.expect_error(lambda: urllib.request.urlopen(request, timeout=30), 400)
        assert "invalid JSON" in body["error"]

    def test_publish_without_points_or_path_400(self, served):
        base, _ = served
        self.expect_error(lambda: post(base, "/v1/snapshots/x", {"index": "ch"}), 400)

    def test_publish_bad_index_name_400(self, served, rng):
        base, _ = served
        self.expect_error(
            lambda: post(base, "/v1/snapshots/x", {
                "points": rng.normal(size=(10, 2)).tolist(), "index": "warp-drive",
            }),
            400,
        )

    def test_delete_unknown_404(self, served):
        base, _ = served
        self.expect_error(lambda: delete(base, "/v1/snapshots/ghost"), 404)

    def test_unexpected_failure_returns_500_not_reset(self, served):
        # e.g. a request racing service shutdown: the client must still get
        # an HTTP status, never a bare connection reset.
        base, service = served
        service.coalescer.close()
        body = self.expect_error(
            lambda: post(base, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": 0.5}),
            500,
        )
        assert "closed" in body["error"]


class TestOverload:
    """Shed/deadline → 503 + Retry-After + typed JSON body; healthz states."""

    def expect_error(self, fn, code):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fn()
        assert excinfo.value.code == code
        return excinfo.value

    def test_shed_returns_503_with_retry_after(self, served):
        base, service = served
        service.coalescer.max_queue = 0  # drain mode: shed every admission
        error = self.expect_error(
            lambda: post(base, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": 0.5}),
            503,
        )
        assert int(error.headers["Retry-After"]) >= 1
        body = json.load(error)
        assert body["type"] == "LoadShedError"
        assert body["retry_after_s"] > 0
        assert "full" in body["error"]

    def test_healthz_reports_shedding_state(self, served):
        base, service = served
        service.coalescer.max_queue = 0
        out = get(base, "/healthz")
        assert out["status"] == "shedding"
        assert out["health"]["state"] == "shedding"
        service.coalescer.max_queue = None
        assert get(base, "/healthz")["status"] == "ok"

    def test_expired_deadline_returns_503(self, served):
        from repro import faults
        from repro.faults import FaultPlan, FaultSpec

        base, _ = served
        plan = FaultPlan(
            [FaultSpec("coalescer.dispatch", mode="sleep", times=1, delay_s=0.2)]
        )
        with faults.inject(plan):
            error = self.expect_error(
                lambda: post(base, "/v1/query", {
                    "snapshot": "main", "op": "cluster", "dc": 0.9,
                    "timeout_s": 0.05, "use_cache": False,
                }),
                503,
            )
        assert "Retry-After" in error.headers
        assert json.load(error)["type"] == "DeadlineExceededError"


class TestSerialize:
    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError, match="cannot serialise"):
            serialize_value(object())


class TestCLIServe:
    def test_build_server_and_query(self, tmp_path, blobs):
        import argparse

        from repro.__main__ import build_server

        csv = tmp_path / "points.csv"
        np.savetxt(csv, blobs, delimiter=",")
        args = argparse.Namespace(
            input=str(csv), delimiter=",", dataset=None, n=None, profile="test",
            load=None, index="grid", snapshot="cli", tau=None, bin_width=None,
            backend="serial", n_jobs=None, chunk_size=None,
            host="127.0.0.1", port=0, dispatch="coalesce", max_batch=16,
            linger_ms=1.0, cache_entries=16, cache_ttl=None, verbose=False, seed=0,
        )
        service, server, snapshot = build_server(args)
        try:
            assert snapshot.name == "cli"
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address
            out = post(f"http://{host}:{port}", "/v1/query", {
                "snapshot": "cli", "op": "cluster", "dc": 0.5, "n_centers": 3,
            })
            reference = make_index("grid").fit(blobs).cluster(0.5, n_centers=3)
            assert out["labels"] == reference.labels.tolist()
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_load_applies_execution_flags(self, blobs, tmp_path):
        """--backend/--n-jobs must reach a --load'ed index: persistence
        deliberately drops execution config, so the CLI re-applies it."""
        import argparse

        from repro.__main__ import build_server

        path = str(tmp_path / "x.npz")
        save_index(make_index("kdtree").fit(blobs), path)
        args = argparse.Namespace(
            input=None, delimiter=",", dataset=None, n=None, profile="test",
            load=path, index="ch", snapshot="x", tau=None, bin_width=None,
            backend="threads", n_jobs=2, chunk_size=64,
            host="127.0.0.1", port=0, dispatch="serial", max_batch=1,
            linger_ms=0.0, cache_entries=0, cache_ttl=None, verbose=False, seed=0,
        )
        service, server, snapshot = build_server(args)
        try:
            assert snapshot.index.backend == "threads"
            assert snapshot.index.n_jobs == 2
            assert snapshot.index.chunk_size == 64
        finally:
            server.server_close()
            service.close()

    def test_load_conflicts_with_dataset(self, blobs, tmp_path):
        import argparse

        from repro.__main__ import build_server

        path = str(tmp_path / "x.npz")
        save_index(make_index("kdtree").fit(blobs), path)
        args = argparse.Namespace(
            input=None, delimiter=",", dataset="s1", n=None, profile="test",
            load=path, index="ch", snapshot="x", tau=None, bin_width=None,
            backend="serial", n_jobs=None, chunk_size=None,
            host="127.0.0.1", port=0, dispatch="serial", max_batch=1,
            linger_ms=0.0, cache_entries=0, cache_ttl=None, verbose=False, seed=0,
        )
        with pytest.raises(SystemExit, match="--load"):
            build_server(args)

    def test_serve_parser_registered(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["serve", "--port", "not-a-number"])
