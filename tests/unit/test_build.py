"""Unit tests for the bulk FlatTree builders (repro.indexes.build)."""

import numpy as np
import pytest

from repro.indexes.build import (
    _stable_argsort,
    bulk_build_kdtree,
    bulk_build_quadtree,
    bulk_build_str,
    tree_from_flat,
)
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.kernels import FlatTree, flatten_tree
from repro.indexes.persist import load_index, save_index
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.treebase import TreeNode

from tests.conftest import assert_quantities_equal


@pytest.fixture
def tie_heavy():
    r = np.random.default_rng(11)
    lattice = r.integers(0, 4, size=(60, 2)).astype(np.float64)
    dups = np.tile([[1.5, 2.5]], (30, 1))
    return np.concatenate([lattice, dups, r.normal(size=(40, 2))])


def assert_flat_well_formed(flat, points):
    """Structural invariants every FlatTree image must satisfy."""
    n = len(points)
    assert flat.nc[0] == n
    assert flat.levels[0] == (0, 1)
    assert flat.n_nodes == flat.levels[-1][1]
    # every point in exactly one leaf
    assert sorted(flat.leaf_ids.tolist()) == list(range(n))
    # children contiguous, counts consistent, parents correct
    for i in range(flat.n_nodes):
        cc = int(flat.child_count[i])
        if cc:
            cs = int(flat.child_start[i])
            assert flat.nc[cs : cs + cc].sum() == flat.nc[i]
            assert (flat.parent[cs : cs + cc] == i).all()
            for j in range(cs, cs + cc):
                assert (flat.lo[j] >= flat.lo[i] - 1e-12).all()
                assert (flat.hi[j] <= flat.hi[i] + 1e-12).all()
        else:
            ids = flat.leaf_ids[
                flat.leaf_start[i] : flat.leaf_start[i] + flat.leaf_size[i]
            ]
            assert len(ids) == flat.nc[i]
            if len(ids):
                pts = points[ids]
                assert (pts >= flat.lo[i] - 1e-12).all()
                assert (pts <= flat.hi[i] + 1e-12).all()
    # levels partition the id space and children always live one level down
    spans = [tuple(level) for level in flat.levels]
    assert spans[0][0] == 0
    for (a, b), (c, d) in zip(spans, spans[1:]):
        assert b == c


class TestBuilders:
    def test_str_image_well_formed(self, tie_heavy):
        flat = bulk_build_str(tie_heavy, max_entries=6)
        assert_flat_well_formed(flat, tie_heavy)

    def test_kdtree_image_well_formed(self, tie_heavy):
        flat = bulk_build_kdtree(tie_heavy, leaf_size=8)
        assert_flat_well_formed(flat, tie_heavy)

    def test_quadtree_image_well_formed(self, tie_heavy):
        flat = bulk_build_quadtree(tie_heavy, capacity=8, max_depth=32)
        assert_flat_well_formed(flat, tie_heavy)

    def test_kdtree_median_split_balanced(self):
        pts = np.random.default_rng(0).normal(size=(257, 3))
        flat = bulk_build_kdtree(pts, leaf_size=4)
        for i in range(flat.n_nodes):
            if flat.child_count[i] == 2:
                cs = int(flat.child_start[i])
                left, right = flat.nc[cs], flat.nc[cs + 1]
                assert abs(left - right) <= 1
            elif flat.child_count[i] == 0:
                # leaves over capacity only for zero-extent (duplicate) cells
                if flat.nc[i] > 4:
                    assert (flat.lo[i] == flat.hi[i]).all()

    def test_kdtree_boxes_tight(self):
        pts = np.random.default_rng(1).normal(size=(200, 2))
        flat = bulk_build_kdtree(pts, leaf_size=16)
        index = KDTreeIndex(build="bulk", leaf_size=16).fit(pts)
        for node in index.root.iter_nodes():
            if node.is_leaf and len(node.ids):
                np.testing.assert_allclose(node.lo, pts[node.ids].min(axis=0))
                np.testing.assert_allclose(node.hi, pts[node.ids].max(axis=0))
        assert flat.n_nodes == index.node_count()

    def test_quadtree_duplicates_terminate_at_max_depth(self):
        pts = np.tile([[1.0, 2.0]], (50, 1))
        flat = bulk_build_quadtree(pts, capacity=4, max_depth=7)
        assert flat.nc[0] == 50
        assert len(flat.levels) <= 8  # root + max_depth

    def test_quadtree_denormal_extent_falls_back(self):
        """Regression: a denormal-scale extent underflows the depth-D cell
        width to zero, leaving no usable Morton lattice; the bulk path must
        decline rather than emit leaves whose boxes exclude their points."""
        pts = np.array(
            [[0.0, 0.0], [1e-315, 5e-316], [5e-316, 1e-315], [2e-315, 0.0]]
        ).repeat(4, axis=0)
        assert bulk_build_quadtree(pts, capacity=1, max_depth=32) is None
        index = QuadtreeIndex(capacity=1).fit(pts)
        assert index.build_ == "objects"
        for node in index.root.iter_nodes():
            if node.is_leaf and len(node.ids):
                assert (pts[node.ids] >= node.lo).all()
                assert (pts[node.ids] <= node.hi).all()

    def test_quadtree_max_depth_beyond_morton_falls_back(self):
        assert bulk_build_quadtree(np.zeros((4, 2)), 1, 33) is None
        index = QuadtreeIndex(max_depth=40, capacity=1).fit(
            np.random.default_rng(2).normal(size=(30, 2))
        )
        assert index.build_ == "objects"

    def test_str_single_leaf_root(self):
        pts = np.random.default_rng(3).normal(size=(5, 2))
        flat = bulk_build_str(pts, max_entries=8)
        assert flat.n_nodes == 1
        assert flat.leaf_size[0] == 5

    def test_str_higher_dimensions(self):
        pts = np.random.default_rng(4).normal(size=(300, 4))
        a = RTreeIndex(build="objects", max_entries=5).fit(pts)
        b = RTreeIndex(build="bulk", max_entries=5).fit(pts)
        fa, fb = flatten_tree(a.root), b._flat_tree()
        for name in FlatTree.ARRAY_FIELDS:
            np.testing.assert_array_equal(getattr(fa, name), getattr(fb, name))

    def test_sort_within_segments_with_real_infs_behind_pads(self):
        """Regression: introsort may scramble a real +inf behind the pads of
        a short row; the repair must pull every real entry back in front."""
        from repro.indexes.build import _sort_within_segments

        r = np.random.default_rng(9)
        vals = r.normal(size=160)
        vals[100:130] = np.inf  # second (short) segment: 30 real +inf values
        starts = np.array([0, 100], dtype=np.int64)
        sizes = np.array([100, 60], dtype=np.int64)
        perm = np.arange(160, dtype=np.int64)
        expected = perm.copy()
        for s, z in zip(starts, sizes):
            expected[s : s + z] = s + np.argsort(vals[s : s + z], kind="stable")
        _sort_within_segments(perm, starts, sizes, vals)
        np.testing.assert_array_equal(perm, expected)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # inf-inf centres
    def test_str_identity_with_inf_coordinates(self):
        """fit() must not crash (or silently drop points) on +-inf coords."""
        r = np.random.default_rng(10)
        pts = r.normal(size=(400, 2))
        pts[350:390, 1] = np.inf
        pts[390:, 1] = -np.inf
        a = RTreeIndex(build="objects", max_entries=8).fit(pts)
        b = RTreeIndex(build="bulk", max_entries=8).fit(pts)
        fa, fb = flatten_tree(a.root), b._flat_tree()
        for name in FlatTree.ARRAY_FIELDS:
            np.testing.assert_array_equal(getattr(fa, name), getattr(fb, name))

    def test_stable_argsort_matches_numpy(self):
        r = np.random.default_rng(5)
        for arr in (
            r.normal(size=1000),
            np.repeat(r.normal(size=20), 50),
            np.zeros(64),
            np.array([0.0, -0.0, 1.0, -0.0, 0.0]),
            r.integers(0, 3, size=500).astype(float),
        ):
            np.testing.assert_array_equal(
                _stable_argsort(arr), np.argsort(arr, kind="stable")
            )


class TestTreeFromFlat:
    def test_round_trip_through_flatten(self, tie_heavy):
        flat = bulk_build_kdtree(tie_heavy, leaf_size=8)
        root = tree_from_flat(flat)
        again = flatten_tree(root)
        for name in FlatTree.ARRAY_FIELDS:
            np.testing.assert_array_equal(getattr(flat, name), getattr(again, name))
        assert flat.nodes is not None  # annotation scatter list filled

    def test_scalar_fast_path_boxes_filled(self, tie_heavy):
        index = QuadtreeIndex(capacity=8).fit(tie_heavy)
        root = index.root  # materialise
        assert root.lo_t is not None and root.hi_t is not None


class TestIterativeTreeNodeOps:
    """Regression: recursion-limit safety of finalize_counts/height."""

    @staticmethod
    def _chain(depth):
        leaf = TreeNode(np.zeros(2), np.ones(2), ids=np.array([0], dtype=np.int64))
        node = leaf
        for _ in range(depth):
            node = TreeNode(np.zeros(2), np.ones(2), children=[node])
        return node

    def test_deep_chain_finalize_and_height(self):
        # Far beyond the default recursion limit; the recursive versions die.
        root = self._chain(5000)
        assert root.finalize_counts() == 1
        assert root.height() == 5001

    def test_ascending_coordinate_stream_dynamic_rtree(self):
        """The adversarial dynamic-insertion order from the issue: a stream
        of strictly ascending coordinates fed point by point.  Dynamic
        packing has no delta image, so every ``add_points`` takes the
        refit fallback — re-finalizing the degenerate tree constantly."""
        pts = np.stack([np.arange(300.0), np.arange(300.0) * 2.0], axis=1)
        index = RTreeIndex(packing="dynamic").fit(pts[:1])
        for p in pts[1:]:
            index.add_points(p[None, :])
            assert index.delta_size == 0  # refit fallback, no side image
        assert index.build_ == "objects"
        assert index.n == len(pts)
        from repro.core.baseline import naive_quantities

        assert_quantities_equal(
            naive_quantities(pts, 5.0), index.quantities(5.0)
        )


class TestPersistedFlatImage:
    @pytest.mark.parametrize("family", (RTreeIndex, KDTreeIndex, QuadtreeIndex))
    def test_round_trip_skips_rebuild_and_matches_fresh_flatten(
        self, family, tie_heavy, tmp_path
    ):
        index = family().fit(tie_heavy)
        path = tmp_path / "tree.npz"
        save_index(index, str(path))
        loaded = load_index(str(path))
        assert loaded._flat is not None  # image restored...
        assert loaded._root is None  # ...without building any object graph
        assert loaded.build_ == "bulk"
        # the loaded image equals a fresh build of the stored points
        fresh = family().fit(tie_heavy)._flat_tree()
        for name in FlatTree.ARRAY_FIELDS:
            np.testing.assert_array_equal(
                getattr(loaded._flat, name), getattr(fresh, name), err_msg=name
            )
        assert [tuple(l) for l in loaded._flat.levels] == [
            tuple(l) for l in fresh.levels
        ]
        dc = 1.0
        assert_quantities_equal(index.quantities(dc), loaded.quantities(dc))

    def test_fingerprint_unchanged_by_build_mode_and_round_trip(
        self, tie_heavy, tmp_path
    ):
        bulk = RTreeIndex(build="bulk").fit(tie_heavy)
        objects = RTreeIndex(build="objects").fit(tie_heavy)
        assert bulk.fingerprint() == objects.fingerprint()
        path = tmp_path / "tree.npz"
        save_index(bulk, str(path))
        assert load_index(str(path)).fingerprint() == bulk.fingerprint()

    def test_tampered_flat_arrays_rejected_on_load(self, tie_heavy, tmp_path):
        """The point fingerprint cannot cover arrays loaded verbatim; the
        flat image carries its own digest, verified on load."""
        index = RTreeIndex().fit(tie_heavy)
        path = tmp_path / "tree.npz"
        save_index(index, str(path))
        with np.load(str(path), allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
        payload["flatleaf_ids"] = payload["flatleaf_ids"][::-1].copy()
        np.savez_compressed(str(tmp_path / "evil.npz"), **payload)
        with pytest.raises(ValueError, match="digest mismatch"):
            load_index(str(tmp_path / "evil.npz"))
        # stripping the digest must not bypass the check either
        import json

        meta = json.loads(str(payload["meta"]))
        del meta["flat"]["digest"]
        payload["meta"] = json.dumps(meta)
        np.savez_compressed(str(tmp_path / "evil2.npz"), **payload)
        with pytest.raises(ValueError, match="no integrity digest"):
            load_index(str(tmp_path / "evil2.npz"))

    def test_objects_built_tree_persists_its_image_too(self, tie_heavy, tmp_path):
        index = RTreeIndex(build="objects").fit(tie_heavy)
        path = tmp_path / "tree.npz"
        save_index(index, str(path))
        loaded = load_index(str(path))
        assert loaded._flat is not None
        assert loaded.build_ == "objects"  # records what built the image
        dc = 1.0
        assert_quantities_equal(index.quantities(dc), loaded.quantities(dc))
