"""Unit tests for the uniform grid index (extension)."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.indexes.grid import GridIndex

from tests.conftest import assert_quantities_equal, safe_dc


@pytest.fixture
def fitted(blobs):
    return GridIndex(cell_size=0.5).fit(blobs)


class TestStructure:
    def test_every_point_in_exactly_one_cell(self, fitted, blobs):
        assert len(fitted._ids) == len(blobs)
        assert len(np.unique(fitted._ids)) == len(blobs)

    def test_cell_assignment_consistent(self, fitted, blobs):
        nx, ny = fitted._shape
        w = fitted.cell_size
        for p in range(0, len(blobs), 31):
            flat = int(fitted._cell_of[p])
            ix, iy = divmod(flat, ny)
            clo, chi = fitted._cell_box(ix, iy)
            assert (blobs[p] >= clo - 1e-9).all()
            assert (blobs[p] <= chi + 1e-9).all()

    def test_occupied_cells_positive(self, fitted):
        assert 0 < fitted.occupied_cells() <= fitted._shape[0] * fitted._shape[1]

    def test_auto_cell_size(self, blobs):
        index = GridIndex(target_occupancy=8).fit(blobs)
        assert index.cell_size is None  # configured stays auto
        assert index.cell_size_ > 0

    def test_auto_cell_size_re_resolved_on_refit(self, blobs):
        index = GridIndex(target_occupancy=8).fit(blobs)
        first = index.cell_size_
        index.fit(blobs * 25.0)
        assert index.cell_size_ == pytest.approx(first * 25.0)

    @pytest.mark.parametrize("axis", [0, 1])
    def test_auto_cell_size_on_collinear_data(self, axis):
        """Degenerate extent must not explode the cell grid (regression:
        the pure-area formula produced ~1e-150 cells and an overflow)."""
        pts = np.zeros((40, 2))
        pts[:, axis] = np.arange(40, dtype=float)
        pts[:, 1 - axis] = 3.25
        index = GridIndex().fit(pts)
        nx, ny = index._shape
        assert nx * ny <= len(pts)
        assert_quantities_equal(naive_quantities(pts, 2.5), index.quantities(2.5))

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex(cell_size=0.0)
        with pytest.raises(ValueError, match="target_occupancy"):
            GridIndex(target_occupancy=0)
        with pytest.raises(ValueError, match="rectangle bounds"):
            GridIndex(metric="haversine")

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            GridIndex().fit(np.zeros((10, 3)))


class TestQueries:
    def test_matches_naive(self, blobs, fitted):
        for dc in (0.2, 0.5, safe_dc(blobs, 0.4)):
            assert_quantities_equal(
                naive_quantities(blobs, dc), fitted.quantities(dc)
            )

    def test_dc_spanning_many_cells(self, blobs, fitted):
        base = naive_quantities(blobs, 3.0)
        assert_quantities_equal(base, fitted.quantities(3.0))

    def test_dc_larger_than_grid(self, blobs, fitted):
        base = naive_quantities(blobs, 100.0)
        assert_quantities_equal(base, fitted.quantities(100.0))

    def test_tiny_cells(self, blobs):
        index = GridIndex(cell_size=0.05).fit(blobs)
        assert_quantities_equal(
            naive_quantities(blobs, 0.3), index.quantities(0.3)
        )

    def test_one_cell_grid(self, rng):
        pts = rng.uniform(0, 0.1, size=(50, 2))
        index = GridIndex(cell_size=10.0).fit(pts)
        assert index._shape == (1, 1)
        assert_quantities_equal(naive_quantities(pts, 0.02), index.quantities(0.02))

    def test_strict_mode(self, blobs, fitted):
        base = naive_quantities(blobs, 0.5, tie_break="strict")
        assert_quantities_equal(base, fitted.quantities(0.5, tie_break="strict"))

    def test_stats_counters_move(self, blobs, fitted):
        fitted.reset_stats()
        fitted.quantities(0.5)
        stats = fitted.stats()
        assert stats.nodes_visited > 0
        assert stats.distance_evals > 0
        assert stats.nodes_pruned_density > 0

    def test_memory_linear(self, fitted, blobs):
        assert 0 < fitted.memory_bytes() < len(blobs) * 200
