"""Unit tests for StreamingDPC (amortised-rebuild streaming clustering)."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.extras.streaming import StreamingDPC
from repro.indexes.kdtree import KDTreeIndex

from tests.conftest import assert_quantities_equal


@pytest.fixture
def stream_batches(rng):
    """Ten batches drifting between two blob regions."""
    batches = []
    for i in range(10):
        center = [0.0, 0.0] if i % 2 == 0 else [5.0, 5.0]
        batches.append(rng.normal(center, 0.4, size=(40, 2)))
    return batches


class TestIngestion:
    def test_counts(self, stream_batches):
        s = StreamingDPC()
        for batch in stream_batches:
            s.add(batch)
        assert s.n == 400

    def test_single_point_add(self):
        s = StreamingDPC(min_buffer=4)
        s.add(np.array([1.0, 2.0]))
        s.add(np.array([[2.0, 3.0], [3.0, 4.0]]))
        assert s.n == 3

    def test_amortised_rebuild_count(self, stream_batches):
        s = StreamingDPC(rebuild_factor=0.5, min_buffer=16)
        for batch in stream_batches:
            s.add(batch)
        # Geometric rebuilding: far fewer rebuilds than batches.
        assert s.rebuild_count <= 6

    def test_dimension_mismatch(self, stream_batches):
        s = StreamingDPC()
        s.add(stream_batches[0])
        with pytest.raises(ValueError, match="dimension mismatch"):
            s.add(np.zeros((3, 3)))

    def test_empty_stream_queries_raise(self):
        s = StreamingDPC()
        with pytest.raises(ValueError, match="empty"):
            s.quantities(0.5)
        with pytest.raises(ValueError, match="empty"):
            s.points()

    def test_validation(self):
        with pytest.raises(ValueError, match="rebuild_factor"):
            StreamingDPC(rebuild_factor=0.0)
        with pytest.raises(ValueError, match="min_buffer"):
            StreamingDPC(min_buffer=0)


class TestExactness:
    def test_quantities_match_batch_at_every_step(self, stream_batches):
        """The streaming answer equals a from-scratch run after each batch."""
        s = StreamingDPC(rebuild_factor=1.0, min_buffer=8)
        seen = []
        for batch in stream_batches[:5]:
            s.add(batch)
            seen.append(batch)
            points = s.points()
            expected = naive_quantities(points, 0.8)
            got = s.quantities(0.8)
            assert_quantities_equal(expected, got)

    def test_buffered_and_rebuilt_paths_agree(self, stream_batches):
        buffered = StreamingDPC(rebuild_factor=100.0, min_buffer=1_000_000)
        eager = StreamingDPC(rebuild_factor=0.0001, min_buffer=1)
        for batch in stream_batches[:4]:
            buffered.add(batch)
            eager.add(batch)
        assert buffered.n_buffered > 0  # still un-indexed
        assert eager.n_buffered == 0  # always folded
        a = buffered.quantities(0.8)
        b = eager.quantities(0.8)
        assert_quantities_equal(a, b)

    def test_custom_index_factory(self, stream_batches):
        s = StreamingDPC(index_factory=lambda: KDTreeIndex(leaf_size=8))
        for batch in stream_batches[:3]:
            s.add(batch)
        got = s.quantities(0.8)
        expected = naive_quantities(s.points(), 0.8)
        assert_quantities_equal(expected, got)


class TestClustering:
    def test_cluster_over_stream(self, stream_batches):
        s = StreamingDPC()
        for batch in stream_batches:
            s.add(batch)
        result = s.cluster(0.8, n_centers=2)
        assert result.n_clusters == 2
        sizes = np.bincount(result.labels)
        assert min(sizes) > 150  # both blob regions found

    def test_cluster_folds_buffer(self, stream_batches):
        s = StreamingDPC(rebuild_factor=100.0, min_buffer=1_000_000)
        for batch in stream_batches[:4]:
            s.add(batch)
        assert s.n_buffered > 0
        result = s.cluster(0.8, n_centers=2)
        assert s.n_buffered == 0
        assert len(result.labels) == s.n
