"""Observability over HTTP: /metrics, /trace/<id>, X-Trace-Id, obs lifecycle.

The acceptance-path test of the PR: a single served query must return an
``X-Trace-Id`` whose ``/trace/<id>`` tree shows the coalescer → quantities
→ parallel chain with monotonic non-negative durations, and ``/metrics``
must expose the key serving instruments in parseable Prometheus text.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import parse_prometheus
from repro.serving.http import make_server
from repro.serving.service import ClusteringService


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs_metrics.REGISTRY.reset()
    obs_trace.reset()
    yield
    obs.disable()
    obs_metrics.REGISTRY.reset()
    obs_trace.reset()


@pytest.fixture
def served(blobs):
    """A live observed server over one snapshot; yields the base URL."""
    with ClusteringService(linger_ms=1.0) as service:
        server = make_server(service)  # enables obs before the fit below
        service.fit_snapshot("main", blobs, index="kdtree")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()


def get_raw(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.read().decode(), dict(response.headers)


def post_raw(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read()), dict(response.headers)


def span_names(node, acc=None):
    acc = [] if acc is None else acc
    acc.append(node["name"])
    for child in node["children"]:
        span_names(child, acc)
    return acc


class TestServerObsLifecycle:
    def test_server_enables_obs_and_restores_on_close(self, blobs):
        assert not obs.enabled()
        with ClusteringService() as service:
            server = make_server(service)
            assert obs.enabled()
            server.server_close()
        assert not obs.enabled()

    def test_observability_false_keeps_obs_off(self, blobs):
        with ClusteringService() as service:
            server = make_server(service, observability=False)
            assert not obs.enabled()
            server.server_close()

    def test_already_enabled_obs_survives_server_close(self, blobs):
        obs.enable()
        with ClusteringService() as service:
            server = make_server(service)
            server.server_close()
        assert obs.enabled()

    def test_failed_bind_raises_oserror_not_attributeerror(self, blobs):
        """socketserver calls server_close() on a failed bind — before our
        __init__ body ran; the original OSError must surface untouched."""
        with ClusteringService() as service:
            server = make_server(service)
            host, port = server.server_address
            try:
                with pytest.raises(OSError):
                    from repro.serving.http import ClusteringServer
                    ClusteringServer((host, port), service)
            finally:
                server.server_close()
        assert not obs.enabled()


class TestQueryTracing:
    def test_query_returns_trace_id_and_tree(self, served):
        payload, headers = post_raw(
            served, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": 0.5}
        )
        trace_id = headers.get("X-Trace-Id")
        assert trace_id
        assert payload["trace_id"] == trace_id
        assert payload["meta"]["trace_id"] == trace_id

        body, _ = get_raw(served, f"/trace/{trace_id}")
        tree = json.loads(body)["trace"]
        names = span_names(tree)
        # The acceptance chain: request → coalescer → engine → execution.
        assert names[0] == "serve.request"
        assert "coalescer.dispatch" in names
        assert "engine.quantities" in names
        assert "parallel.tasks" in names
        assert "engine.assign" in names

        def check_durations(node):
            assert node["duration_ns"] >= 0
            assert node["offset_ns"] >= 0
            for child in node["children"]:
                # A child never starts before its parent.
                assert child["offset_ns"] >= node["offset_ns"]
                check_durations(child)

        check_durations(tree)
        assert tree["attrs"]["outcome"] == "ok"

    def test_cache_hit_still_returns_a_trace(self, served):
        post_raw(served, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": 0.5})
        payload, headers = post_raw(
            served, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": 0.5}
        )
        assert payload["meta"]["cache_hit"] is True
        trace_id = headers["X-Trace-Id"]
        body, _ = get_raw(served, f"/trace/{trace_id}")
        assert json.loads(body)["trace"]["attrs"]["outcome"] == "cache_hit"

    def test_unknown_trace_is_404_with_recent_ids(self, served):
        post_raw(served, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": 0.5})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_raw(served, "/trace/nope")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["recent"]  # the ring buffer is offered for discovery


class TestMetricsEndpoint:
    def test_metrics_parseable_with_key_instruments(self, served):
        for dc in (0.4, 0.5, 0.5):
            post_raw(served, "/v1/query", {"snapshot": "main", "op": "cluster", "dc": dc})
        text, headers = get_raw(served, "/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        samples = parse_prometheus(text)  # raises on any malformed line
        # Serving pillar.
        assert any(
            labels.get("op") == "cluster" and labels.get("outcome") == "ok"
            for labels, _ in samples["repro_serving_requests_total"]
        )
        assert samples["repro_serving_request_seconds_count"][0][1] >= 3
        assert "repro_serving_queue_depth" in samples
        # Coalescer + cache pillars.
        assert samples["repro_coalescer_batches_total"][0][1] >= 1
        events = {labels["event"] for labels, _ in samples["repro_cache_ops_total"]}
        assert {"miss", "hit"} <= events
        # Engine + parallel pillars.
        phases = {labels["phase"] for labels, _ in samples["repro_engine_phase_seconds_count"]}
        assert {"rho", "delta", "assign"} <= phases
        assert "repro_parallel_tasks_total" in samples
        assert samples["repro_snapshot_swaps_total"][0][1] >= 1

    def test_stats_endpoint_still_works_with_obs_on(self, served):
        body, _ = get_raw(served, "/v1/stats")
        stats = json.loads(body)
        assert "coalescer" in stats and "health" in stats
