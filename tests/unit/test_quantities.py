"""Unit tests for DensityOrder, DPCQuantities, DPCResult and tie-breaking."""

import numpy as np
import pytest

from repro.core.quantities import (
    NO_NEIGHBOR,
    DensityOrder,
    DPCQuantities,
    DPCResult,
    TieBreak,
)


class TestTieBreak:
    def test_coerce_from_string(self):
        assert TieBreak.coerce("id") is TieBreak.ID
        assert TieBreak.coerce("strict") is TieBreak.STRICT

    def test_coerce_passthrough(self):
        assert TieBreak.coerce(TieBreak.ID) is TieBreak.ID

    def test_coerce_invalid(self):
        with pytest.raises(ValueError, match="tie_break"):
            TieBreak.coerce("fuzzy")


class TestDensityOrderId:
    def test_order_is_density_descending(self):
        rho = np.array([3, 1, 4, 1, 5])
        order = DensityOrder(rho)
        np.testing.assert_array_equal(order.order, [4, 2, 0, 1, 3])

    def test_ties_broken_by_smaller_id(self):
        rho = np.array([2, 2, 2])
        order = DensityOrder(rho)
        np.testing.assert_array_equal(order.order, [0, 1, 2])
        assert order.is_denser(0, 1)
        assert not order.is_denser(1, 0)

    def test_rank_is_inverse_permutation(self):
        rho = np.array([3, 1, 4, 1, 5])
        order = DensityOrder(rho)
        np.testing.assert_array_equal(order.order[order.rank], np.arange(5))

    def test_denser_mask_matches_scalar(self):
        rho = np.array([2, 5, 2, 7, 2])
        order = DensityOrder(rho)
        candidates = np.array([0, 1, 2, 3, 4])
        for p in range(5):
            mask = order.denser_mask(p, candidates)
            expected = [order.is_denser(int(q), p) for q in candidates]
            np.testing.assert_array_equal(mask, expected)

    def test_single_global_peak(self):
        order = DensityOrder(np.array([4, 4, 1]))
        np.testing.assert_array_equal(order.global_peaks(), [0])

    def test_node_may_contain_denser_keeps_equality(self):
        order = DensityOrder(np.array([3, 3, 1]))
        # A node whose maxrho equals rho(p) may hold a tied, smaller-id object.
        assert order.node_may_contain_denser(1, node_maxrho=3)
        assert not order.node_may_contain_denser(1, node_maxrho=2)


class TestDensityOrderStrict:
    def test_all_maximal_objects_are_peaks(self):
        order = DensityOrder(np.array([4, 4, 1]), tie_break="strict")
        np.testing.assert_array_equal(order.global_peaks(), [0, 1])

    def test_ties_not_denser(self):
        order = DensityOrder(np.array([2, 2]), tie_break="strict")
        assert not order.is_denser(0, 1)
        assert not order.is_denser(1, 0)

    def test_rejects_2d_rho(self):
        with pytest.raises(ValueError, match="1-D"):
            DensityOrder(np.zeros((2, 2)))


class TestDPCQuantities:
    def _make(self, n=4, dc=1.0):
        rho = np.arange(n)
        return DPCQuantities(
            dc=dc,
            rho=rho,
            delta=np.ones(n),
            mu=np.full(n, NO_NEIGHBOR),
            density_order=DensityOrder(rho),
        )

    def test_len(self):
        assert len(self._make(5)) == 5

    def test_gamma(self):
        q = self._make(3)
        np.testing.assert_array_equal(q.gamma, [0.0, 1.0, 2.0])

    def test_rejects_nonpositive_dc(self):
        with pytest.raises(ValueError, match="dc must be positive"):
            self._make(dc=0.0)

    def test_rejects_mismatched_lengths(self):
        rho = np.arange(3)
        with pytest.raises(ValueError, match="inconsistent lengths"):
            DPCQuantities(
                dc=1.0,
                rho=rho,
                delta=np.ones(2),
                mu=np.zeros(3),
                density_order=DensityOrder(rho),
            )


class TestDPCResult:
    def _result(self, halo=None):
        rho = np.array([5, 3, 3, 1])
        q = DPCQuantities(
            dc=1.0,
            rho=rho,
            delta=np.array([9.0, 1.0, 8.0, 1.0]),
            mu=np.array([NO_NEIGHBOR, 0, 0, 2]),
            density_order=DensityOrder(rho),
        )
        return DPCResult(
            quantities=q,
            centers=np.array([0, 2]),
            labels=np.array([0, 0, 1, 1]),
            halo=halo,
        )

    def test_n_clusters_and_sizes(self):
        r = self._result()
        assert r.n_clusters == 2
        np.testing.assert_array_equal(r.cluster_sizes(), [2, 2])

    def test_accessors_delegate(self):
        r = self._result()
        assert r.dc == 1.0
        np.testing.assert_array_equal(r.rho, [5, 3, 3, 1])
        np.testing.assert_array_equal(r.mu, [NO_NEIGHBOR, 0, 0, 2])

    def test_core_mask_without_halo(self):
        assert self._result().core_mask().all()

    def test_core_mask_with_halo(self):
        halo = np.array([False, True, False, True])
        np.testing.assert_array_equal(
            self._result(halo=halo).core_mask(), [True, False, True, False]
        )
