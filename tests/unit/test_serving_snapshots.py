"""SnapshotStore: atomic publish/swap, subscriptions, streaming sources."""

import threading

import numpy as np
import pytest

from repro.extras.streaming import StreamingDPC
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.persist import save_index
from repro.serving.snapshots import SnapshotStore
from repro.serving.service import ClusteringService


@pytest.fixture
def store():
    return SnapshotStore()


class TestPublish:
    def test_fit_and_get(self, store, blobs):
        snapshot = store.fit("a", blobs, index="kdtree")
        assert store.get("a") is snapshot
        assert snapshot.fingerprint == snapshot.index.fingerprint()
        assert snapshot.version == 1
        assert snapshot.n == len(blobs)

    def test_publish_requires_fitted_index(self, store):
        with pytest.raises(ValueError, match="unfitted"):
            store.publish("a", KDTreeIndex())
        with pytest.raises(TypeError, match="DPCIndex"):
            store.publish("a", object())

    def test_swap_replaces_atomically(self, store, blobs):
        first = store.fit("a", blobs, index="kdtree")
        second = store.fit("a", blobs + 1.0, index="kdtree")
        assert store.get("a") is second
        assert second.version > first.version
        assert second.fingerprint != first.fingerprint
        assert not store.is_current(first)
        assert store.is_current(second)

    def test_same_data_same_fingerprint_new_version(self, store, blobs):
        first = store.fit("a", blobs, index="kdtree")
        second = store.fit("a", blobs, index="kdtree")
        assert second.fingerprint == first.fingerprint
        assert second.version > first.version

    def test_load_publishes_persisted_index(self, store, blobs, tmp_path):
        path = str(tmp_path / "x.npz")
        fitted = KDTreeIndex().fit(blobs)
        save_index(fitted, path)
        snapshot = store.load("a", path)
        assert snapshot.fingerprint == fitted.fingerprint()
        np.testing.assert_array_equal(
            snapshot.index.quantities(0.5).rho, fitted.quantities(0.5).rho
        )

    def test_get_unknown_name(self, store):
        with pytest.raises(KeyError, match="no snapshot named"):
            store.get("missing")

    def test_drop(self, store, blobs):
        store.fit("a", blobs, index="grid")
        store.drop("a")
        assert "a" not in store
        store.drop("a")  # idempotent

    def test_names_and_describe(self, store, blobs):
        store.fit("b", blobs, index="grid")
        store.fit("a", blobs, index="kdtree")
        assert store.names() == ("a", "b")
        info = store.describe()
        assert [row["name"] for row in info] == ["a", "b"]
        assert info[0]["index"] == "kdtree"
        assert info[0]["n"] == len(blobs)


class TestSubscriptions:
    def test_swap_notifies_with_old_and_new(self, store, blobs):
        events = []
        store.subscribe(lambda name, new, old: events.append((name, new, old)))
        first = store.fit("a", blobs, index="grid")
        second = store.fit("a", blobs + 1.0, index="grid")
        assert events[0] == ("a", first, None)
        assert events[1] == ("a", second, first)

    def test_drop_notifies(self, store, blobs):
        events = []
        store.subscribe(lambda name, new, old: events.append((name, new, old)))
        snapshot = store.fit("a", blobs, index="grid")
        store.drop("a")
        assert events[-1] == ("a", None, snapshot)

    def test_unsubscribe(self, store, blobs):
        events = []
        unsubscribe = store.subscribe(lambda *args: events.append(args))
        unsubscribe()
        store.fit("a", blobs, index="grid")
        assert events == []

    def test_subscriber_sees_new_snapshot_already_live(self, store, blobs):
        seen = []
        store.subscribe(lambda name, new, old: seen.append(store.get(name) is new))
        store.fit("a", blobs, index="grid")
        store.fit("a", blobs + 1.0, index="grid")
        assert seen == [True, True]


class TestStreamingSource:
    """Satellite: StreamingDPC as a snapshot source (publish-on-rebuild)."""

    def test_rebuild_publishes_new_snapshot(self, blobs):
        with ClusteringService() as service:
            stream = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
            stream.add(blobs[:100])
            first = service.attach_stream("s", stream)
            assert service.store.get("s") is first
            stream.add(blobs[100:])  # crosses the rebuild threshold
            assert stream.rebuild_count >= 2
            current = service.store.get("s")
            assert current is not first
            assert current.n == len(blobs)
            # The published snapshot answers exactly like a fresh index over
            # the full stream (snapshot freshness = last rebuild).
            reference = KDTreeIndex().fit(stream.points())
            np.testing.assert_array_equal(
                current.index.quantities(0.5).rho, reference.quantities(0.5).rho
            )

    def test_attach_empty_stream_rejected(self):
        with ClusteringService() as service:
            with pytest.raises(ValueError, match="empty stream"):
                service.attach_stream("s", StreamingDPC())

    def test_delta_ingest_publishes_fresh_snapshot(self, blobs):
        # Below min_buffer the add stays in the delta segment (no
        # compaction), but the served snapshot still advances: the ingest
        # event publishes a delta snapshot that answers over base + delta.
        with ClusteringService() as service:
            stream = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=10_000)
            stream.add(blobs)
            deltas = []
            service.store.subscribe_deltas(
                lambda name, new, old, pts: deltas.append((name, new, pts))
            )
            first = service.attach_stream("s", stream)
            stream.add(blobs[:3])  # stays in the delta segment: below min_buffer
            assert stream.rebuild_count == 1  # no compaction happened
            current = service.store.get("s")
            assert current is not first
            assert current.n == len(blobs) + 3
            assert len(deltas) == 1
            name, published, pts = deltas[0]
            assert name == "s" and published is current
            np.testing.assert_array_equal(pts, blobs[:3])

    def test_swap_invalidates_cache_entries(self, blobs):
        with ClusteringService() as service:
            stream = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
            stream.add(blobs[:100])
            service.attach_stream("s", stream)
            warm = service.cluster("s", 0.5, n_centers=3)
            assert service.cluster("s", 0.5, n_centers=3).meta["cache_hit"]
            stream.add(blobs[100:])  # rebuild -> swap -> invalidation
            after = service.cluster("s", 0.5, n_centers=3)
            assert not after.meta["cache_hit"]
            assert after.meta["fingerprint"] != warm.meta["fingerprint"]
            assert service.cache.stats.invalidations > 0

    def test_failed_attach_leaves_no_subscription(self, blobs):
        with ClusteringService() as service:
            stream = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
            with pytest.raises(ValueError, match="empty stream"):
                service.attach_stream("s", stream)
            stream.add(blobs)  # a later rebuild must NOT publish "s"
            assert "s" not in service.store

    def test_drop_detaches_stream(self, blobs):
        with ClusteringService() as service:
            stream = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
            stream.add(blobs[:100])
            service.attach_stream("s", stream)
            service.drop_snapshot("s")
            stream.add(blobs[100:])  # rebuild after the drop
            assert "s" not in service.store, "a dropped name must stay dropped"

    def test_close_detaches_stream(self, blobs):
        service = ClusteringService()
        stream = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
        stream.add(blobs[:100])
        service.attach_stream("s", stream)
        service.close()
        before = service.store.get("s")
        stream.add(blobs[100:])
        assert service.store.get("s") is before  # no post-close publishes

    def test_reattach_replaces_previous_stream(self, blobs):
        with ClusteringService() as service:
            old = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
            old.add(blobs[:60])
            service.attach_stream("s", old)
            new = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
            new.add(blobs[:80])
            service.attach_stream("s", new)
            current = service.store.get("s")
            old.add(blobs[60:])  # the replaced stream must stop publishing
            assert service.store.get("s") is current
            assert current.n == 80

    def test_unsubscribe_rebuild(self, blobs):
        stream = StreamingDPC(index_factory=lambda: KDTreeIndex(), min_buffer=8)
        calls = []
        unsubscribe = stream.subscribe_rebuild(lambda index: calls.append(index))
        stream.add(blobs[:50])
        assert len(calls) == 1
        unsubscribe()
        stream.add(blobs[50:])
        assert len(calls) == 1


class TestSwapRace:
    """A slow in-flight computation must not re-populate invalidated entries."""

    def test_inflight_result_not_cached_after_swap(self, blobs):
        with ClusteringService(dispatch="serial") as service:
            first = service.fit_snapshot("a", blobs, index="grid")
            release = threading.Event()
            entered = threading.Event()
            index = first.index
            original = type(index).quantities_multi

            def stalled(self_, dcs, tie_break="id"):
                entered.set()
                assert release.wait(timeout=10.0)
                return original(self_, dcs, tie_break)

            # Stall the engine call for snapshot v1 mid-flight.
            index.quantities_multi = stalled.__get__(index)
            try:
                future = service.submit("a", "cluster", 0.5, n_centers=3)
                assert entered.wait(timeout=10.0)
                # The swap lands while v1's batch is still computing.
                service.fit_snapshot("a", blobs + 1.0, index="grid")
                release.set()
                result = future.result(timeout=10.0)
            finally:
                index.quantities_multi = original.__get__(index)
            # The in-flight request still answers from the snapshot it
            # resolved (point-in-time consistency)...
            assert result.meta["fingerprint"] == first.fingerprint
            # ...but its result was barred from the cache (guard rejected),
            # so no post-swap request can ever see v1 data.
            assert service.cache.stats.rejected_puts >= 1
            fresh = service.cluster("a", 0.5, n_centers=3)
            assert not fresh.meta["cache_hit"]
            assert fresh.meta["fingerprint"] != first.fingerprint
            assert len(service.cache) <= 1  # only the fresh entry, never v1's
