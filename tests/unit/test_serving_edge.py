"""Asyncio edge front-end: route parity, edge policies, drain semantics.

Response *content* parity with the threading front-end is structural (both
serialise through ``serialize_value``); these tests pin the edge-specific
behaviour — admission control, drain refusal with operator routes exempt,
keep-alive connection handling, and error mapping.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.indexes.registry import make_index
from repro.serving.edge import EdgeServer, make_edge_server
from repro.serving.service import ClusteringService


@pytest.fixture
def served(blobs):
    """A live asyncio edge over one published snapshot."""
    with ClusteringService(linger_ms=1.0) as service:
        service.fit_snapshot("main", blobs, index="kdtree")
        server = make_edge_server(service)
        host, port = server.address
        try:
            yield f"http://{host}:{port}", server, service
        finally:
            server.close()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.load(response)


def post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def post_error(base, path, payload):
    """POST expecting a failure status; returns (status, headers, body)."""
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    error = excinfo.value
    return error.code, dict(error.headers), json.load(error)


class TestRoutes:
    def test_healthz_reports_edge_state(self, served):
        base, server, _ = served
        out = get(base, "/healthz")
        assert out["status"] == "ok"
        assert out["snapshots"] == 1
        edge = out["health"]["edge"]
        assert edge["draining"] is False
        assert edge["inflight"] == 0
        assert edge["max_inflight"] is None

    def test_query_bit_identical_through_json(self, served, blobs):
        base, _, _ = served
        out = post(base, "/v1/query", {
            "snapshot": "main", "op": "cluster", "dc": 0.5, "n_centers": 3,
        })
        reference = make_index("kdtree").fit(blobs).cluster(0.5, n_centers=3)
        assert out["labels"] == reference.labels.tolist()
        np.testing.assert_array_equal(np.asarray(out["delta"]), reference.delta)
        assert out["n_clusters"] == reference.n_clusters

    def test_quantities_op(self, served, blobs):
        base, _, _ = served
        out = post(base, "/v1/query", {"snapshot": "main", "op": "quantities", "dc": 0.5})
        reference = make_index("kdtree").fit(blobs).quantities(0.5)
        assert out["mu"] == reference.mu.tolist()
        assert "labels" not in out

    def test_publish_and_delete_snapshot(self, served, rng):
        base, _, _ = served
        points = rng.normal(size=(50, 2))
        published = post(base, "/v1/snapshots/extra", {
            "points": points.tolist(), "index": "grid",
        })["published"]
        assert published["n"] == 50
        out = post(base, "/v1/query", {"snapshot": "extra", "op": "cluster", "dc": 0.8})
        reference = make_index("grid").fit(points).cluster(0.8)
        assert out["labels"] == reference.labels.tolist()
        request = urllib.request.Request(base + "/v1/snapshots/extra", method="DELETE")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert json.load(response)["dropped"] == "extra"

    def test_metrics_exposition(self, served):
        base, _, _ = served
        post(base, "/v1/query", {"snapshot": "main", "op": "quantities", "dc": 0.5})
        with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
            assert "text/plain" in response.headers["Content-Type"]
            text = response.read().decode()
        assert "repro_serving_requests_total" in text

    def test_keep_alive_serves_sequential_requests(self, served):
        base, _, _ = served
        host, port = base[len("http://"):].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
        finally:
            conn.close()


class TestErrorMapping:
    def test_unknown_route_404(self, served):
        base, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_unknown_snapshot_404(self, served):
        base, _, _ = served
        status, _, body = post_error(
            base, "/v1/query", {"snapshot": "ghost", "op": "cluster", "dc": 0.5}
        )
        assert status == 404
        assert "ghost" in body["error"]

    def test_missing_fields_400(self, served):
        base, _, _ = served
        status, _, body = post_error(base, "/v1/query", {"snapshot": "main"})
        assert status == 400
        assert "dc" in body["error"]
        status, _, body = post_error(base, "/v1/query", {"dc": 0.5})
        assert status == 400
        assert "snapshot" in body["error"]

    def test_malformed_json_400(self, served):
        base, _, _ = served
        request = urllib.request.Request(
            base + "/v1/query",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_validation_rejects_bad_max_inflight(self, blobs):
        with ClusteringService(linger_ms=1.0) as service:
            with pytest.raises(ValueError, match="max_inflight"):
                EdgeServer(service, max_inflight=0, observability=False)


class TestEdgePolicies:
    def test_admission_control_sheds_with_retry_after(self, served):
        base, server, _ = served
        server.max_inflight = 1
        server._inflight = 1  # saturate the edge without a wedged backend
        try:
            status, headers, body = post_error(
                base, "/v1/query", {"snapshot": "main", "op": "quantities", "dc": 0.5}
            )
        finally:
            server._inflight = 0
            server.max_inflight = None
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert body["type"] == "LoadShedError"
        assert body["retry_after_s"] > 0
        assert server.stats["shed"] == 1

    def test_draining_refuses_queries_but_serves_operators(self, served):
        base, server, _ = served
        server._draining = True
        try:
            status, headers, body = post_error(
                base, "/v1/query", {"snapshot": "main", "op": "quantities", "dc": 0.5}
            )
            assert status == 503
            assert body["type"] == "ServiceDrainingError"
            assert "Retry-After" in headers
            # Operators keep their eyes while the edge drains.
            health = get(base, "/healthz")
            assert health["health"]["edge"]["draining"] is True
            assert health["status"] == "draining"
            with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
                assert response.status == 200
        finally:
            server._draining = False

    def test_drain_flushes_inflight_and_reports_clean(self, blobs):
        with ClusteringService(linger_ms=20.0) as service:
            service.fit_snapshot("main", blobs, index="kdtree")
            server = make_edge_server(service)
            base = f"http://{server.address[0]}:{server.address[1]}"
            results = []

            def client():
                results.append(
                    post(base, "/v1/query",
                         {"snapshot": "main", "op": "quantities", "dc": 0.5})
                )

            thread = threading.Thread(target=client)
            thread.start()
            # Let the request reach the edge before draining begins.
            deadline = threading.Event()
            deadline.wait(0.05)
            assert server.drain(timeout_s=30.0) is True
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            if results:  # the client may have landed before or during drain
                reference = make_index("kdtree").fit(blobs).quantities(0.5)
                assert results[0]["mu"] == reference.mu.tolist()

    def test_drain_then_connect_is_refused(self, served):
        base, server, _ = served
        assert server.drain(timeout_s=10.0) is True
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(base + "/healthz", timeout=2)
