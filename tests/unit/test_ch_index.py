"""Unit tests for the Cumulative Histogram Index (paper Algorithms 3–4)."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.geometry.distance import get_metric
from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.rn_list import RNCHIndex

from tests.conftest import assert_quantities_equal, safe_dc


def adversarial_edge_pair(seed=0):
    """A (w, dc, d) triple where the *quotient* claims dc sits on a bin edge
    (``dc / w`` is exactly integral) but the *stored* edge ``fl(w·t)`` is a
    different float, and the metric realises a distance ``d`` exactly between
    the two — so trusting the bin value flips a strict ``dist < dc`` count.
    """
    rng = np.random.default_rng(seed)
    metric = get_metric("euclidean")
    while True:
        w = float(rng.uniform(0.05, 2.0))
        t = int(rng.integers(1, 40))
        edge = w * t
        for dc in (float(np.nextafter(edge, np.inf)), float(np.nextafter(edge, -np.inf))):
            if dc <= 0 or w * t == dc or dc / w != float(t):
                continue
            d = min(dc, edge)
            probe = np.array([[0.0, 0.0], [d, 0.0]])
            if metric.cross(probe[:1], probe[1:])[0, 0] == d:
                return w, dc, d


def adversarial_last_edge_pair(seed=0):
    """A (w, dc) pair where dc equals the farthest neighbour's distance AND
    the stored *last* bin edge ``fl(w·k)``, while ``floor(dc/w) == k-1`` —
    so the histogram has exactly ``k`` bins and a careless "dc beyond the
    last bin" shortcut would count the tie at ``dist == dc``.
    """
    rng = np.random.default_rng(seed)
    metric = get_metric("euclidean")
    while True:
        w = float(rng.uniform(0.05, 2.0))
        k = int(rng.integers(2, 40))
        dc = w * k
        if dc <= 0 or int(np.floor(dc / w)) != k - 1:
            continue
        probe = np.array([[0.0, 0.0], [dc, 0.0]])
        if metric.cross(probe[:1], probe[1:])[0, 0] == dc:
            return w, dc


@pytest.fixture
def fitted(blobs):
    return CHIndex(bin_width=0.8).fit(blobs)


class TestHistogramConstruction:
    def test_bins_cover_whole_nlist(self, fitted, blobs):
        """The last bin of every object holds the full list length."""
        n = len(blobs)
        for p in range(0, n, 23):
            start = fitted._hist_offsets[p]
            stop = fitted._hist_offsets[p + 1]
            assert fitted._hist_values[stop - 1] == n - 1

    def test_bins_monotone_nondecreasing(self, fitted, blobs):
        for p in range(0, len(blobs), 23):
            start = fitted._hist_offsets[p]
            stop = fitted._hist_offsets[p + 1]
            values = fitted._hist_values[start:stop]
            assert (np.diff(values) >= 0).all()

    def test_bin_value_equals_count_below_edge(self, fitted, blobs):
        """Bin k stores |{q : dist(p,q) < (k+1)w}| (Algorithm 3 semantics)."""
        w = fitted.bin_width
        for p in (0, 41, 100):
            start = fitted._hist_offsets[p]
            nbins = fitted.n_bins_of(p)
            dists = fitted.neighbor_dists[p]
            for k in range(min(nbins - 1, 5)):
                expected = int((dists < (k + 1) * w).sum())
                assert fitted._hist_values[start + k] == expected

    def test_auto_bin_width(self, blobs):
        index = CHIndex(default_bins=64).fit(blobs)
        # Configured width stays None (auto); the fit resolves bin_width_.
        assert index.bin_width is None
        assert index.bin_width_ is not None and index.bin_width_ > 0
        diameter = index.neighbor_dists[:, -1].max()
        assert index.bin_width_ == pytest.approx(diameter / 64)

    def test_auto_bin_width_re_resolved_on_refit(self, blobs):
        """Refitting on different data must not reuse the first fit's w."""
        index = CHIndex(default_bins=64).fit(blobs)
        w_first = index.bin_width_
        index.fit(blobs * 40.0)  # 40x the diameter => 40x the auto width
        assert index.bin_width is None
        assert index.bin_width_ == pytest.approx(w_first * 40.0)
        base = naive_quantities(blobs * 40.0, 12.0)
        np.testing.assert_array_equal(index.rho_all(12.0), base.rho)

    def test_explicit_bin_width_survives_refit(self, blobs):
        index = CHIndex(bin_width=0.8).fit(blobs)
        index.fit(blobs * 3.0)
        assert index.bin_width == 0.8
        assert index.bin_width_ == 0.8

    def test_smaller_w_means_more_bins(self, blobs):
        coarse = CHIndex(bin_width=1.0).fit(blobs)
        fine = CHIndex(bin_width=0.25).fit(blobs)
        assert fine.n_bins_of(0) > coarse.n_bins_of(0)
        assert fine.histogram_memory_bytes() > coarse.histogram_memory_bytes()

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="bin_width"):
            CHIndex(bin_width=0.0)
        with pytest.raises(ValueError, match="default_bins"):
            CHIndex(default_bins=0)

    def test_coincident_points_rejected_for_auto_w(self):
        pts = np.ones((5, 2))
        with pytest.raises(ValueError, match="coincide"):
            CHIndex().fit(pts)


class TestRhoQuery:
    def test_matches_list_index(self, blobs, fitted):
        list_index = ListIndex().fit(blobs)
        for dc in (0.11, 0.5, 1.7, 4.0, safe_dc(blobs, 0.6)):
            np.testing.assert_array_equal(
                fitted.rho_all(dc), list_index.rho_all(dc), err_msg=f"dc={dc}"
            )

    def test_dc_on_exact_bin_edge(self, blobs):
        """Algorithm 4 line 5-6: dc == k·w answers straight from the bin."""
        index = CHIndex(bin_width=0.5).fit(blobs)
        base = naive_quantities(blobs, 1.0).rho  # dc = 2 * w exactly
        index.reset_stats()
        np.testing.assert_array_equal(index.rho_all(1.0), base)
        assert index.stats().binary_searches == 0  # no section search at all

    def test_dc_beyond_last_bin(self, blobs, fitted):
        assert (fitted.rho_all(1e9) == len(blobs) - 1).all()

    def test_astronomical_dc_answers_fast(self, blobs, fitted):
        """dc/w past 2^52 must stay O(1) (regression: the ulp-correction
        loop in resolve_bin walked the gap one w at a time and hung)."""
        for dc in (1.234e30, 1e200, float(np.finfo(np.float64).max)):
            assert (fitted.rho_all(dc) == len(blobs) - 1).all()

    def test_dc_in_first_bin(self, blobs):
        index = CHIndex(bin_width=5.0).fit(blobs)  # everything in bin 0
        base = naive_quantities(blobs, 0.5).rho
        np.testing.assert_array_equal(index.rho_all(0.5), base)

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_bin_edge_fp_mismatch_regression(self, seed):
        """dc/w exactly integral must not shortcut to the bin value unless
        the stored edge reproduces dc bit-for-bit (strict dist < dc)."""
        w, dc, d = adversarial_edge_pair(seed)
        pts = np.array(
            [
                [0.0, 0.0],
                [d, 0.0],  # exactly between dc and the stored edge fl(w·t)
                [-3.0 * dc, 0.1],
                [d + 3.0 * dc, -0.2],
                [2.0 * dc, 5.0 * dc],
            ]
        )
        base = naive_quantities(pts, dc)
        ch = CHIndex(bin_width=w).fit(pts)
        np.testing.assert_array_equal(ch.rho_all(dc), base.rho)
        rnch = RNCHIndex(tau=20.0 * dc, bin_width=w).fit(pts)
        np.testing.assert_array_equal(rnch.rho_all(dc), base.rho)

    @pytest.mark.parametrize("seed", [0, 11])
    def test_dc_at_stored_last_edge_excludes_ties(self, seed):
        """dc == fl(w·n_bins) with a neighbour at exactly that distance:
        the full-list shortcut must not swallow the strict dist < dc tie."""
        w, dc = adversarial_last_edge_pair(seed)
        pts = np.array([[0.0, 0.0], [dc, 0.0], [dc / 2.0, 0.0]])
        base = naive_quantities(pts, dc)
        ch = CHIndex(bin_width=w).fit(pts)
        np.testing.assert_array_equal(ch.rho_all(dc), base.rho)
        rnch = RNCHIndex(tau=2.0 * dc, bin_width=w).fit(pts)
        np.testing.assert_array_equal(rnch.rho_all(dc), base.rho)

    def test_searches_smaller_sections_than_list(self, blobs):
        """The whole point of CH: far fewer objects touched per ρ query."""
        w = 0.3
        ch = CHIndex(bin_width=w).fit(blobs)
        ch.reset_stats()
        ch.rho_all(0.5)
        scanned_ch = ch.stats().objects_scanned
        # Each section is at most one bin of the N-List; with w=0.3 over this
        # data a bin holds far fewer than n-1 entries.
        assert scanned_ch < len(blobs) * 40


class TestFullPipeline:
    def test_quantities_match_naive(self, blobs, fitted):
        base = naive_quantities(blobs, 0.5)
        assert_quantities_equal(base, fitted.quantities(0.5))

    def test_memory_is_list_plus_histograms(self, blobs, fitted):
        list_bytes = ListIndex().fit(blobs).memory_bytes()
        assert fitted.memory_bytes() == list_bytes + fitted.histogram_memory_bytes()
        assert fitted.histogram_memory_bytes() > 0

    def test_histogram_memory_zero_before_fit(self):
        assert CHIndex().histogram_memory_bytes() == 0
