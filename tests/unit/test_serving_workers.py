"""WorkerPool unit behaviour: lifecycle, failover bookkeeping, drain, health.

The chaos *properties* (bit-identity under storms) live in
``tests/properties/test_prop_serving_replicated.py``; these tests pin the
pool's mechanical contract — validation, stats, image retirement, sticky
degradation, respawn — at unit granularity with one tiny corpus.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.quantities import TieBreak
from repro.indexes.parallel import SHM_PREFIX
from repro.indexes.registry import make_index
from repro.serving.errors import WorkerPoolUnavailableError
from repro.serving.snapshots import SnapshotStore
from repro.serving.workers import WorkerPool

from tests.conftest import safe_dc


def shard_segments():
    try:
        return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def small_corpus(seed=5, n=64):
    r = np.random.default_rng(seed)
    return r.normal(size=(n, 2))


def wait_until(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture
def store():
    return SnapshotStore()


class TestValidation:
    def test_rejects_zero_workers(self, store):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(store, workers=0)

    def test_rejects_nonpositive_heartbeat(self, store):
        with pytest.raises(ValueError, match="heartbeat_s"):
            WorkerPool(store, workers=1, heartbeat_s=0.0)

    def test_rejects_nonpositive_batch_timeout(self, store):
        with pytest.raises(ValueError, match="batch_timeout_s"):
            WorkerPool(store, workers=1, batch_timeout_s=-1.0)


class TestRoundTrip:
    def test_batch_is_bit_identical_and_counted(self, store):
        points = small_corpus()
        snapshot = store.fit("main", points, index="ch")
        dcs = [safe_dc(points, 0.2), safe_dc(points, 0.4)]
        reference = make_index("ch").fit(points).quantities_multi(dcs)
        with WorkerPool(store, workers=1, heartbeat_s=0.05) as pool:
            payload = pool.submit(snapshot, dcs, TieBreak.ID).result(timeout=60.0)
            assert len(payload) == len(dcs)
            for got, want in zip(payload, reference):
                np.testing.assert_array_equal(got.rho, want.rho)
                np.testing.assert_array_equal(got.delta, want.delta)
                np.testing.assert_array_equal(got.mu, want.mu)
            stats = pool.stats_snapshot()
            assert stats["submitted"] == 1
            assert stats["completed"] == 1
            assert stats["failovers"] == 0
            assert stats["images_published"] == 1
            assert len(pool.worker_pids()) == 1

    def test_stats_snapshot_is_a_copy(self, store):
        store.fit("main", small_corpus(), index="ch")
        with WorkerPool(store, workers=1, heartbeat_s=0.05) as pool:
            snap = pool.stats_snapshot()
            snap["submitted"] = 999
            assert pool.stats_snapshot()["submitted"] == 0

    def test_health_rollup_shape(self, store):
        store.fit("main", small_corpus(), index="ch")
        with WorkerPool(store, workers=2, heartbeat_s=0.05) as pool:
            assert wait_until(lambda: len(pool.worker_pids()) == 2)
            health = pool.health()
            assert health["state"] in ("healthy", "degraded")
            assert len(health["workers"]) == 2
            for row in health["workers"]:
                assert row["state"] in ("healthy", "busy", "respawning", "draining")
                assert isinstance(row["pid"], int)
            assert health["pending_batches"] == 0


class TestImageLifecycle:
    def test_swap_retires_the_old_image(self, store):
        before = shard_segments()
        points_v1 = small_corpus(seed=5)
        points_v2 = small_corpus(seed=6)
        snapshot = store.fit("main", points_v1, index="ch")
        dc = safe_dc(points_v1, 0.3)
        with WorkerPool(store, workers=1, heartbeat_s=0.05) as pool:
            pool.submit(snapshot, [dc], TieBreak.ID).result(timeout=60.0)
            assert pool.stats_snapshot()["images_published"] == 1
            swapped = store.fit("main", points_v2, index="ch")
            assert wait_until(
                lambda: pool.stats_snapshot()["images_retired"] == 1
            ), "old content image never retired after the swap"
            dc2 = safe_dc(points_v2, 0.3)
            reference = make_index("ch").fit(points_v2).quantities_multi([dc2])[0]
            got = pool.submit(swapped, [dc2], TieBreak.ID).result(timeout=60.0)[0]
            np.testing.assert_array_equal(got.rho, reference.rho)
            np.testing.assert_array_equal(got.delta, reference.delta)
        assert shard_segments() == before, "pool close leaked shm segments"

    def test_same_content_republish_is_not_retired(self, store):
        points = small_corpus()
        store.fit("main", points, index="ch")
        with WorkerPool(store, workers=1, heartbeat_s=0.05) as pool:
            # Same bytes, same fingerprint: the image must be reused as-is.
            store.fit("main", points, index="ch")
            time.sleep(0.2)
            stats = pool.stats_snapshot()
            assert stats["images_retired"] == 0


class TestDrainAndClose:
    def test_drain_idle_pool_is_clean(self, store):
        store.fit("main", small_corpus(), index="ch")
        pool = WorkerPool(store, workers=1, heartbeat_s=0.05)
        assert pool.drain(timeout_s=10.0) is True
        # Idempotent: draining/closing again is a no-op that stays clean.
        assert pool.drain(timeout_s=1.0) is True
        pool.close()

    def test_submit_after_close_raises_unavailable(self, store):
        snapshot = store.fit("main", small_corpus(), index="ch")
        pool = WorkerPool(store, workers=1, heartbeat_s=0.05)
        pool.close()
        with pytest.raises(WorkerPoolUnavailableError):
            pool.submit(snapshot, [0.5], TieBreak.ID)

    def test_close_releases_every_segment(self, store):
        before = shard_segments()
        snapshot = store.fit("main", small_corpus(), index="ch")
        pool = WorkerPool(store, workers=2, heartbeat_s=0.05)
        pool.submit(snapshot, [safe_dc(small_corpus(), 0.3)], TieBreak.ID).result(
            timeout=60.0
        )
        pool.close()
        assert shard_segments() == before


class TestFailoverMechanics:
    def test_killed_worker_is_respawned_and_pool_recovers(self, store):
        points = small_corpus()
        snapshot = store.fit("main", points, index="ch")
        dc = safe_dc(points, 0.3)
        reference = make_index("ch").fit(points).quantities_multi([dc])[0]
        with WorkerPool(
            store, workers=1, heartbeat_s=0.05, respawn_backoff_s=0.01
        ) as pool:
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            assert wait_until(
                lambda: pool.stats_snapshot()["worker_deaths"] >= 1
            ), "supervisor never noticed the SIGKILL"
            assert wait_until(
                lambda: pool.worker_pids() and pool.worker_pids() != [pid]
            ), "worker never respawned"
            got = pool.submit(snapshot, [dc], TieBreak.ID).result(timeout=60.0)[0]
            np.testing.assert_array_equal(got.rho, reference.rho)
            np.testing.assert_array_equal(got.delta, reference.delta)
            stats = pool.stats_snapshot()
            assert stats["respawns"] >= 1
            assert stats["worker_deaths"] >= 1

    def test_all_workers_down_raises_and_sets_sticky_degradation(self, store):
        snapshot = store.fit("main", small_corpus(), index="ch")
        with WorkerPool(
            store,
            workers=1,
            heartbeat_s=0.05,
            # Park the respawn far away so the down window is observable.
            respawn_backoff_s=30.0,
            respawn_backoff_cap_s=60.0,
        ) as pool:
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            assert wait_until(lambda: not pool.worker_pids())
            with pytest.raises(WorkerPoolUnavailableError):
                pool.submit(snapshot, [0.5], TieBreak.ID)
            assert pool.degraded is not None
            assert pool.health()["state"] == "degraded"
            pool.reset_degradation()
            assert pool.degraded is None
