"""Unit tests for the sharded execution-backend layer (indexes/parallel).

Covers the machinery the property suite treats as a black box: chunk
planning, shared-memory pack round-trips, worker-failure propagation with
leak-free cleanup, refit/shard-plan invalidation, and the persist contract
that backend configuration never enters an index payload.
"""

import os

import numpy as np
import pytest

from repro.geometry.distance import Metric, get_metric
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.parallel import (
    SHM_PREFIX,
    ExecutionBackend,
    ShmPack,
    attach_pack_views,
    metric_from_token,
    metric_token,
    plan_chunks,
    resolve_n_jobs,
)
from repro.indexes.persist import load_index, save_index


def shard_segments():
    """Names of our live shared-memory segments (leak detector)."""
    try:
        return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture
def blobs_small(rng):
    return rng.normal(size=(90, 2))


class TestPlanChunks:
    def test_serial_is_one_chunk(self):
        assert plan_chunks(100, None, 1) == [(0, 100)]

    def test_parallel_default_targets_four_per_worker(self):
        chunks = plan_chunks(100, None, 4)
        assert chunks[0] == (0, 7)
        assert len(chunks) == -(-100 // 7)
        assert chunks[-1][1] == 100

    def test_explicit_chunk_size_wins(self):
        assert plan_chunks(10, 4, 8) == [(0, 4), (4, 8), (8, 10)]

    def test_chunk_size_of_one(self):
        chunks = plan_chunks(3, 1, 2)
        assert chunks == [(0, 1), (1, 2), (2, 3)]

    def test_chunk_size_beyond_n_collapses(self):
        assert plan_chunks(5, 500, 4) == [(0, 5)]

    def test_empty_input(self):
        assert plan_chunks(0, None, 4) == []

    def test_chunks_partition_exactly(self):
        for n in (1, 7, 64, 1000):
            for cs in (None, 1, 3, n, 2 * n):
                for jobs in (1, 3):
                    chunks = plan_chunks(n, cs, jobs)
                    flat = [i for s, e in chunks for i in range(s, e)]
                    assert flat == list(range(n)), (n, cs, jobs)

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(None) >= 1
        assert resolve_n_jobs(0) >= 1


class TestExecutionBackendConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            ExecutionBackend("gpu")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionBackend("threads", chunk_size=0)

    def test_index_constructor_validates_backend(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            ListIndex(backend="bogus")

    def test_set_execution_validates_backend(self, blobs_small):
        index = KDTreeIndex().fit(blobs_small)
        with pytest.raises(ValueError, match="backend must be one of"):
            index.set_execution(backend="bogus")

    def test_serial_backend_ignores_n_jobs(self):
        assert ExecutionBackend("serial", n_jobs=8).n_jobs == 1

    def test_shared_backend_instance_accepted(self, blobs_small):
        backend = ExecutionBackend("threads", n_jobs=2, chunk_size=7)
        a = KDTreeIndex(backend=backend).fit(blobs_small)
        b = ListIndex(backend=backend).fit(blobs_small)
        ref = KDTreeIndex().fit(blobs_small).quantities(0.5)
        got = a.quantities(0.5)
        np.testing.assert_array_equal(ref.rho, got.rho)
        np.testing.assert_array_equal(ref.delta, got.delta)
        # release_execution must NOT shut down a pool it does not own.
        a.release_execution()
        assert b.quantities(0.5) is not None
        backend.shutdown()

    def test_set_execution_away_from_shared_backend_keeps_pool(self, blobs_small):
        """Regression: set_execution used to reassign self.backend before
        the ownership check ran, so switching one index away from a shared
        ExecutionBackend shut down the pool under every other index."""
        backend = ExecutionBackend("threads", n_jobs=2, chunk_size=7)
        a = KDTreeIndex(backend=backend).fit(blobs_small)
        b = ListIndex(backend=backend).fit(blobs_small)
        a.quantities(0.5)
        a.set_execution(backend="serial")
        assert backend._pool is not None  # shared pool survives the switch
        assert b.quantities(0.5) is not None  # and still serves other owners
        backend.shutdown()


class TestShmPack:
    def test_round_trip_and_unlink(self):
        before = shard_segments()
        arrays = {
            "a": np.arange(17, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 7).reshape(1, 7),
            "empty": np.empty(0, dtype=np.int32),
        }
        pack = ShmPack(arrays)
        assert len(shard_segments()) == len(before) + 1
        views = attach_pack_views(pack.handle)
        for key, value in arrays.items():
            np.testing.assert_array_equal(views[key], value)
            assert views[key].dtype == value.dtype
        pack.close()
        assert shard_segments() == before

    def test_close_is_idempotent(self):
        pack = ShmPack({"x": np.ones(3)})
        pack.close()
        pack.close()

    def test_finalizer_unlinks_on_gc(self):
        before = shard_segments()
        pack = ShmPack({"x": np.ones(8)})
        assert len(shard_segments()) == len(before) + 1
        del pack
        import gc

        gc.collect()
        assert shard_segments() == before


class TestMetricToken:
    def test_registered_metric_travels_by_name(self):
        kind, value = metric_token("euclidean")
        assert (kind, value) == ("name", "euclidean")
        assert metric_from_token((kind, value)) is get_metric("euclidean")

    def test_minkowski_travels_by_name(self):
        m = get_metric("minkowski[p=3]")
        kind, value = metric_token(m)
        assert (kind, value) == ("name", "minkowski[p=3]")
        assert metric_from_token((kind, value)).name == m.name

    def test_unregistered_metric_travels_by_object(self):
        euc = get_metric("euclidean")
        custom = Metric(
            "custom-unregistered",
            euc.distances_from,
            euc.cross,
            euc.rect_mindist,
            euc.rect_maxdist,
            rect_mindist_many=euc.rect_mindist_many,
            rect_maxdist_many=euc.rect_maxdist_many,
            pair_dists=euc.pair_dists,
        )
        kind, value = metric_token(custom)
        assert kind == "obj"
        assert metric_from_token((kind, value)) is custom


# -- worker failure propagation + leak-free cleanup ---------------------------

_EUC = get_metric("euclidean")


def _boom_pair(a, b):
    raise RuntimeError("boom-metric exploded inside a worker chunk")


def _boom_from(points, q):
    raise RuntimeError("boom-metric exploded inside a worker chunk")


#: Euclidean rectangle bounds (so traversal reaches the leaves) but raising
#: distance kernels — the failure always fires inside a worker's chunk.
BOOM = Metric(
    "boom-metric-unregistered",
    _boom_from,
    _EUC.cross,  # the main-process peak sweep must not be the thing failing
    _EUC.rect_mindist,
    _EUC.rect_maxdist,
    rect_mindist_many=_EUC.rect_mindist_many,
    rect_maxdist_many=_EUC.rect_maxdist_many,
    pair_dists=_boom_pair,
)


class TestWorkerFailure:
    @pytest.mark.parametrize("backend", ["threads", "process"])
    def test_original_exception_type_and_message(self, blobs_small, backend):
        index = KDTreeIndex(
            metric=BOOM, backend=backend, n_jobs=2, chunk_size=13
        ).fit(blobs_small)
        try:
            with pytest.raises(RuntimeError, match="exploded inside a worker chunk"):
                index.rho_all(0.5)
        finally:
            index.release_execution()

    def test_failed_run_leaves_no_ephemeral_segments(self, blobs_small):
        """The per-run shared-memory pack is unlinked even when a chunk
        raises (finally-path); only the fit pack survives, and an explicit
        release removes that too — resource_tracker never has to step in."""
        before = shard_segments()
        index = KDTreeIndex(
            metric=BOOM, backend="process", n_jobs=2, chunk_size=13
        ).fit(blobs_small)
        # δ ships per-run arrays (keys/maxrho) through an ephemeral pack;
        # build the density order with a working metric so the failure
        # fires inside the sharded δ engine itself.
        rho = KDTreeIndex().fit(blobs_small).rho_all(0.5)
        from repro.core.quantities import DensityOrder

        with pytest.raises(RuntimeError, match="exploded inside a worker chunk"):
            index.delta_all(DensityOrder(rho))
        # Ephemeral run pack gone; at most the fit-time pack remains.
        leftovers = [s for s in shard_segments() if s not in before]
        assert len(leftovers) <= 1
        index.release_execution()
        assert shard_segments() == before

    def test_pool_survives_a_failed_run(self, blobs_small):
        index = KDTreeIndex(backend="process", n_jobs=2, chunk_size=13)
        index.fit(blobs_small)
        try:
            serial = KDTreeIndex().fit(blobs_small)
            bad = KDTreeIndex(
                metric=BOOM, backend=index._execution(), chunk_size=13
            ).fit(blobs_small)
            with pytest.raises(RuntimeError):
                bad.rho_all(0.5)
            bad.release_execution()
            # Same pool, next run: still correct.
            np.testing.assert_array_equal(index.rho_all(0.5), serial.rho_all(0.5))
        finally:
            index.release_execution()


class TestRefitInvalidation:
    def test_refit_releases_shard_pack_and_reshards_fresh(self, rng):
        """Regression (satellite of the sharding PR): a second fit must
        invalidate the published shard image alongside the FlatTree cache —
        a worker answering from the previous dataset's image would be
        silently wrong, not just stale."""
        first = rng.normal(size=(80, 2))
        second = rng.normal(3.0, 2.0, size=(120, 2))
        before = shard_segments()
        index = KDTreeIndex(backend="process", n_jobs=2, chunk_size=11).fit(first)
        try:
            index.quantities(0.5)
            assert index._shard_pack is not None
            old_segment = index._shard_pack.name
            index.fit(second)
            # Old image unlinked immediately, not lazily at the next query.
            assert index._shard_pack is None
            assert old_segment not in shard_segments()
            got = index.quantities(0.5)
            ref = KDTreeIndex().fit(second).quantities(0.5)
            np.testing.assert_array_equal(ref.rho, got.rho)
            np.testing.assert_array_equal(ref.delta, got.delta)
            np.testing.assert_array_equal(ref.mu, got.mu)
        finally:
            index.release_execution()
        assert shard_segments() == before

    def test_set_execution_releases_shard_pack(self, blobs_small):
        index = KDTreeIndex(backend="process", n_jobs=2).fit(blobs_small)
        index.quantities(0.5)
        assert index._shard_pack is not None
        index.set_execution(backend="serial")
        assert index._shard_pack is None
        # Still answers correctly on the new backend.
        ref = KDTreeIndex().fit(blobs_small).quantities(0.5)
        got = index.quantities(0.5)
        np.testing.assert_array_equal(ref.rho, got.rho)


class TestPersistExcludesBackendConfig:
    def test_backend_config_not_serialised(self, blobs_small, tmp_path):
        """Execution configuration is machine state: a payload written on a
        many-core box must restore cleanly anywhere, so backend/n_jobs/
        chunk_size never enter the file and a loaded index runs serial."""
        import json

        index = ListIndex(backend="threads", n_jobs=2, chunk_size=7).fit(blobs_small)
        path = tmp_path / "list.npz"
        save_index(index, str(path))
        with np.load(str(path), allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
        for key in ("backend", "n_jobs", "chunk_size"):
            assert key not in meta["params"], key
        restored = load_index(str(path))
        assert restored.backend == "serial"
        assert restored.n_jobs is None and restored.chunk_size is None
        ref = index.quantities(0.5)
        got = restored.quantities(0.5)
        np.testing.assert_array_equal(ref.rho, got.rho)
        np.testing.assert_array_equal(ref.delta, got.delta)
        index.release_execution()
