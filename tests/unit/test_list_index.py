"""Unit tests for the List Index (paper Algorithms 1–2)."""

import numpy as np
import pytest

from repro.core.baseline import naive_quantities
from repro.core.quantities import NO_NEIGHBOR, DensityOrder
from repro.indexes.list_index import ListIndex

from tests.conftest import assert_quantities_equal, safe_dc


@pytest.fixture
def fitted(blobs):
    return ListIndex().fit(blobs)


class TestConstruction:
    def test_nlists_sorted_nondecreasing(self, fitted):
        d = fitted.neighbor_dists
        assert (np.diff(d, axis=1) >= 0).all()

    def test_nlists_exclude_self(self, fitted):
        ids = fitted.neighbor_ids
        n = len(ids)
        for p in range(0, n, 37):
            assert p not in set(ids[p].tolist())
            assert len(set(ids[p].tolist())) == n - 1

    def test_distance_ties_ordered_by_id(self):
        # Four points equidistant from the centre point 0.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]])
        index = ListIndex().fit(pts)
        np.testing.assert_array_equal(index.neighbor_ids[0], [1, 2, 3, 4])

    def test_requires_two_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            ListIndex().fit(np.zeros((1, 2)))

    def test_build_block_invariance(self, blobs):
        a = ListIndex(build_block_rows=7).fit(blobs)
        b = ListIndex(build_block_rows=4096).fit(blobs)
        np.testing.assert_array_equal(a.neighbor_ids, b.neighbor_ids)
        np.testing.assert_array_equal(a.neighbor_dists, b.neighbor_dists)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="build_block_rows"):
            ListIndex(build_block_rows=0)
        with pytest.raises(ValueError, match="scan_block"):
            ListIndex(scan_block=-1)

    def test_build_seconds_recorded(self, fitted):
        assert fitted.build_seconds >= 0.0


class TestRhoQuery:
    def test_matches_naive(self, blobs, fitted):
        dc = safe_dc(blobs, 0.1)
        np.testing.assert_array_equal(
            fitted.rho_all(dc), naive_quantities(blobs, dc).rho
        )

    def test_binary_search_counter(self, blobs, fitted):
        fitted.reset_stats()
        fitted.rho_all(0.5)
        assert fitted.stats().binary_searches == len(blobs)

    def test_rho_zero_for_tiny_dc(self, fitted):
        assert (fitted.rho_all(1e-12) == 0).all()

    def test_rho_full_for_huge_dc(self, blobs, fitted):
        assert (fitted.rho_all(1e9) == len(blobs) - 1).all()


class TestDeltaQuery:
    def test_matches_naive_both_tie_modes(self, blobs, fitted):
        for tie in ("id", "strict"):
            base = naive_quantities(blobs, 0.5, tie_break=tie)
            got = fitted.quantities(0.5, tie_break=tie)
            assert_quantities_equal(base, got)

    def test_scan_block_invariance(self, blobs):
        base = naive_quantities(blobs, 0.5)
        for block in (1, 3, 64, 1000):
            got = ListIndex(scan_block=block).fit(blobs).quantities(0.5)
            assert_quantities_equal(base, got)

    def test_peak_delta_is_max_distance(self, blobs, fitted):
        q = fitted.quantities(0.5)
        peak = int(q.density_order.order[0])
        assert q.mu[peak] == NO_NEIGHBOR
        assert q.delta[peak] == fitted.neighbor_dists[peak, -1]

    def test_expected_constant_probes_per_object(self, blobs, fitted):
        """Theorem 1: the δ scan touches O(1) list entries per non-peak."""
        q = fitted.quantities(0.5)
        fitted.reset_stats()
        fitted.delta_all(q.density_order)
        per_object = fitted.stats().objects_scanned / len(blobs)
        # scan_block=32; well-clustered data resolves in the first block or
        # two for almost every object.
        assert per_object < 4 * fitted.scan_block

    def test_order_length_mismatch(self, fitted):
        with pytest.raises(ValueError, match="order has"):
            fitted.delta_all(DensityOrder(np.zeros(3, dtype=np.int64)))


class TestBookkeeping:
    def test_memory_counts_both_arrays(self, fitted):
        expected = fitted.neighbor_ids.nbytes + fitted.neighbor_dists.nbytes
        assert fitted.memory_bytes() == expected

    def test_memory_zero_before_fit(self):
        assert ListIndex().memory_bytes() == 0

    def test_unfitted_queries_raise(self):
        index = ListIndex()
        with pytest.raises(RuntimeError, match="not fitted"):
            index.rho_all(1.0)
        with pytest.raises(RuntimeError, match="not fitted"):
            index.quantities(1.0)

    def test_describe(self, fitted, blobs):
        info = fitted.describe()
        assert info["index"] == "list"
        assert info["n"] == len(blobs)
        assert info["exact"] is True
