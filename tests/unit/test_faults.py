"""Unit tests for the deterministic fault-injection framework (repro.faults)."""

import threading

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec, InjectedFault, WorkerCrashError


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


class TestFaultSpec:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            FaultSpec("x", mode="explode")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("x", probability=1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec("x", delay_s=-1.0)

    def test_at_coerced_to_int_tuple(self):
        assert FaultSpec("x", at=[0, 2.0]).at == (0, 2)


class TestFaultPlan:
    def test_times_trips_first_n_occurrences(self):
        plan = FaultPlan([FaultSpec("p", times=2)])
        assert [plan.decide("p") is not None for _ in range(4)] == [
            True, True, False, False,
        ]
        assert plan.fired() == {"p": 2}
        assert plan.activations() == {"p": 4}

    def test_at_trips_exact_occurrences(self):
        plan = FaultPlan([FaultSpec("p", at=(1, 3))])
        assert [plan.decide("p") is not None for _ in range(5)] == [
            False, True, False, True, False,
        ]

    def test_times_none_trips_every_occurrence(self):
        plan = FaultPlan([FaultSpec("p", times=None)])
        assert all(plan.decide("p") for _ in range(5))

    def test_probability_is_seed_deterministic(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan([FaultSpec("p", probability=0.5, times=None)], seed=4)
            draws.append([plan.decide("p") is not None for _ in range(32)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_unrelated_point_never_trips(self):
        plan = FaultPlan([FaultSpec("p")])
        assert plan.decide("other") is None
        assert plan.fired() == {}

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan([object()])

    def test_thread_safe_counting(self):
        plan = FaultPlan([FaultSpec("p", times=10)])
        hits = []

        def spin():
            for _ in range(100):
                if plan.decide("p") is not None:
                    hits.append(1)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == 10
        assert plan.activations() == {"p": 400}


class TestGlobalHooks:
    def test_no_plan_is_noop(self):
        faults.clear()
        assert faults.decide("anything") is None
        assert faults.trip("anything") is None

    def test_inject_installs_and_always_clears(self):
        plan = FaultPlan([FaultSpec("p")])
        with faults.inject(plan):
            assert faults.active_plan() is plan
        assert faults.active_plan() is None
        with pytest.raises(RuntimeError):
            with faults.inject(plan):
                raise RuntimeError("boom")
        assert faults.active_plan() is None

    def test_trip_raise_mode(self):
        with faults.inject(FaultPlan([FaultSpec("p", message="ouch")])):
            with pytest.raises(InjectedFault, match="injected fault at p: ouch"):
                faults.trip("p")

    def test_trip_sleep_mode_returns_spec(self):
        with faults.inject(FaultPlan([FaultSpec("p", mode="sleep", delay_s=0.0)])):
            spec = faults.trip("p")
        assert spec is not None and spec.mode == "sleep"

    def test_trip_site_handled_modes_return_spec(self):
        plan = FaultPlan(
            [FaultSpec("k", mode="kill"), FaultSpec("c", mode="corrupt")]
        )
        with faults.inject(plan):
            assert faults.trip("k").mode == "kill"
            assert faults.trip("c").mode == "corrupt"

    def test_worker_crash_is_injected_and_retryable_type(self):
        from repro.indexes.parallel import RETRYABLE_ERRORS

        assert issubclass(WorkerCrashError, InjectedFault)
        assert issubclass(InjectedFault, RETRYABLE_ERRORS)
