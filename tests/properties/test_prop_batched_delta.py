"""Property tests for the batched δ engine (PR: batched δ engine).

Contract: for every registered index, the batched δ path is **bit-identical**
(δ, μ, and therefore labels) to the per-object reference traversal — across
both reference frontier modes, every rect-capable metric, duplicate-heavy
point sets, and adversarial ρ-tie layouts — and ``delta_all_multi`` matches
element-wise the single-order calls it batches.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baseline import naive_quantities
from repro.core.quantities import DensityOrder
from repro.geometry.distance import pairwise_distances
from repro.indexes.grid import GridIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex

from tests.conftest import assert_quantities_equal

#: (name, batched factory, reference factory) — reference is the verbatim
#: per-object traversal the engine must reproduce bit-for-bit.
ENGINE_PAIRS = [
    (
        "quadtree-vs-stack",
        lambda: QuadtreeIndex(capacity=4),
        lambda: QuadtreeIndex(capacity=4, frontier="stack"),
    ),
    (
        "rtree-vs-stack",
        lambda: RTreeIndex(max_entries=4),
        lambda: RTreeIndex(max_entries=4, frontier="stack"),
    ),
    (
        "rtree-vs-heap",
        lambda: RTreeIndex(max_entries=4),
        lambda: RTreeIndex(max_entries=4, frontier="heap"),
    ),
    (
        "kdtree-vs-stack",
        lambda: KDTreeIndex(leaf_size=3),
        lambda: KDTreeIndex(leaf_size=3, frontier="stack"),
    ),
    (
        "kdtree-vs-heap",
        lambda: KDTreeIndex(leaf_size=3),
        lambda: KDTreeIndex(leaf_size=3, frontier="heap"),
    ),
    (
        "grid-vs-scalar",
        lambda: GridIndex(target_occupancy=4),
        lambda: GridIndex(target_occupancy=4, delta_mode="scalar"),
    ),
]

RECT_METRICS = ["euclidean", "sqeuclidean", "manhattan", "chebyshev", "minkowski[p=3]"]


@st.composite
def lattice_points_and_dc(draw, min_n=5, max_n=60):
    """Duplicate-heavy lattice points + an FP-safe dc (tie-adversarial)."""
    n = draw(st.integers(min_n, max_n))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=n,
            max_size=n,
        )
    )
    points = np.asarray(coords, dtype=np.float64) * 0.7310585786300049
    d = pairwise_distances(points)
    iu = np.triu_indices(len(points), k=1)
    uniq = np.unique(d[iu])
    uniq = uniq[uniq > 0.0]
    if len(uniq) < 2:
        dc = 1.0
    else:
        idx = draw(st.integers(0, len(uniq) - 2))
        dc = float((uniq[idx] + uniq[idx + 1]) / 2.0)
    return points, dc


@pytest.mark.parametrize(
    "name,batched,reference", ENGINE_PAIRS, ids=[p[0] for p in ENGINE_PAIRS]
)
@given(case=lattice_points_and_dc())
@settings(max_examples=25, deadline=None)
def test_batched_delta_bit_identical_to_reference(name, batched, reference, case):
    points, dc = case
    got = batched().fit(points).quantities(dc)
    ref = reference().fit(points).quantities(dc)
    assert_quantities_equal(ref, got)


@pytest.mark.parametrize(
    "name,batched,reference",
    [ENGINE_PAIRS[1], ENGINE_PAIRS[3], ENGINE_PAIRS[5]],
    ids=["rtree", "kdtree", "grid"],
)
@given(case=lattice_points_and_dc())
@settings(max_examples=15, deadline=None)
def test_batched_delta_strict_ties(name, batched, reference, case):
    points, dc = case
    got = batched().fit(points).quantities(dc, tie_break="strict")
    ref = reference().fit(points).quantities(dc, tie_break="strict")
    assert_quantities_equal(ref, got)
    assert_quantities_equal(naive_quantities(points, dc, tie_break="strict"), got)


@pytest.mark.parametrize("metric", RECT_METRICS)
@given(case=lattice_points_and_dc(max_n=40))
@settings(max_examples=10, deadline=None)
def test_batched_delta_all_rect_metrics(metric, case):
    """Every rect-capable metric: engine vs per-object reference vs naive."""
    points, dc = case
    for batched, reference in (
        (
            RTreeIndex(max_entries=4, metric=metric),
            RTreeIndex(max_entries=4, metric=metric, frontier="stack"),
        ),
        (
            KDTreeIndex(leaf_size=3, metric=metric),
            KDTreeIndex(leaf_size=3, metric=metric, frontier="stack"),
        ),
        (
            GridIndex(target_occupancy=4, metric=metric),
            GridIndex(target_occupancy=4, metric=metric, delta_mode="scalar"),
        ),
    ):
        got = batched.fit(points).quantities(dc)
        ref = reference.fit(points).quantities(dc)
        assert_quantities_equal(ref, got)
        assert_quantities_equal(naive_quantities(points, dc, metric=metric), got)


@pytest.mark.parametrize(
    "name,batched,reference",
    [ENGINE_PAIRS[1], ENGINE_PAIRS[5]],
    ids=["rtree", "grid"],
)
@given(case=lattice_points_and_dc(), extra=st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_delta_all_multi_matches_singles(name, batched, reference, case, extra):
    """One engine run over several density orders == per-order runs."""
    points, dc = case
    dcs = [dc * f for f in np.linspace(0.5, 2.0, extra)]
    index = batched().fit(points)
    rhos = [index.rho_all(float(v)) for v in dcs]
    orders = [DensityOrder(rho) for rho in rhos]
    multi = index.delta_all_multi(orders)
    ref_index = reference().fit(points)
    for order, (delta, mu) in zip(orders, multi):
        ref_delta, ref_mu = ref_index.delta_all(order)
        np.testing.assert_array_equal(ref_delta, delta)
        np.testing.assert_array_equal(ref_mu, mu)


def test_duplicate_points_resolve_to_smaller_id():
    """All-coincident and pairwise-duplicated points: μ ties break by id."""
    points = np.array([[1.0, 1.0]] * 7)
    for factory in (
        lambda: RTreeIndex(max_entries=2),
        lambda: KDTreeIndex(leaf_size=2),
        lambda: QuadtreeIndex(capacity=2),
        lambda: GridIndex(cell_size=0.5),
    ):
        got = factory().fit(points).quantities(1.0)
        assert_quantities_equal(naive_quantities(points, 1.0), got)
        # Object k's nearest denser neighbour is the smallest id (0 .. k-1
        # all tie at distance 0; id order resolves).
        np.testing.assert_array_equal(got.mu, [-1, 0, 0, 0, 0, 0, 0])


def test_rect_bound_tie_is_not_pruned_regression():
    """Regression: scalar rect bounds once reduced with BLAS ``np.dot``,
    whose fused multiply-adds drift one ulp from the einsum distance
    kernels — an exactly-tied duplicate cluster then got pruned and μ
    resolved to a larger id in the per-object reference path."""
    s = 0.7310585786300049
    points = np.array([[0, 0], [0, 0], [0, 0], [0, 0], [1 * s, 5 * s]])
    for metric in ("euclidean", "sqeuclidean"):
        base = naive_quantities(points, 1.0, metric=metric)
        np.testing.assert_array_equal(base.mu, [-1, 0, 0, 0, 0])
        for frontier in ("batched", "heap", "stack"):
            got = (
                RTreeIndex(max_entries=4, metric=metric, frontier=frontier)
                .fit(points)
                .quantities(1.0)
            )
            assert_quantities_equal(base, got)


def test_minkowski_scalar_pow_tie_is_not_pruned_regression():
    """Regression: numpy's *scalar* ``** (1/p)`` and the array power ufunc
    can disagree in the last ulp, so the Minkowski scalar rect bound sat
    one ulp above an exactly-tied candidate distance and the reference δ
    path pruned the smaller-id leaf (μ = 11 instead of 9)."""
    s = 0.7310585786300049
    pts = np.array([[0, 0]] * 8 + [[5 * s, 0], [9 * s, 0], [9 * s, 0], [1 * s, 0]],
                   dtype=float)
    dc = 1.8276464465750122
    base = naive_quantities(pts, dc, metric="minkowski[p=3]")
    assert base.mu[8] == 9
    for factory in (
        lambda f: RTreeIndex(max_entries=4, metric="minkowski[p=3]", frontier=f),
        lambda f: KDTreeIndex(leaf_size=3, metric="minkowski[p=3]", frontier=f),
    ):
        for frontier in ("batched", "heap", "stack"):
            got = factory(frontier).fit(pts).quantities(dc)
            assert_quantities_equal(base, got)
    for mode in ("batched", "scalar"):
        got = (
            GridIndex(target_occupancy=4, metric="minkowski[p=3]", delta_mode=mode)
            .fit(pts)
            .quantities(dc)
        )
        assert_quantities_equal(base, got)


def test_pruning_knobs_do_not_change_results():
    """Disabling Lemma 1 / Lemma 2 changes work, never (δ, μ)."""
    rng = np.random.default_rng(11)
    points = np.round(rng.uniform(0, 10, (120, 2)) * 4) / 4
    base = naive_quantities(points, 0.9)
    for density in (True, False):
        for distance in (True, False):
            got = (
                RTreeIndex(density_pruning=density, distance_pruning=distance)
                .fit(points)
                .quantities(0.9)
            )
            assert_quantities_equal(base, got)
