"""Incremental-maintenance bit-identity properties (LSM delta segments).

The delta-segment contract: an index grown by ``add_points`` answers every
query **bit-identically** to a fresh fit over the concatenated points — at
every moment.  With the delta segment live, the kernels merge the
(base, delta) image pair; after ``compact()`` the delta has been folded
into the main image by a sorted merge (Morton for quadtrees, STR re-tiling
for R-trees, per-dim perm merge for kd-trees, CSR append for the grid) —
and both states must be indistinguishable from a scratch build in ρ, δ, μ,
labels and halo.  The corpora mirror the bulk-build suite: duplicates
(δ ties at distance 0), an integer lattice (ρ/coordinate ties), mixed.
"""

import numpy as np
import pytest

from repro.indexes.registry import make_index
from repro.serving.snapshots import SnapshotStore

from tests.conftest import safe_dc

#: Families with a real delta segment between compactions.
SEGMENTED_SPECS = {
    "kdtree": {"leaf_size": 8},
    "quadtree": {"capacity": 8},
    "rtree": {"max_entries": 6},
    "grid": {"cell_size": 0.75},
}

#: Families that merge on append (delta_size stays 0, still incremental).
MERGING_SPECS = {
    "list": {},
    "ch": {"default_bins": 32},
}

ALL_SPECS = {**SEGMENTED_SPECS, **MERGING_SPECS}

RECT_METRICS = ("euclidean", "sqeuclidean", "manhattan", "chebyshev")

CORPORA = ("duplicates", "rho-ties", "mixed")


def corpus(name: str) -> np.ndarray:
    r = np.random.default_rng(hash(name) % (2**32))
    if name == "duplicates":
        base = r.normal(0.0, 1.0, size=(24, 2))
        return np.concatenate([base, base, base[:12], r.normal(2.0, 1.0, size=(20, 2))])
    if name == "rho-ties":
        return r.integers(0, 5, size=(80, 2)).astype(np.float64)
    if name == "mixed":
        blob = r.normal(0.0, 0.6, size=(40, 2))
        dup = r.normal(3.0, 0.5, size=(20, 2)).round(1)
        lattice = r.integers(-2, 2, size=(20, 2)).astype(np.float64)
        return np.concatenate([blob, dup, dup[:10], lattice])
    raise KeyError(name)


def grown(index_name, points, metric="euclidean", split=0.6, batches=2):
    """Fit a prefix, then ingest the rest through ``add_points`` batches."""
    cut = int(len(points) * split)
    index = make_index(index_name, metric=metric, **ALL_SPECS[index_name])
    index.fit(points[:cut])
    for chunk in np.array_split(points[cut:], batches):
        if len(chunk):
            index.add_points(chunk)
    return index


def fresh(index_name, points, metric="euclidean"):
    return make_index(index_name, metric=metric, **ALL_SPECS[index_name]).fit(points)


def assert_identical_quantities(qa, qb, context=""):
    np.testing.assert_array_equal(qa.rho, qb.rho, err_msg=f"rho differs {context}")
    np.testing.assert_array_equal(qa.delta, qb.delta, err_msg=f"delta differs {context}")
    np.testing.assert_array_equal(qa.mu, qb.mu, err_msg=f"mu differs {context}")


class TestDeltaBitIdentity:
    """(base ⊕ delta) vs fresh fit over family × metric × corpus × tie-break."""

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("metric", RECT_METRICS)
    @pytest.mark.parametrize("index_name", sorted(ALL_SPECS))
    def test_quantities_bit_identical_with_delta_live(
        self, index_name, metric, corpus_name
    ):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        inc = grown(index_name, points, metric)
        ref = fresh(index_name, points, metric)
        if index_name in SEGMENTED_SPECS:
            assert inc.delta_size > 0, "delta segment should be live here"
        for tie_break in ("id", "strict"):
            assert_identical_quantities(
                inc.quantities(dc, tie_break=tie_break),
                ref.quantities(dc, tie_break=tie_break),
                context=f"[{index_name}/{metric}/{corpus_name}/{tie_break}/delta]",
            )

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("metric", RECT_METRICS)
    @pytest.mark.parametrize("index_name", sorted(SEGMENTED_SPECS))
    def test_quantities_bit_identical_after_compaction(
        self, index_name, metric, corpus_name
    ):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        inc = grown(index_name, points, metric)
        inc.compact()
        assert inc.delta_size == 0
        ref = fresh(index_name, points, metric)
        for tie_break in ("id", "strict"):
            assert_identical_quantities(
                inc.quantities(dc, tie_break=tie_break),
                ref.quantities(dc, tie_break=tie_break),
                context=f"[{index_name}/{metric}/{corpus_name}/{tie_break}/compacted]",
            )

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("index_name", sorted(ALL_SPECS))
    def test_cluster_labels_and_halo_bit_identical(self, index_name, corpus_name):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        ra = grown(index_name, points).cluster(dc, n_centers=3, halo=True)
        rb = fresh(index_name, points).cluster(dc, n_centers=3, halo=True)
        np.testing.assert_array_equal(ra.labels, rb.labels)
        np.testing.assert_array_equal(ra.centers, rb.centers)
        np.testing.assert_array_equal(ra.halo, rb.halo)

    @pytest.mark.parametrize("index_name", sorted(ALL_SPECS))
    def test_multi_dc_sweep_bit_identical(self, index_name):
        points = corpus("mixed")
        dcs = [safe_dc(points, f) for f in (0.15, 0.3, 0.6)]
        for qa, qb in zip(
            grown(index_name, points).quantities_multi(dcs),
            fresh(index_name, points).quantities_multi(dcs),
        ):
            assert_identical_quantities(qa, qb, context=f"[{index_name}/multi-dc]")

    @pytest.mark.parametrize("index_name", sorted(SEGMENTED_SPECS))
    def test_single_point_trickle(self, index_name):
        """One-point adds — the degenerate ingest the LSM path must survive."""
        points = corpus("duplicates")
        dc = safe_dc(points)
        cut = len(points) - 6
        inc = make_index(index_name, **ALL_SPECS[index_name]).fit(points[:cut])
        for p in points[cut:]:
            inc.add_points(p[None, :])
        assert_identical_quantities(
            inc.quantities(dc),
            fresh(index_name, points).quantities(dc),
            context=f"[{index_name}/trickle]",
        )


class TestIncrementalMechanics:
    """The API contract around the segments, not just the answers."""

    @pytest.mark.parametrize("index_name", sorted(ALL_SPECS))
    def test_segment_lengths_sum_to_n(self, index_name):
        points = corpus("mixed")
        inc = grown(index_name, points)
        segments = inc._segment_lengths()
        assert sum(segments) == inc.n == len(points)
        assert segments[0] == inc.n - inc.delta_size

    @pytest.mark.parametrize("index_name", sorted(SEGMENTED_SPECS))
    def test_snapshot_copy_isolated_from_later_ingest(self, index_name):
        points = corpus("mixed")
        dc = safe_dc(points)
        cut = int(len(points) * 0.7)
        live = make_index(index_name, **ALL_SPECS[index_name]).fit(points[:cut])
        live.add_points(points[cut : cut + 5])
        frozen = live.snapshot_copy()
        before = frozen.quantities(dc)
        live.add_points(points[cut + 5 :])
        live.compact()
        # The snapshot still answers for exactly its prefix.
        assert frozen.n == cut + 5
        after = frozen.quantities(dc)
        assert_identical_quantities(before, after, context=f"[{index_name}/snapshot]")
        ref = fresh(index_name, points[: cut + 5])
        assert_identical_quantities(
            after, ref.quantities(dc), context=f"[{index_name}/snapshot-vs-fresh]"
        )

    @pytest.mark.parametrize("index_name", sorted(ALL_SPECS))
    def test_fingerprint_changes_per_ingest_state(self, index_name):
        points = corpus("mixed")
        cut = int(len(points) * 0.7)
        inc = make_index(index_name, **ALL_SPECS[index_name]).fit(points[:cut])
        fp_base = inc.fingerprint()
        inc.add_points(points[cut:])
        fp_delta = inc.fingerprint()
        assert fp_delta != fp_base
        if index_name in SEGMENTED_SPECS:
            # Compaction changes the *layout* (segments enter the recipe),
            # not the content hash inputs alone — the fingerprint moves.
            inc.compact()
            assert inc.fingerprint() != fp_delta

    @pytest.mark.parametrize("index_name", sorted(SEGMENTED_SPECS))
    def test_persist_roundtrip_with_live_delta(self, index_name, tmp_path):
        from repro.indexes.persist import load_index, save_index

        points = corpus("mixed")
        dc = safe_dc(points)
        inc = grown(index_name, points)
        assert inc.delta_size > 0
        path = str(tmp_path / f"{index_name}.npz")
        save_index(inc, path)
        restored = load_index(path)
        assert restored.delta_size == inc.delta_size
        assert restored.fingerprint() == inc.fingerprint()
        assert_identical_quantities(
            restored.quantities(dc),
            inc.quantities(dc),
            context=f"[{index_name}/persist]",
        )

    def test_publish_delta_notifies_with_batch(self):
        points = corpus("mixed")
        cut = int(len(points) * 0.7)
        index = make_index("kdtree", **ALL_SPECS["kdtree"]).fit(points[:cut])
        store = SnapshotStore()
        store.publish("s", index.snapshot_copy())
        swaps, deltas = [], []
        store.subscribe(lambda name, new, old: swaps.append((name, new, old)))
        store.subscribe_deltas(
            lambda name, new, old, pts: deltas.append((name, new, old, pts))
        )
        index.add_points(points[cut:])
        snapshot = store.publish_delta("s", index.snapshot_copy(), points[cut:])
        # Delta publish is a full atomic swap *plus* the batch notification,
        # and delta subscribers run after the swap subscribers.
        assert [s[1] for s in swaps] == [snapshot]
        assert len(deltas) == 1
        name, new, old, pts = deltas[0]
        assert name == "s" and new is snapshot and old is not None
        np.testing.assert_array_equal(pts, points[cut:])
        assert store.get("s") is snapshot
