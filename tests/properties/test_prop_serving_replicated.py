"""Chaos properties of the replicated serving tier (ISSUE 10 acceptance).

The contract under seeded fault storms against a service running supervised
shared-memory serving workers:

* **Zero client-visible errors under worker death** — killing any single
  serving worker mid-batch re-dispatches the in-flight batch to a warm
  replica (or degrades to in-process dispatch); every client future still
  resolves with a result.
* **Bit-identical responses** — every served payload equals a direct
  ``quantities_multi`` on the same index, fingerprint-checked element-wise;
  failover replays are idempotent, so retries cannot smear results.
* **Failovers are observable** — ``repro_serving_failovers_total`` lands in
  the metrics registry when a batch was re-dispatched.
* **No shm leaks** — every storm leaves ``/dev/shm`` free of our segments
  once the service is drained/closed, snapshot-image unlink races included.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro import faults, obs
from repro.faults import FaultPlan, FaultSpec
from repro.indexes.parallel import SHM_PREFIX
from repro.indexes.registry import make_index
from repro.obs.export import render_prometheus
from repro.serving.service import ClusteringService

from tests.conftest import safe_dc


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


def shard_segments():
    try:
        return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def corpus(seed=7, n=96):
    r = np.random.default_rng(seed)
    base = r.normal(0.0, 1.0, size=(n // 2, 2))
    return np.concatenate([base, base[: n // 4], r.normal(2.5, 0.8, size=(n // 4, 2))])


def assert_identical(qa, qb, context=""):
    np.testing.assert_array_equal(qa.rho, qb.rho, err_msg=f"rho differs {context}")
    np.testing.assert_array_equal(qa.delta, qb.delta, err_msg=f"delta differs {context}")
    np.testing.assert_array_equal(qa.mu, qb.mu, err_msg=f"mu differs {context}")


#: name -> (plan factory, service kwargs overrides).  ``kill`` storms lose a
#: real worker process mid-batch (os._exit inside the child); ``hang`` wedges
#: one (heartbeats continue, the batch deadline catches it); heartbeat drops
#: starve liveness until the supervisor declares false deaths — all must end
#: in exact results, the idempotent-failover way.
STORMS = {
    "kill-mid-batch": (
        lambda: FaultPlan([FaultSpec("serving.worker.kill", mode="kill", times=1)]),
        {},
    ),
    "kill-twice": (
        lambda: FaultPlan([FaultSpec("serving.worker.kill", mode="kill", times=2)]),
        {},
    ),
    "hang-wedged-worker": (
        lambda: FaultPlan(
            [FaultSpec("serving.worker.hang", mode="hang", times=1, delay_s=30.0)]
        ),
        {"batch_timeout_s": 0.5},
    ),
    "heartbeat-drop-burst": (
        lambda: FaultPlan(
            [FaultSpec("serving.heartbeat.drop", mode="raise", times=12)]
        ),
        {},
    ),
    "shm-unlink-race": (
        lambda: FaultPlan([FaultSpec("serving.shm.unlink", mode="kill", times=1)]),
        {},
    ),
    "seeded-mixed-storm": (
        lambda: FaultPlan(
            [
                FaultSpec(
                    "serving.worker.kill", mode="kill", times=None, probability=0.25
                ),
                FaultSpec(
                    "serving.heartbeat.drop", mode="raise", times=None, probability=0.2
                ),
            ],
            seed=42,
        ),
        {},
    ),
}


@pytest.mark.parametrize("storm", sorted(STORMS))
def test_storm_zero_visible_errors_bit_identical(storm):
    """Under every storm: all futures resolve with results bit-identical to
    a direct ``quantities_multi``, and no shm segment survives the close."""
    plan_factory, overrides = STORMS[storm]
    points = corpus()
    dcs = [safe_dc(points, f) for f in (0.15, 0.3, 0.5)]
    direct = make_index("ch").fit(points)
    references = dict(zip(dcs, direct.quantities_multi(dcs)))

    before = shard_segments()
    with ClusteringService(
        workers=2, heartbeat_s=0.1, cache_entries=0, linger_ms=5.0, **overrides
    ) as service:
        # Armed before the publish: the shm-unlink point fires in the
        # publish window itself; the others activate during dispatch.
        plan = plan_factory()
        faults.install(plan)
        try:
            service.fit_snapshot("data", points, index="ch")
            # Three waves of concurrent clients: enough activations for the
            # storm to fire mid-batch, and for post-failover batches to show
            # the pool recovered (not just degraded once and stayed down).
            for _ in range(3):
                futures = [
                    service.submit("data", "quantities", dc, use_cache=False)
                    for dc in dcs
                ]
                for dc, future in zip(dcs, futures):
                    result = future.result(timeout=60.0)
                    assert_identical(
                        result.value, references[dc], f"(storm={storm}, dc={dc})"
                    )
            # Heartbeat-borne points only activate when a heartbeat arrives
            # while the plan is armed — give the 0.1 s cadence a moment.
            deadline = time.monotonic() + 5.0
            while not sum(plan.fired().values()) and time.monotonic() < deadline:
                time.sleep(0.05)
            fired = plan.fired()
        finally:
            faults.clear()
        assert sum(fired.values()) >= 1, f"storm {storm} never fired: {fired}"
        assert service.drain(timeout_s=30.0)
    assert shard_segments() == before, "serving images leaked into /dev/shm"


def test_kill_mid_batch_counts_failover_in_metrics():
    """The acceptance check: one worker killed mid-batch → zero errors,
    bit-identical responses, and the failover visible in /metrics."""
    points = corpus(seed=11)
    dcs = [safe_dc(points, f) for f in (0.2, 0.4)]
    direct = make_index("ch").fit(points)
    references = dict(zip(dcs, direct.quantities_multi(dcs)))

    with obs.enabled_scope():
        with ClusteringService(
            workers=2, heartbeat_s=0.1, cache_entries=0, linger_ms=5.0
        ) as service:
            service.fit_snapshot("data", points, index="ch")
            plan = FaultPlan(
                [FaultSpec("serving.worker.kill", mode="kill", times=1)]
            )
            faults.install(plan)
            try:
                futures = [
                    service.submit("data", "quantities", dc, use_cache=False)
                    for dc in dcs
                ]
                for dc, future in zip(dcs, futures):
                    assert_identical(future.result(timeout=60.0).value, references[dc])
                fired = plan.fired()
            finally:
                faults.clear()
            assert fired.get("serving.worker.kill") == 1
            stats = service.pool.stats_snapshot()
            assert stats["worker_deaths"] >= 1
            assert stats["failovers"] >= 1 or stats["inline_fallbacks"] >= 1
            exposition = render_prometheus()
            assert service.drain(timeout_s=30.0)
    assert "repro_serving_worker_deaths_total" in exposition
    if stats["failovers"]:
        assert "repro_serving_failovers_total" in exposition


def test_worker_death_under_concurrent_load_is_invisible():
    """A storm of kills while many clients hammer the service: every future
    resolves exactly; the pool either failed over or degraded, never erred."""
    points = corpus(seed=23, n=80)
    dcs = [safe_dc(points, f) for f in (0.2, 0.35, 0.5)]
    direct = make_index("ch").fit(points)
    references = dict(zip(dcs, direct.quantities_multi(dcs)))

    before = shard_segments()
    with ClusteringService(
        workers=2, heartbeat_s=0.1, cache_entries=0, linger_ms=2.0
    ) as service:
        service.fit_snapshot("data", points, index="ch")
        faults.install(
            FaultPlan(
                [FaultSpec("serving.worker.kill", mode="kill", times=None,
                           probability=0.5)],
                seed=7,
            )
        )
        errors = []
        outcomes = []
        lock = threading.Lock()

        def client(slot):
            rng = np.random.default_rng(slot)
            for _ in range(4):
                dc = dcs[int(rng.integers(0, len(dcs)))]
                try:
                    value = service.submit(
                        "data", "quantities", dc, use_cache=False
                    ).result(timeout=60.0).value
                except Exception as exc:  # noqa: BLE001 - the assertion
                    with lock:
                        errors.append((slot, type(exc).__name__, str(exc)))
                else:
                    with lock:
                        outcomes.append((dc, value))

        threads = [threading.Thread(target=client, args=(s,)) for s in range(4)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
        finally:
            faults.clear()
        assert not errors, f"client-visible errors under worker death: {errors}"
        assert len(outcomes) == 16
        for dc, value in outcomes:
            assert_identical(value, references[dc], f"(dc={dc})")
        assert service.drain(timeout_s=30.0)
    assert shard_segments() == before, "leaked serving segments"


def test_shm_unlink_storm_republishes_and_stays_exact():
    """Unlinking the snapshot image right after publish (the crash window)
    forces a republish on next dispatch; responses stay exact, no leak."""
    points = corpus(seed=31, n=72)
    dc = safe_dc(points, 0.3)
    reference = make_index("ch").fit(points).quantities_multi([dc])[0]

    before = shard_segments()
    with ClusteringService(workers=2, heartbeat_s=0.1, cache_entries=0) as service:
        plan = FaultPlan([FaultSpec("serving.shm.unlink", mode="kill", times=1)])
        faults.install(plan)
        try:
            service.fit_snapshot("data", points, index="ch")
            result = service.submit("data", "quantities", dc, use_cache=False).result(
                timeout=60.0
            )
            fired = plan.fired()
        finally:
            faults.clear()
        assert fired.get("serving.shm.unlink", 0) >= 1
        assert_identical(result.value, reference)
        assert service.drain(timeout_s=30.0)
    assert shard_segments() == before


def test_drain_under_load_flushes_and_refuses():
    """SIGTERM semantics at the service layer: drain() lets in-flight
    requests finish (exactly), refuses new ones, and reports clean."""
    from repro.serving.errors import ServiceDrainingError

    points = corpus(seed=41, n=80)
    dc = safe_dc(points, 0.3)
    reference = make_index("ch").fit(points).quantities_multi([dc])[0]

    before = shard_segments()
    service = ClusteringService(workers=2, heartbeat_s=0.1, cache_entries=0,
                                linger_ms=20.0)
    try:
        service.fit_snapshot("data", points, index="ch")
        futures = [
            service.submit("data", "quantities", dc, use_cache=False)
            for _ in range(3)
        ]
        assert service.drain(timeout_s=30.0) is True
        for future in futures:
            assert_identical(future.result(timeout=1.0).value, reference)
        with pytest.raises((ServiceDrainingError, RuntimeError)):
            service.submit("data", "quantities", dc)
    finally:
        service.close()
    assert shard_segments() == before
