"""Hypothesis: the exactness contract holds on adversarial point sets.

Strategy notes: points are drawn from a small integer lattice scaled by an
irrational-ish factor, then dc is placed at the *midpoint of two consecutive
unique pairwise distances* — so no distance ever sits within float noise of
dc and strict-< comparisons cannot flip between code paths.  This makes
bit-exact assertions robust while still exercising heavy duplicate/tie
structure (lattice points collide frequently).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.baseline import naive_quantities
from repro.geometry.distance import pairwise_distances
from repro.indexes.ch_index import CHIndex
from repro.indexes.grid import GridIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNListIndex
from repro.indexes.rtree import RTreeIndex

from tests.conftest import assert_quantities_equal


@st.composite
def lattice_points(draw, min_n=5, max_n=60):
    """2-D points on a lattice: many duplicate coordinates and tied distances."""
    n = draw(st.integers(min_n, max_n))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(coords, dtype=np.float64) * 0.7310585786300049


@st.composite
def points_and_dc(draw):
    points = draw(lattice_points())
    d = pairwise_distances(points)
    iu = np.triu_indices(len(points), k=1)
    uniq = np.unique(d[iu])
    uniq = uniq[uniq > 0.0]
    if len(uniq) < 2:
        dc = 1.0
    else:
        idx = draw(st.integers(0, len(uniq) - 2))
        dc = float((uniq[idx] + uniq[idx + 1]) / 2.0)
    return points, dc


FACTORIES = [
    ("list", lambda: ListIndex(scan_block=4)),
    ("ch", lambda: CHIndex(default_bins=16)),
    ("quadtree", lambda: QuadtreeIndex(capacity=4)),
    ("rtree", lambda: RTreeIndex(max_entries=4)),
    ("kdtree", lambda: KDTreeIndex(leaf_size=3)),
    ("grid", lambda: GridIndex(target_occupancy=4)),
]


@pytest.mark.parametrize("name,factory", FACTORIES, ids=[f[0] for f in FACTORIES])
@given(case=points_and_dc())
@settings(max_examples=25, deadline=None)
def test_exactness_contract_id_ties(name, factory, case):
    points, dc = case
    if name == "ch":
        # Auto bin width is undefined on a fully coincident cloud (CHIndex
        # raises by design); every other index handles it.
        assume(not np.allclose(points, points[0]))
    base = naive_quantities(points, dc)
    got = factory().fit(points).quantities(dc)
    assert_quantities_equal(base, got)


@pytest.mark.parametrize(
    "name,factory",
    [FACTORIES[0], FACTORIES[3], FACTORIES[5]],
    ids=["list", "rtree", "grid"],
)
@given(case=points_and_dc())
@settings(max_examples=15, deadline=None)
def test_exactness_contract_strict_ties(name, factory, case):
    points, dc = case
    base = naive_quantities(points, dc, tie_break="strict")
    got = factory().fit(points).quantities(dc, tie_break="strict")
    assert_quantities_equal(base, got)


@given(case=points_and_dc(), tau_factor=st.floats(0.1, 3.0))
@settings(max_examples=25, deadline=None)
def test_rnlist_rho_exact_below_tau(case, tau_factor):
    points, dc = case
    tau = dc * tau_factor
    index = RNListIndex(tau=tau).fit(points)
    rho = index.rho_all(dc)
    if dc <= tau:
        np.testing.assert_array_equal(rho, naive_quantities(points, dc).rho)
    else:
        # Truncation can only undercount.
        assert (rho <= naive_quantities(points, dc).rho).all()


@given(case=points_and_dc())
@settings(max_examples=20, deadline=None)
def test_rho_rank_invariant_under_index(case):
    """All indexes agree on the density ordering, hence on clusterings."""
    points, dc = case
    assume(not np.allclose(points, points[0]))  # CH auto-w needs a diameter
    base = naive_quantities(points, dc)
    for _, factory in (FACTORIES[1], FACTORIES[4]):
        got = factory().fit(points).quantities(dc)
        np.testing.assert_array_equal(
            base.density_order.order, got.density_order.order
        )
