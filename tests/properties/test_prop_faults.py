"""Chaos properties (repro.faults): exactness or fast typed failure.

Under every injected fault plan the system must keep its contracts:

* **Exactness survives recovery** — a run that completes under injected
  worker crashes, stragglers, corrupted payloads, shm unlink races or
  backend degradation returns results bit-identical to the serial direct
  call, probe-counter totals included.
* **Fail fast, never hang** — serving futures always resolve: with the
  exact result, or with a typed ``ServingError``, within a bounded wait.
* **No leaks** — every plan leaves ``/dev/shm`` free of our segments and
  the save directory free of temp files.
"""

import os

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec, InjectedFault
from repro.indexes.parallel import SHM_PREFIX, ExecutionBackend
from repro.indexes.persist import CorruptSnapshotError, load_index, save_index
from repro.indexes.registry import make_index
from repro.serving.errors import (
    DeadlineExceededError,
    DispatcherCrashError,
    LoadShedError,
)
from repro.serving.service import ClusteringService

from tests.conftest import safe_dc


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """A failing test must never leave its plan armed for the next one."""
    yield
    faults.clear()


def shard_segments():
    try:
        return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def corpus(seed=3, n=96):
    r = np.random.default_rng(seed)
    base = r.normal(0.0, 1.0, size=(n // 2, 2))
    return np.concatenate([base, base[: n // 4], r.normal(2.5, 0.8, size=(n // 4, 2))])


def assert_identical(qa, qb, context=""):
    np.testing.assert_array_equal(qa.rho, qb.rho, err_msg=f"rho differs {context}")
    np.testing.assert_array_equal(qa.delta, qb.delta, err_msg=f"delta differs {context}")
    np.testing.assert_array_equal(qa.mu, qb.mu, err_msg=f"mu differs {context}")


#: (plan factory, backend kind) — every parallel fault point, both rungs
#: where it is meaningful.  ``kill`` under process dies for real
#: (os._exit → BrokenProcessPool); under threads it raises the typed
#: WorkerCrashError.  All are retryable: the run must complete exactly.
PARALLEL_PLANS = {
    "worker-raise-threads": (
        lambda: FaultPlan([FaultSpec("parallel.worker", mode="raise", times=1)]),
        "threads",
    ),
    "worker-kill-threads": (
        lambda: FaultPlan([FaultSpec("parallel.worker", mode="kill", times=1)]),
        "threads",
    ),
    "worker-kill-process": (
        lambda: FaultPlan([FaultSpec("parallel.worker", mode="kill", times=1)]),
        "process",
    ),
    "slow-worker": (
        lambda: FaultPlan([FaultSpec("parallel.slow", mode="sleep", times=2, delay_s=0.02)]),
        "threads",
    ),
    "corrupt-payload-threads": (
        lambda: FaultPlan([FaultSpec("parallel.corrupt", mode="corrupt", times=1)]),
        "threads",
    ),
    "corrupt-payload-process": (
        lambda: FaultPlan([FaultSpec("parallel.corrupt", mode="corrupt", times=1)]),
        "process",
    ),
    "shm-unlink-race": (
        lambda: FaultPlan([FaultSpec("parallel.shm_unlink", mode="kill", times=1)]),
        "process",
    ),
    "probabilistic-raise": (
        lambda: FaultPlan(
            [FaultSpec("parallel.worker", mode="raise", times=None, probability=0.3)],
            seed=11,
        ),
        "threads",
    ),
}


class TestParallelChaos:
    """Injected infrastructure failures: recovered runs stay bit-identical."""

    @pytest.mark.parametrize("plan_name", sorted(PARALLEL_PLANS))
    def test_recovered_run_is_bit_identical(self, plan_name):
        make_plan, kind = PARALLEL_PLANS[plan_name]
        points = corpus()
        dc = safe_dc(points)
        serial = make_index("kdtree", leaf_size=8).fit(points)
        reference = serial.quantities(dc)
        ref_stats = serial.stats().as_dict()
        backend = ExecutionBackend(kind, n_jobs=2, chunk_size=11, max_retries=3)
        sharded = make_index("kdtree", leaf_size=8, backend=backend).fit(points)
        before = shard_segments()
        try:
            with faults.inject(make_plan()) as plan:
                got = sharded.quantities(dc)
            assert_identical(reference, got, context=f"[{plan_name}]")
            assert sharded.stats().as_dict() == ref_stats, plan_name
            if "probabilistic" not in plan_name:
                assert sum(plan.fired().values()) >= 1, plan_name
        finally:
            sharded.release_execution()
            backend.shutdown()
        assert shard_segments() == before, f"shm leak under {plan_name}"

    def test_same_plan_same_seed_fires_identically(self):
        """Determinism: two identical runs trip the same occurrences."""
        points = corpus()
        dc = safe_dc(points)
        fired = []
        for _ in range(2):
            backend = ExecutionBackend("threads", n_jobs=2, chunk_size=11)
            sharded = make_index("kdtree", leaf_size=8, backend=backend).fit(points)
            plan = FaultPlan(
                [FaultSpec("parallel.worker", mode="raise", times=None, probability=0.4)],
                seed=29,
            )
            try:
                with faults.inject(plan):
                    sharded.quantities(dc)
            finally:
                sharded.release_execution()
                backend.shutdown()
            fired.append((plan.fired(), plan.activations()))
        assert fired[0] == fired[1]

    def test_degradation_ladder_process_to_threads(self):
        """Retries exhausted on the process rung: degrade, stay exact."""
        points = corpus()
        dc = safe_dc(points)
        serial = make_index("kdtree", leaf_size=8).fit(points)
        reference = serial.quantities(dc)
        backend = ExecutionBackend("process", n_jobs=2, chunk_size=11, max_retries=0)
        sharded = make_index("kdtree", leaf_size=8, backend=backend).fit(points)
        before = shard_segments()
        try:
            plan = FaultPlan([FaultSpec("parallel.worker", mode="kill", times=1)])
            with faults.inject(plan):
                got = sharded.quantities(dc)
            assert_identical(reference, got, context="[degraded]")
            assert backend.degraded
            assert backend.effective_kind == "threads"
            health = backend.health()
            assert health["degradations"] >= 1
            assert health["last_error"]
            # degradation is sticky until the operator resets it
            assert_identical(reference, sharded.quantities(dc), context="[sticky]")
            assert backend.effective_kind == "threads"
            backend.reset_degradation()
            assert not backend.degraded
            assert backend.effective_kind == "process"
            assert_identical(reference, sharded.quantities(dc), context="[reset]")
        finally:
            sharded.release_execution()
            backend.shutdown()
        assert shard_segments() == before

    def test_deterministic_worker_error_propagates_unretried(self):
        """A genuine bug (non-infrastructure error) is never retried into
        silence: it propagates with its original type immediately."""
        points = corpus()
        backend = ExecutionBackend("threads", n_jobs=2, chunk_size=11, max_retries=3)
        sharded = make_index("kdtree", leaf_size=8, backend=backend).fit(points)
        try:
            with pytest.raises(ValueError, match="dc must be positive"):
                sharded.quantities(-1.0)
            assert backend.health()["retries"] == 0
        finally:
            sharded.release_execution()
            backend.shutdown()


#: CI chaos-smoke seed: the workflow matrix re-runs this module with
#: several fixed seeds, steering every probability-based plan into a
#: different (but reproducible) trip pattern.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


class TestSeededChaosMix:
    """One storm of every parallel fault class at once, seed-matrixed."""

    @pytest.mark.parametrize("kind", ("threads", "process"))
    def test_mixed_fault_storm_stays_exact(self, kind):
        points = corpus()
        dc = safe_dc(points)
        serial = make_index("kdtree", leaf_size=8).fit(points)
        reference = serial.quantities(dc)
        ref_stats = serial.stats().as_dict()
        plan = FaultPlan(
            [
                FaultSpec("parallel.worker", mode="raise", times=None, probability=0.2),
                FaultSpec("parallel.slow", mode="sleep", times=None, probability=0.2, delay_s=0.005),
                FaultSpec("parallel.corrupt", mode="corrupt", times=None, probability=0.2),
            ],
            seed=CHAOS_SEED,
        )
        backend = ExecutionBackend(kind, n_jobs=2, chunk_size=11, max_retries=6)
        sharded = make_index("kdtree", leaf_size=8, backend=backend).fit(points)
        before = shard_segments()
        try:
            with faults.inject(plan):
                got = sharded.quantities(dc)
            assert_identical(reference, got, context=f"[storm/{kind}/seed={CHAOS_SEED}]")
            assert sharded.stats().as_dict() == ref_stats
        finally:
            sharded.release_execution()
            backend.shutdown()
        assert shard_segments() == before


class TestServingChaos:
    """Serving futures resolve exactly or fail fast — never hang."""

    def test_dispatcher_crash_fails_fast_and_recovers(self, blobs):
        points = corpus()
        reference = make_index("kdtree").fit(points).cluster(0.5, n_centers=3)
        with ClusteringService(linger_ms=1.0, cache_entries=0) as service:
            service.fit_snapshot("main", points, index="kdtree")
            plan = FaultPlan([FaultSpec("coalescer.dispatch", mode="raise", times=1)])
            with faults.inject(plan):
                futures = [
                    service.submit("main", "cluster", 0.5, n_centers=3)
                    for _ in range(6)
                ]
                outcomes = []
                for future in futures:
                    try:  # bounded wait: a hang here is the failure mode
                        outcomes.append(future.result(timeout=30.0))
                    except DispatcherCrashError as exc:
                        outcomes.append(exc)
            assert plan.fired()["coalescer.dispatch"] == 1
            crashed = [o for o in outcomes if isinstance(o, DispatcherCrashError)]
            served = [o for o in outcomes if not isinstance(o, Exception)]
            assert crashed, "the injected crash must fail at least one request"
            for result in served:
                np.testing.assert_array_equal(result.value.labels, reference.labels)
            # the supervisor restarted the dispatcher: next request serves
            after = service.cluster("main", 0.5, n_centers=3)
            np.testing.assert_array_equal(after.value.labels, reference.labels)
            assert service.stats()["coalescer"]["dispatcher_restarts"] >= 1

    def test_deadline_expired_fails_fast(self):
        points = corpus()
        with ClusteringService(linger_ms=0.0, cache_entries=0) as service:
            service.fit_snapshot("main", points, index="kdtree")
            # A dispatcher stall longer than the request deadline: the
            # request must be failed at dispatch, not ride the engine call.
            plan = FaultPlan(
                [FaultSpec("coalescer.dispatch", mode="sleep", times=1, delay_s=0.2)]
            )
            with faults.inject(plan):
                future = service.submit("main", "cluster", 0.5, timeout_s=0.05)
                with pytest.raises(DeadlineExceededError):
                    future.result(timeout=30.0)
            assert service.stats()["coalescer"]["expired"] == 1
            # no deadline → same request serves fine afterwards
            assert service.cluster("main", 0.5).value is not None

    def test_load_shedding_and_cached_degradation(self):
        points = corpus()
        reference = make_index("kdtree").fit(points).cluster(0.5, n_centers=3)
        with ClusteringService(linger_ms=1.0) as service:
            service.fit_snapshot("main", points, index="kdtree")
            warm = service.cluster("main", 0.5, n_centers=3)  # prime the cache
            np.testing.assert_array_equal(warm.value.labels, reference.labels)
            service.coalescer.max_queue = 0  # drain mode: shed everything
            with pytest.raises(LoadShedError) as shed:
                service.submit("main", "cluster", 0.7).result(timeout=30.0)
            assert shed.value.retry_after_s > 0
            health = service.health()
            assert health["state"] == "shedding"
            assert health["shed"] >= 1
            # graceful degradation: the exact-result cache still serves
            hit = service.cluster("main", 0.5, n_centers=3)
            assert hit.meta["cache_hit"] is True
            np.testing.assert_array_equal(hit.value.labels, reference.labels)
            service.coalescer.max_queue = None
            assert service.health()["state"] == "healthy"

    def test_publish_fault_keeps_last_good_snapshot(self):
        points = corpus()
        with ClusteringService(linger_ms=1.0) as service:
            snapshot = service.fit_snapshot("main", points, index="kdtree")
            plan = FaultPlan([FaultSpec("snapshots.publish", mode="raise", times=1)])
            with faults.inject(plan):
                with pytest.raises(InjectedFault):
                    service.fit_snapshot("main", corpus(seed=9), index="kdtree")
            # the failed publish never swapped: the old snapshot still serves
            assert service.store.get("main") is snapshot
            assert service.store.is_current(snapshot)
            assert service.cluster("main", 0.5).value is not None


class TestPersistChaos:
    """Atomic save and corruption quarantine under injected faults."""

    def test_crash_mid_save_leaves_previous_payload(self, tmp_path):
        points = corpus()
        path = str(tmp_path / "index.npz")
        first = make_index("kdtree").fit(points)
        save_index(first, path)
        second = make_index("kdtree").fit(corpus(seed=9))
        plan = FaultPlan([FaultSpec("persist.save", mode="raise", times=1)])
        with faults.inject(plan):
            with pytest.raises(InjectedFault):
                save_index(second, path)
        # the interrupted save replaced nothing and leaked no temp file
        assert load_index(path).fingerprint() == first.fingerprint()
        assert os.listdir(tmp_path) == ["index.npz"]

    def test_bitrot_detected_and_quarantined(self, tmp_path):
        points = corpus()
        path = str(tmp_path / "index.npz")
        plan = FaultPlan([FaultSpec("persist.payload", mode="corrupt", times=1)])
        with faults.inject(plan):
            save_index(make_index("kdtree").fit(points), path)
        with pytest.raises(CorruptSnapshotError) as info:
            load_index(path)
        assert info.value.quarantined_to == path + ".corrupt"
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        # a retry loop now fails clean instead of re-reading the same bytes
        with pytest.raises(FileNotFoundError):
            load_index(path)
