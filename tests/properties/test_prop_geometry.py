"""Hypothesis: metric axioms and rectangle-bound soundness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry.distance import get_metric
from repro.geometry.rect import Rect

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def point_arrays(n, d):
    return hnp.arrays(np.float64, (n, d), elements=finite_floats)


METRICS = ["euclidean", "manhattan", "chebyshev", "minkowski[p=3]"]


class TestMetricAxioms:
    @pytest.mark.parametrize("name", METRICS)
    @given(pts=point_arrays(8, 3))
    @settings(max_examples=30, deadline=None)
    def test_identity_and_nonnegativity(self, name, pts):
        m = get_metric(name)
        d = m.cross(pts, pts)
        assert (d >= 0).all()
        assert np.allclose(np.diag(d), 0.0, atol=1e-9)

    @pytest.mark.parametrize("name", METRICS)
    @given(pts=point_arrays(8, 3))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, name, pts):
        m = get_metric(name)
        d = m.cross(pts, pts)
        np.testing.assert_allclose(d, d.T, rtol=1e-12, atol=1e-9)

    @pytest.mark.parametrize("name", METRICS)
    @given(pts=point_arrays(6, 2))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, name, pts):
        m = get_metric(name)
        d = m.cross(pts, pts)
        n = len(pts)
        slack = 1e-7 * (1.0 + d.max())
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert d[i, j] <= d[i, k] + d[k, j] + slack


class TestRectBounds:
    @pytest.mark.parametrize("name", METRICS)
    @given(
        corners=point_arrays(2, 2),
        inside=hnp.arrays(np.float64, (20,), elements=st.floats(0, 1)),
        q=point_arrays(1, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_mindist_maxdist_bracket_contents(self, name, corners, inside, q):
        lo = corners.min(axis=0)
        hi = corners.max(axis=0)
        rect = Rect(lo, hi)
        # 10 points inside the box by convex interpolation of the corners.
        t = inside.reshape(10, 2)
        pts = lo + t * (hi - lo)
        m = get_metric(name)
        d = m.distances_from(pts, q[0])
        slack = 1e-9 * (1.0 + abs(d).max())
        assert rect.mindist(q[0], name) <= d.min() + slack
        assert rect.maxdist(q[0], name) >= d.max() - slack

    # Exclude subnormal coordinates: a gap below ~1e-154 underflows when
    # squared inside the Euclidean mindist, making "outside but mindist 0"
    # technically possible (and irrelevant at any realistic data scale).
    coarse = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False).filter(
        lambda v: v == 0.0 or abs(v) > 1e-9
    )

    @given(
        corners=hnp.arrays(np.float64, (2, 2), elements=coarse),
        q=hnp.arrays(np.float64, (1, 2), elements=coarse),
    )
    @settings(max_examples=40, deadline=None)
    def test_mindist_zero_iff_inside(self, corners, q):
        lo = corners.min(axis=0)
        hi = corners.max(axis=0)
        rect = Rect(lo, hi)
        md = rect.mindist(q[0])
        if rect.contains_point(q[0]):
            assert md == 0.0
        else:
            assert md > 0.0

    @given(corners=point_arrays(4, 2))
    @settings(max_examples=30, deadline=None)
    def test_union_contains_both(self, corners):
        a = Rect(corners[:2].min(axis=0), corners[:2].max(axis=0))
        b = Rect(corners[2:].min(axis=0), corners[2:].max(axis=0))
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)
        assert u.area() >= max(a.area(), b.area())

    @given(corners=point_arrays(2, 3), split=st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_split_partitions_volume(self, corners, split):
        lo = corners.min(axis=0)
        hi = corners.max(axis=0)
        rect = Rect(lo, hi)
        value = lo[1] + split * (hi[1] - lo[1])
        left, right = rect.split_at(1, value)
        assert left.area() + right.area() == pytest.approx(rect.area(), rel=1e-9, abs=1e-12)
