"""Bulk-build bit-identity properties (repro.indexes.build).

The bulk builders construct the FlatTree query image directly from the
point array; the contract is that ρ, δ, μ, labels and halo are
**bit-identical** to the ``build="objects"`` reference for every tree
family, rect-capable metric, tie-break and adversarial corpus.  Probe
counters may differ only where the tree *shape* legitimately differs
(kd median ties, quadtree boundary ulps) — STR packing must produce the
identical structure node-for-node, so there the counters are asserted
equal too.  The corpora mirror the execution-backend suite: duplicates
(δ ties at distance 0), an integer lattice (ρ ties and coordinate ties at
every split boundary), and the mixed general case.
"""

import numpy as np
import pytest

from repro.extras.streaming import StreamingDPC
from repro.indexes.kernels import FlatTree, flatten_tree
from repro.indexes.registry import make_index
from repro.indexes.rtree import RTreeIndex

from tests.conftest import safe_dc

#: Tree families with a bulk path; small structures so trees have depth.
TREE_SPECS = {
    "kdtree": {"leaf_size": 8},
    "quadtree": {"capacity": 8},
    "rtree": {"max_entries": 6},
}

RECT_METRICS = ("euclidean", "sqeuclidean", "manhattan", "chebyshev")

CORPORA = ("duplicates", "rho-ties", "mixed")


def corpus(name: str) -> np.ndarray:
    r = np.random.default_rng(hash(name) % (2**32))
    if name == "duplicates":
        base = r.normal(0.0, 1.0, size=(24, 2))
        return np.concatenate([base, base, base[:12], r.normal(2.0, 1.0, size=(20, 2))])
    if name == "rho-ties":
        return r.integers(0, 5, size=(80, 2)).astype(np.float64)
    if name == "mixed":
        blob = r.normal(0.0, 0.6, size=(40, 2))
        dup = np.round(r.normal(3.0, 0.5, size=(20, 2)), 1)
        lattice = r.integers(-2, 2, size=(20, 2)).astype(np.float64)
        return np.concatenate([blob, dup, dup[:10], lattice])
    raise KeyError(name)


def build_pair(index_name, metric="euclidean", **extra):
    spec = dict(TREE_SPECS[index_name], **extra)
    objects = make_index(index_name, metric=metric, build="objects", **spec)
    bulk = make_index(index_name, metric=metric, build="bulk", **spec)
    return objects, bulk


def assert_identical_quantities(qa, qb, context=""):
    np.testing.assert_array_equal(qa.rho, qb.rho, err_msg=f"rho differs {context}")
    np.testing.assert_array_equal(qa.delta, qb.delta, err_msg=f"delta differs {context}")
    np.testing.assert_array_equal(qa.mu, qb.mu, err_msg=f"mu differs {context}")


class TestBulkBitIdentity:
    """bulk vs objects over every (family, rect metric, corpus, tie-break)."""

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("metric", RECT_METRICS)
    @pytest.mark.parametrize("index_name", sorted(TREE_SPECS))
    def test_quantities_bit_identical(self, index_name, metric, corpus_name):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        objects, bulk = build_pair(index_name, metric)
        objects.fit(points)
        bulk.fit(points)
        assert objects.build_ == "objects" and bulk.build_ == "bulk"
        for tie_break in ("id", "strict"):
            assert_identical_quantities(
                objects.quantities(dc, tie_break=tie_break),
                bulk.quantities(dc, tie_break=tie_break),
                context=f"[{index_name}/{metric}/{corpus_name}/{tie_break}]",
            )

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("index_name", sorted(TREE_SPECS))
    def test_cluster_labels_and_halo_bit_identical(self, index_name, corpus_name):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        objects, bulk = build_pair(index_name)
        ra = objects.fit(points).cluster(dc, n_centers=3, halo=True)
        rb = bulk.fit(points).cluster(dc, n_centers=3, halo=True)
        np.testing.assert_array_equal(ra.labels, rb.labels)
        np.testing.assert_array_equal(ra.centers, rb.centers)
        np.testing.assert_array_equal(ra.halo, rb.halo)

    @pytest.mark.parametrize("index_name", sorted(TREE_SPECS))
    def test_multi_dc_sweep_bit_identical(self, index_name):
        points = corpus("mixed")
        dcs = [safe_dc(points, f) for f in (0.15, 0.3, 0.6)]
        objects, bulk = build_pair(index_name)
        for qa, qb in zip(
            objects.fit(points).quantities_multi(dcs),
            bulk.fit(points).quantities_multi(dcs),
        ):
            assert_identical_quantities(qa, qb, context=f"[{index_name}/multi-dc]")

    @pytest.mark.parametrize("frontier", ("heap", "stack"))
    @pytest.mark.parametrize("index_name", sorted(TREE_SPECS))
    def test_reference_frontiers_on_bulk_trees(self, index_name, frontier):
        """The per-object frontiers materialise the object graph from the
        bulk image lazily; results must still match the objects build."""
        points = corpus("duplicates")
        dc = safe_dc(points)
        objects, bulk = build_pair(index_name, frontier=frontier)
        objects.fit(points)
        bulk.fit(points)
        assert bulk._root is None  # not materialised by fit
        assert_identical_quantities(
            objects.quantities(dc),
            bulk.quantities(dc),
            context=f"[{index_name}/{frontier}]",
        )
        assert bulk._root is not None  # the frontier pulled the graph in


class TestStrStructureIdentity:
    """STR packing: the bulk image equals the flattened object tree exactly."""

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("max_entries", (4, 6, 16))
    def test_node_for_node_identical(self, corpus_name, max_entries):
        points = corpus(corpus_name)
        objects = RTreeIndex(build="objects", max_entries=max_entries).fit(points)
        bulk = RTreeIndex(build="bulk", max_entries=max_entries).fit(points)
        fa = flatten_tree(objects.root)
        fb = bulk._flat_tree()
        assert [tuple(l) for l in fa.levels] == [tuple(l) for l in fb.levels]
        for name in FlatTree.ARRAY_FIELDS:
            np.testing.assert_array_equal(
                getattr(fa, name), getattr(fb, name), err_msg=f"{name} differs"
            )

    @pytest.mark.parametrize("corpus_name", CORPORA)
    def test_probe_counters_identical(self, corpus_name):
        """Identical structure ⇒ identical per-query work, counters included."""
        points = corpus(corpus_name)
        dc = safe_dc(points)
        objects = RTreeIndex(build="objects", max_entries=6).fit(points)
        bulk = RTreeIndex(build="bulk", max_entries=6).fit(points)
        objects.quantities(dc)
        bulk.quantities(dc)
        assert objects.stats().as_dict() == bulk.stats().as_dict()

    def test_dynamic_packing_falls_back_to_objects(self):
        points = corpus("mixed")
        index = RTreeIndex(packing="dynamic", build="bulk").fit(points)
        assert index.build_ == "objects"
        assert index._root is not None


class TestStreamingPublishesBulk:
    """Amortised rebuilds construct their snapshots through the bulk path."""

    def test_rebuilds_publish_bulk_built_indexes(self):
        published = []
        stream = StreamingDPC(min_buffer=8, rebuild_factor=0.5)
        stream.subscribe_rebuild(published.append)
        r = np.random.default_rng(0)
        for _ in range(6):
            stream.add(r.normal(size=(20, 2)))
        assert stream.rebuild_count >= 2
        assert len(published) >= 1
        for index in published:
            assert index.build_ == "bulk"
            assert index._flat is not None
            assert index._root is None  # no object graph ever materialised
        # and the streamed quantities stay exact against a scratch rebuild
        pts = stream.points()
        dc = safe_dc(pts)
        q = stream.quantities(dc)
        ref = RTreeIndex().fit(pts).quantities(dc)
        assert_identical_quantities(q, ref, context="[streaming]")
