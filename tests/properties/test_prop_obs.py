"""Observability bit-identity properties (repro.obs).

The PR-wide contract: turning metrics and tracing **on** changes nothing
about what any layer computes.  (ρ, δ, μ) — and therefore labels — must be
bit-identical with observability enabled vs disabled across every index
family, every execution backend, and the partitioned composition; probe
counters included, since the instrumentation reads (never writes) them.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.indexes.registry import make_index

from tests.conftest import assert_quantities_equal, safe_dc

#: Constructor extras per family (small structures so instrumented code
#: paths go deep); the rn-* approximations need their radius ratio.
FAMILY_SPECS = {
    "list": {},
    "ch": {"default_bins": 16},
    "rn-list": {"tau": 2.0},
    "rn-ch": {"tau": 2.0, "default_bins": 16},
    "kdtree": {"leaf_size": 8},
    "quadtree": {"capacity": 8},
    "rtree": {"max_entries": 6},
    "grid": {"target_occupancy": 4},
}


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs_metrics.REGISTRY.reset()
    obs_trace.reset()
    yield
    obs.disable()
    obs_metrics.REGISTRY.reset()
    obs_trace.reset()


def corpus(seed: int, n: int) -> np.ndarray:
    r = np.random.default_rng(seed)
    blob = r.normal(0.0, 0.8, size=(n // 2, 2))
    dup = np.round(r.normal(2.5, 0.5, size=(n // 4, 2)), 1)
    lattice = r.integers(-2, 3, size=(n - len(blob) - len(dup), 2)).astype(np.float64)
    return np.concatenate([blob, dup, lattice])


def quantities_with_obs(index, dc, tie_break):
    """One observed query, run under a live root span like the server does."""
    with obs.enabled_scope():
        root = obs_trace.begin_span("test.query")
        try:
            with obs_trace.use_span(root):
                return index.quantities(dc, tie_break=tie_break)
        finally:
            root.finish()


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
    def test_enabled_vs_disabled_bit_identity(self, family):
        points = corpus(11, 96)
        dc = safe_dc(points)
        index = make_index(family, **FAMILY_SPECS[family]).fit(points)
        for tie_break in ("id", "strict"):
            before_off = index.stats().as_dict()
            baseline = index.quantities(dc, tie_break=tie_break)
            after_off = index.stats().as_dict()
            observed = quantities_with_obs(index, dc, tie_break)
            after_on = index.stats().as_dict()
            assert_quantities_equal(baseline, observed)
            # Instrumentation reads probe counters; it must not perturb them.
            delta_off = {k: after_off[k] - before_off.get(k, 0) for k in after_off}
            delta_on = {k: after_on[k] - after_off.get(k, 0) for k in after_on}
            assert delta_on == delta_off

    @given(seed=st.integers(0, 2**16), n=st.integers(24, 120))
    @settings(max_examples=15, deadline=None)
    def test_kdtree_random_corpora(self, seed, n):
        points = corpus(seed, n)
        dc = safe_dc(points)
        index = make_index("kdtree", leaf_size=4).fit(points)
        baseline = index.quantities(dc)
        observed = quantities_with_obs(index, dc, "id")
        assert_quantities_equal(baseline, observed)


class TestBackends:
    @pytest.mark.parametrize("backend", ["serial", "threads", "process"])
    def test_enabled_vs_disabled_per_backend(self, backend):
        points = corpus(7, 90)
        dc = safe_dc(points)
        index = make_index("kdtree", leaf_size=8).fit(points)
        index.set_execution(backend=backend, n_jobs=2)
        try:
            baseline = index.quantities(dc)
            observed = quantities_with_obs(index, dc, "id")
            assert_quantities_equal(baseline, observed)
        finally:
            index.release_execution()
            index.set_execution(backend="serial")


class TestPartitioned:
    @pytest.mark.parametrize("partitions", [1, 2, 4])
    def test_enabled_vs_disabled_partitioned(self, partitions):
        points = corpus(23, 100)
        dc = safe_dc(points)
        index = make_index(
            "partitioned",
            family="kdtree",
            partitions=partitions,
            family_params={"leaf_size": 8},
        ).fit(points)
        baseline = index.quantities(dc)
        observed = quantities_with_obs(index, dc, "id")
        assert_quantities_equal(baseline, observed)

    def test_partitioned_strict_tie_break(self):
        points = corpus(29, 80)
        dc = safe_dc(points)
        index = make_index(
            "partitioned", family="grid", partitions=4,
            family_params={"target_occupancy": 4},
        ).fit(points)
        baseline = index.quantities(dc, tie_break="strict")
        observed = quantities_with_obs(index, dc, "strict")
        assert_quantities_equal(baseline, observed)


class TestMultiDc:
    def test_quantities_multi_enabled_vs_disabled(self):
        points = corpus(31, 90)
        base = safe_dc(points)
        dcs = [base * 0.8, base, base * 1.2]
        index = make_index("ch", default_bins=16).fit(points)
        baseline = index.quantities_multi(dcs)
        with obs.enabled_scope():
            observed = index.quantities_multi(dcs)
        for qa, qb in zip(baseline, observed):
            assert_quantities_equal(qa, qb)
