"""Hypothesis: structural invariants of the index data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantities import DensityOrder
from repro.indexes.ch_index import CHIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex

coords = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)


def point_sets(min_n=5, max_n=50):
    return st.integers(min_n, max_n).flatmap(
        lambda n: hnp.arrays(np.float64, (n, 2), elements=coords)
    )


@given(points=point_sets())
@settings(max_examples=30, deadline=None)
def test_nlist_rows_are_permutations(points):
    index = ListIndex().fit(points)
    n = len(points)
    for p in range(0, n, max(1, n // 5)):
        row = set(index.neighbor_ids[p].tolist())
        assert row == set(range(n)) - {p}
        assert (np.diff(index.neighbor_dists[p]) >= 0).all()


@given(points=point_sets(min_n=6), bins=st.integers(2, 64))
@settings(max_examples=30, deadline=None)
def test_ch_histograms_cumulative(points, bins):
    if np.allclose(points, points[0]):
        return  # coincident cloud: no usable diameter for auto-w
    index = CHIndex(default_bins=bins).fit(points)
    n = len(points)
    for p in range(0, n, max(1, n // 4)):
        start = index._hist_offsets[p]
        stop = index._hist_offsets[p + 1]
        values = index._hist_values[start:stop]
        assert (np.diff(values) >= 0).all()
        assert values[-1] == n - 1


@given(points=point_sets(), capacity=st.integers(1, 16))
@settings(max_examples=30, deadline=None)
def test_quadtree_partitions_points(points, capacity):
    index = QuadtreeIndex(capacity=capacity).fit(points)
    leaf_ids = np.concatenate(
        [n.ids for n in index.root.iter_nodes() if n.is_leaf]
    )
    assert sorted(leaf_ids.tolist()) == list(range(len(points)))
    assert index.root.nc == len(points)
    for node in index.root.iter_nodes():
        if node.children is not None:
            assert 1 <= len(node.children) <= 4


@given(points=point_sets(), fanout=st.integers(2, 12))
@settings(max_examples=30, deadline=None)
def test_str_rtree_balanced_and_complete(points, fanout):
    index = RTreeIndex(max_entries=fanout).fit(points)
    depths = []

    def walk(node, depth):
        if node.is_leaf:
            depths.append(depth)
        else:
            assert len(node.children) <= fanout
            for child in node.children:
                walk(child, depth + 1)

    walk(index.root, 0)
    assert max(depths) == min(depths)
    leaf_ids = np.concatenate(
        [n.ids for n in index.root.iter_nodes() if n.is_leaf]
    )
    assert sorted(leaf_ids.tolist()) == list(range(len(points)))


@given(points=point_sets(min_n=8), fanout=st.integers(4, 10))
@settings(max_examples=20, deadline=None)
def test_dynamic_rtree_mbr_containment(points, fanout):
    index = RTreeIndex(max_entries=fanout, packing="dynamic").fit(points)
    for node in index.root.iter_nodes():
        if node.is_leaf:
            if len(node.ids):
                pts = points[node.ids]
                assert (pts >= node.lo - 1e-9).all()
                assert (pts <= node.hi + 1e-9).all()
        else:
            for child in node.children:
                assert (child.lo >= node.lo - 1e-9).all()
                assert (child.hi <= node.hi + 1e-9).all()
    leaf_ids = np.concatenate(
        [n.ids for n in index.root.iter_nodes() if n.is_leaf]
    )
    assert sorted(leaf_ids.tolist()) == list(range(len(points)))


@given(points=point_sets(), leaf_size=st.integers(1, 12))
@settings(max_examples=30, deadline=None)
def test_kdtree_median_balance(points, leaf_size):
    index = KDTreeIndex(leaf_size=leaf_size).fit(points)
    for node in index.root.iter_nodes():
        if node.children is not None:
            left, right = node.children
            assert abs(left.nc - right.nc) <= 1
            assert left.nc + right.nc == node.nc


@given(rho=hnp.arrays(np.int64, st.integers(2, 50), elements=st.integers(0, 8)))
@settings(max_examples=50, deadline=None)
def test_density_order_total_order(rho):
    order = DensityOrder(rho)
    ids = order.order
    # Strictly decreasing in (rho, -id): a genuine total order.
    keys = [(int(rho[p]), -int(p)) for p in ids]
    assert keys == sorted(keys, reverse=True)
    # Exactly one global peak, and nothing is denser than it.
    peaks = order.global_peaks()
    assert len(peaks) == 1
    assert all(not order.is_denser(q, int(peaks[0])) for q in range(len(rho)))
