"""Execution-backend bit-identity properties (repro.indexes.parallel).

The sharded backends promise *bit-identical* results — ρ, δ, μ, labels and
halo, ties and smaller-id μ included — and identical probe-counter totals,
for every index, every rect-capable metric, any chunk size and any worker
count.  The corpora here are the adversarial ones where a sharding bug
would actually show:

* **duplicates** — many exactly coincident points, so δ ties at distance 0
  and the smaller-id μ contract does the tie-breaking;
* **rho-ties** — an integer lattice with heavy ρ ties, exercising both
  tie-break conventions' order keys across chunk boundaries;
* **mixed** — blobs + duplicates + lattice, the general case.

One process pool and one thread pool are shared module-wide (pools are
index-agnostic by design); odd chunk geometries get their own short-lived
backends.
"""

import numpy as np
import pytest

from repro.indexes.parallel import ExecutionBackend
from repro.indexes.registry import make_index

from tests.conftest import safe_dc

#: Constructor extras per index (small structures so chunk counts > 1).
INDEX_SPECS = {
    "list": {},
    "ch": {"default_bins": 16},
    "rn-list": {"tau": 3.0},
    "rn-ch": {"tau": 3.0},
    "kdtree": {"leaf_size": 8},
    "quadtree": {"capacity": 8},
    "rtree": {"max_entries": 6},
    "grid": {"target_occupancy": 4},
}

#: Every metric with exact rectangle bounds (usable by all eight indexes);
#: the minkowski entry also exercises name-based metric shipping to workers.
RECT_METRICS = (
    "euclidean",
    "sqeuclidean",
    "manhattan",
    "chebyshev",
    "minkowski[p=3]",
)

CORPORA = ("duplicates", "rho-ties", "mixed")


def corpus(name: str) -> np.ndarray:
    r = np.random.default_rng(hash(name) % (2**32))
    if name == "duplicates":
        base = r.normal(0.0, 1.0, size=(24, 2))
        return np.concatenate([base, base, base[:12], r.normal(2.0, 1.0, size=(20, 2))])
    if name == "rho-ties":
        return r.integers(0, 5, size=(80, 2)).astype(np.float64)
    if name == "mixed":
        blob = r.normal(0.0, 0.6, size=(40, 2))
        dup = np.round(r.normal(3.0, 0.5, size=(20, 2)), 1)
        lattice = r.integers(-2, 2, size=(20, 2)).astype(np.float64)
        return np.concatenate([blob, dup, dup[:10], lattice])
    raise KeyError(name)


@pytest.fixture(scope="module")
def process_backend():
    backend = ExecutionBackend("process", n_jobs=2, chunk_size=13)
    yield backend
    backend.shutdown()


@pytest.fixture(scope="module")
def thread_backend():
    backend = ExecutionBackend("threads", n_jobs=2, chunk_size=13)
    yield backend
    backend.shutdown()


def build_pair(index_name, metric, backend):
    serial = make_index(index_name, metric=metric, **INDEX_SPECS[index_name])
    sharded = make_index(
        index_name, metric=metric, backend=backend, **INDEX_SPECS[index_name]
    )
    return serial, sharded


def assert_identical_quantities(qa, qb, context=""):
    np.testing.assert_array_equal(qa.rho, qb.rho, err_msg=f"rho differs {context}")
    np.testing.assert_array_equal(qa.delta, qb.delta, err_msg=f"delta differs {context}")
    np.testing.assert_array_equal(qa.mu, qb.mu, err_msg=f"mu differs {context}")


class TestBackendBitIdentity:
    """serial vs threads vs process on every (index, rect metric) pair."""

    @pytest.mark.parametrize("metric", RECT_METRICS)
    @pytest.mark.parametrize("index_name", sorted(INDEX_SPECS))
    def test_process_backend_matches_serial(
        self, index_name, metric, process_backend
    ):
        points = corpus("mixed")
        dc = safe_dc(points)
        serial, sharded = build_pair(index_name, metric, process_backend)
        serial.fit(points)
        sharded.fit(points)
        try:
            for tie_break in ("id", "strict"):
                assert_identical_quantities(
                    serial.quantities(dc, tie_break=tie_break),
                    sharded.quantities(dc, tie_break=tie_break),
                    context=f"[{index_name}/{metric}/{tie_break}]",
                )
            assert serial.stats().as_dict() == sharded.stats().as_dict()
        finally:
            sharded.release_execution()

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("index_name", sorted(INDEX_SPECS))
    def test_thread_backend_matches_serial_on_corpora(
        self, index_name, corpus_name, thread_backend
    ):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        serial, sharded = build_pair(index_name, "euclidean", thread_backend)
        serial.fit(points)
        sharded.fit(points)
        assert_identical_quantities(
            serial.quantities(dc), sharded.quantities(dc),
            context=f"[{index_name}/{corpus_name}]",
        )
        assert serial.stats().as_dict() == sharded.stats().as_dict()

    @pytest.mark.parametrize("corpus_name", ("duplicates", "rho-ties"))
    @pytest.mark.parametrize("index_name", sorted(INDEX_SPECS))
    def test_process_backend_labels_and_halo(
        self, index_name, corpus_name, process_backend
    ):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        serial, sharded = build_pair(index_name, "euclidean", process_backend)
        serial.fit(points)
        sharded.fit(points)
        try:
            a = serial.cluster(dc, n_centers=3, halo=True)
            b = sharded.cluster(dc, n_centers=3, halo=True)
            np.testing.assert_array_equal(a.centers, b.centers)
            np.testing.assert_array_equal(a.labels, b.labels)
            np.testing.assert_array_equal(a.halo, b.halo)
        finally:
            sharded.release_execution()


class TestMultiDcSharding:
    """The (dc, chunk) task grid of quantities_multi, vs the serial sweep."""

    @pytest.mark.parametrize("index_name", sorted(INDEX_SPECS))
    def test_multi_dc_sweep_matches_serial(self, index_name, process_backend):
        points = corpus("mixed")
        base = safe_dc(points)
        # Include a dc beyond tau for the truncated indexes (their
        # no-search fast path must shard-degrade identically).
        dcs = [base * f for f in (0.3, 1.0, 2.5, 20.0)]
        serial, sharded = build_pair(index_name, "euclidean", process_backend)
        serial.fit(points)
        sharded.fit(points)
        try:
            for tie_break in ("id", "strict"):
                qa = serial.quantities_multi(dcs, tie_break=tie_break)
                qb = sharded.quantities_multi(dcs, tie_break=tie_break)
                for x, y in zip(qa, qb):
                    assert_identical_quantities(
                        x, y, context=f"[{index_name}/dc={x.dc}/{tie_break}]"
                    )
            assert serial.stats().as_dict() == sharded.stats().as_dict()
        finally:
            sharded.release_execution()


class TestChunkGeometry:
    """Odd chunk sizes and degenerate worker counts change nothing."""

    @pytest.mark.parametrize("index_name", sorted(INDEX_SPECS))
    def test_odd_chunk_sizes(self, index_name):
        points = corpus("duplicates")
        n = len(points)
        dc = safe_dc(points)
        serial = make_index(index_name, **INDEX_SPECS[index_name]).fit(points)
        reference = serial.quantities(dc)
        ref_stats = serial.stats().as_dict()
        for chunk_size in (1, n - 1, n + 50):
            sharded = make_index(
                index_name,
                backend="threads",
                n_jobs=2,
                chunk_size=chunk_size,
                **INDEX_SPECS[index_name],
            ).fit(points)
            assert_identical_quantities(
                reference, sharded.quantities(dc),
                context=f"[{index_name}/chunk={chunk_size}]",
            )
            assert sharded.stats().as_dict() == ref_stats
            sharded.release_execution()

    @pytest.mark.parametrize("index_name", ("list", "kdtree", "grid"))
    def test_process_chunk_of_one(self, index_name):
        points = corpus("rho-ties")[:40]
        dc = safe_dc(points)
        serial = make_index(index_name, **INDEX_SPECS[index_name]).fit(points)
        sharded = make_index(
            index_name, backend="process", n_jobs=2, chunk_size=1,
            **INDEX_SPECS[index_name],
        ).fit(points)
        try:
            assert_identical_quantities(
                serial.quantities(dc), sharded.quantities(dc),
                context=f"[{index_name}/chunk=1]",
            )
            assert serial.stats().as_dict() == sharded.stats().as_dict()
        finally:
            sharded.release_execution()

    @pytest.mark.parametrize("index_name", sorted(INDEX_SPECS))
    def test_process_single_worker(self, index_name):
        points = corpus("mixed")
        dc = safe_dc(points)
        serial = make_index(index_name, **INDEX_SPECS[index_name]).fit(points)
        sharded = make_index(
            index_name, backend="process", n_jobs=1, chunk_size=11,
            **INDEX_SPECS[index_name],
        ).fit(points)
        try:
            assert_identical_quantities(
                serial.quantities(dc), sharded.quantities(dc),
                context=f"[{index_name}/n_jobs=1]",
            )
            assert serial.stats().as_dict() == sharded.stats().as_dict()
        finally:
            sharded.release_execution()
