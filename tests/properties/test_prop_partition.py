"""Partitioned-index bit-identity properties (repro.indexes.partition).

The partitioned layer promises results **bit-identical** to a monolithic fit
of the same family — ρ, δ, μ, labels and halo, ties and smaller-id μ
included — for every exact family, every rect-capable metric, both
tie-break conventions and any partition count.  The corpora here are the
adversarial ones where a tiling bug would actually show:

* **border-duplicates** — exactly coincident point stacks spread across the
  whole domain, so duplicate groups land *on* tile borders and the δ=0 ties
  must resolve to the smallest global id across the cut;
* **rho-ties** — an integer lattice with heavy ρ ties, so the density-order
  keys (both conventions) are exercised across partition boundaries;
* **dc exceeding the tile width** — the halo swallows whole neighbouring
  tiles and the local/settled fraction collapses, yet nothing may change.

A Hypothesis sweep drives random lattice clouds (dc placed at the midpoint
of two consecutive unique pairwise distances, so no strict-< comparison can
flip between code paths) through random partition counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.distance import pairwise_distances
from repro.indexes.registry import make_index

from tests.conftest import assert_quantities_equal, safe_dc

#: Constructor extras per exact family (small structures so tiles stay deep
#: enough to matter).  The rn-* families are approximate and rejected by the
#: partitioned constructor — covered in tests/unit/test_partition.py.
FAMILY_SPECS = {
    "list": {},
    "ch": {"default_bins": 16},
    "kdtree": {"leaf_size": 8},
    "quadtree": {"capacity": 8},
    "rtree": {"max_entries": 6},
    "grid": {"target_occupancy": 4},
}

#: Every metric with exact rectangle bounds (halo membership needs them).
RECT_METRICS = (
    "euclidean",
    "sqeuclidean",
    "manhattan",
    "chebyshev",
    "minkowski[p=3]",
)

PARTITION_COUNTS = (1, 2, 4)

CORPORA = ("border-duplicates", "rho-ties", "mixed")


def corpus(name: str) -> np.ndarray:
    r = np.random.default_rng(hash(name) % (2**32))
    if name == "border-duplicates":
        # Duplicate stacks spread over the whole domain: however the
        # equal-count tiles cut the curve, some stack straddles a border.
        centers = r.uniform(-4.0, 4.0, size=(18, 2))
        stacks = np.repeat(centers, 3, axis=0)
        return np.concatenate([stacks, r.normal(0.0, 2.0, size=(26, 2))])
    if name == "rho-ties":
        return r.integers(0, 5, size=(80, 2)).astype(np.float64)
    if name == "mixed":
        blob = r.normal(0.0, 0.6, size=(40, 2))
        dup = np.round(r.normal(3.0, 0.5, size=(20, 2)), 1)
        lattice = r.integers(-2, 2, size=(20, 2)).astype(np.float64)
        return np.concatenate([blob, dup, dup[:10], lattice])
    raise KeyError(name)


def build_pair(family, metric, partitions, **kwargs):
    mono = make_index(family, metric=metric, **FAMILY_SPECS[family])
    part = make_index(
        "partitioned",
        metric=metric,
        family=family,
        partitions=partitions,
        family_params=FAMILY_SPECS[family],
        **kwargs,
    )
    return mono, part


class TestPartitionBitIdentity:
    """Mono vs partitioned on every (family, rect metric) pair."""

    @pytest.mark.parametrize("metric", RECT_METRICS)
    @pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
    def test_families_and_metrics(self, family, metric):
        points = corpus("mixed")
        dc = safe_dc(points)
        for partitions in PARTITION_COUNTS:
            mono, part = build_pair(family, metric, partitions)
            mono.fit(points)
            part.fit(points)
            for tie_break in ("id", "strict"):
                assert_quantities_equal(
                    mono.quantities(dc, tie_break=tie_break),
                    part.quantities(dc, tie_break=tie_break),
                )

    @pytest.mark.parametrize("corpus_name", CORPORA)
    @pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
    def test_border_corpora_and_labels(self, family, corpus_name):
        points = corpus(corpus_name)
        dc = safe_dc(points)
        mono, part = build_pair(family, "euclidean", 4)
        mono.fit(points)
        part.fit(points)
        for tie_break in ("id", "strict"):
            assert_quantities_equal(
                mono.quantities(dc, tie_break=tie_break),
                part.quantities(dc, tie_break=tie_break),
            )
        a = mono.cluster(dc, n_centers=3, halo=True)
        b = part.cluster(dc, n_centers=3, halo=True)
        np.testing.assert_array_equal(a.centers, b.centers)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.halo, b.halo)

    @pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
    def test_multi_dc_sweep_with_dc_exceeding_tile_width(self, family):
        """One sweep spans tiny dc through a dc wider than the whole domain,
        so the halo regrows mid-life and finally swallows every neighbour."""
        points = corpus("border-duplicates")
        base = safe_dc(points)
        span = float(np.linalg.norm(points.max(0) - points.min(0)))
        dcs = [base * 0.3, base, base * 2.5, span * 1.5]
        mono, part = build_pair(family, "euclidean", 4)
        mono.fit(points)
        part.fit(points)
        for tie_break in ("id", "strict"):
            qa = mono.quantities_multi(dcs, tie_break=tie_break)
            qb = part.quantities_multi(dcs, tie_break=tie_break)
            for x, y in zip(qa, qb):
                assert_quantities_equal(x, y)
        stats = part.partition_stats()
        assert stats["halo"] >= span  # the halo really did swallow the tiles
        assert stats["halo_regrows"] >= 1

    @pytest.mark.parametrize("scheme", ("morton", "grid"))
    def test_scheme_is_a_locality_knob_only(self, scheme):
        points = corpus("rho-ties")
        dc = safe_dc(points)
        mono = make_index("rtree", max_entries=6).fit(points)
        part = make_index(
            "partitioned",
            family="rtree",
            partitions=4,
            scheme=scheme,
            family_params={"max_entries": 6},
        ).fit(points)
        for tie_break in ("id", "strict"):
            assert_quantities_equal(
                mono.quantities(dc, tie_break=tie_break),
                part.quantities(dc, tie_break=tie_break),
            )

    def test_tiny_user_halo_is_grown_not_trusted(self):
        """A configured halo smaller than dc must auto-grow, never cap."""
        points = corpus("mixed")
        dc = safe_dc(points)
        mono = make_index("kdtree", leaf_size=8).fit(points)
        part = make_index(
            "partitioned",
            family="kdtree",
            partitions=4,
            halo=dc * 1e-6,
            family_params={"leaf_size": 8},
        ).fit(points)
        assert_quantities_equal(mono.quantities(dc), part.quantities(dc))
        stats = part.partition_stats()
        assert stats["halo"] >= dc
        assert stats["halo_regrows"] >= 1

    def test_excess_partitions_clamp_to_pair_tiles(self):
        """More tiles than the data supports clamps so every tile keeps at
        least two core points (singleton fits would be refused by e.g. the
        list family, and carry no locality anyway)."""
        points = corpus("mixed")[:10]
        dc = safe_dc(points)
        mono = make_index("list").fit(points)
        part = make_index("partitioned", family="list", partitions=64).fit(points)
        assert part.partition_stats()["partitions"] == len(points) // 2
        assert_quantities_equal(mono.quantities(dc), part.quantities(dc))


@st.composite
def lattice_case(draw):
    """Random duplicate-heavy lattice cloud + a midpoint-safe dc."""
    n = draw(st.integers(8, 60))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=n,
            max_size=n,
        )
    )
    points = np.asarray(coords, dtype=np.float64) * 0.7310585786300049
    d = pairwise_distances(points)
    iu = np.triu_indices(len(points), k=1)
    uniq = np.unique(d[iu])
    uniq = uniq[uniq > 0.0]
    if len(uniq) < 2:
        dc = 1.0
    else:
        idx = draw(st.integers(0, len(uniq) - 2))
        dc = float((uniq[idx] + uniq[idx + 1]) / 2.0)
    return points, dc


@given(case=lattice_case(), partitions=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_random_lattices_any_partition_count(case, partitions):
    points, dc = case
    mono = make_index("rtree", max_entries=6).fit(points)
    part = make_index(
        "partitioned",
        family="rtree",
        partitions=partitions,
        family_params={"max_entries": 6},
    ).fit(points)
    for tie_break in ("id", "strict"):
        assert_quantities_equal(
            mono.quantities(dc, tie_break=tie_break),
            part.quantities(dc, tie_break=tie_break),
        )
