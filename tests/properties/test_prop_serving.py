"""Serving-layer exactness properties.

The contract (ISSUE 4 acceptance): every served response — cache hits and
coalesced batches included — is **bit-identical** to a direct
``DPCIndex.quantities()``/``cluster()`` (and therefore
``DensityPeakClustering``) call on the same data.  Exercised across index
families, the adversarial corpora where an aggregation bug would show
(exact duplicates ⇒ δ ties at distance 0; integer lattices ⇒ heavy ρ ties),
and genuinely concurrent clients hammering one service.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.dpc import DensityPeakClustering
from repro.indexes.registry import make_index
from repro.serving.service import ClusteringService

from tests.conftest import safe_dc

#: ≥3 index families: one list-based exact, one cumulative-histogram, two
#: tree-based, the uniform grid.
FAMILIES = {
    "ch": {"default_bins": 16},
    "kdtree": {"leaf_size": 8},
    "quadtree": {"capacity": 8},
    "grid": {"target_occupancy": 4},
}

CORPORA = ("duplicates", "rho-ties", "mixed")


def corpus(name: str) -> np.ndarray:
    r = np.random.default_rng(hash(name) % (2**32))
    if name == "duplicates":
        base = r.normal(0.0, 1.0, size=(24, 2))
        return np.concatenate([base, base, base[:12], r.normal(2.0, 1.0, size=(20, 2))])
    if name == "rho-ties":
        return r.integers(0, 5, size=(80, 2)).astype(np.float64)
    if name == "mixed":
        blob = r.normal(0.0, 0.6, size=(40, 2))
        dup = np.round(r.normal(3.0, 0.5, size=(20, 2)), 1)
        lattice = r.integers(-2, 2, size=(20, 2)).astype(np.float64)
        return np.concatenate([blob, dup, dup[:10], lattice])
    raise KeyError(name)


def dc_grid(points: np.ndarray) -> list:
    return [safe_dc(points, fraction) for fraction in (0.1, 0.3, 0.5)]


def assert_served_equals_direct(served, reference, context=""):
    np.testing.assert_array_equal(served.rho, reference.rho, err_msg=f"rho {context}")
    np.testing.assert_array_equal(served.delta, reference.delta, err_msg=f"delta {context}")
    np.testing.assert_array_equal(served.mu, reference.mu, err_msg=f"mu {context}")


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("corpus_name", CORPORA)
def test_concurrent_served_responses_bit_identical(family, corpus_name):
    """Concurrent clients × coalesced dispatch × cache: every response equals
    the direct index call, first-hit and cache-hit alike."""
    points = corpus(corpus_name)
    direct = make_index(family, **FAMILIES[family]).fit(points)
    dcs = dc_grid(points)
    references = {
        dc: {
            "quantities": direct.quantities(dc),
            "cluster": direct.cluster(dc, n_centers=3),
        }
        for dc in dcs
    }

    with ClusteringService(linger_ms=5.0) as service:
        service.fit_snapshot("data", points, index=family, **FAMILIES[family])
        # Two sequential waves over every (dc, op): wave 1 computes (with
        # coalescing under genuine concurrency), wave 2 hits the cache.
        jobs = [(dc, op) for dc in dcs for op in ("quantities", "cluster")]
        outcomes = []
        for _ in range(2):
            barrier = threading.Barrier(len(jobs))

            def run(job):
                dc, op = job
                barrier.wait()  # maximise genuine concurrency within a wave
                kwargs = {"n_centers": 3} if op == "cluster" else {}
                return job, service.submit("data", op, dc, **kwargs).result()

            with ThreadPoolExecutor(len(jobs)) as pool:
                outcomes.extend(pool.map(run, jobs))

    hits = 0
    for (dc, op), result in outcomes:
        reference = references[dc][op]
        hits += bool(result.meta["cache_hit"])
        if op == "quantities":
            assert_served_equals_direct(result.value, reference, f"{family}/{corpus_name}")
        else:
            assert_served_equals_direct(
                result.value.quantities, reference.quantities, f"{family}/{corpus_name}"
            )
            np.testing.assert_array_equal(result.value.centers, reference.centers)
            np.testing.assert_array_equal(result.value.labels, reference.labels)
    # With every (dc, op) issued twice, memoisation must have fired at least
    # once — and those hits were compared above like any other response.
    assert hits >= 1


@pytest.mark.parametrize("family", ("ch", "kdtree", "grid"))
def test_served_matches_estimator_refit_many(family):
    """The service agrees with the high-level DensityPeakClustering sweep."""
    points = corpus("mixed")
    dcs = dc_grid(points)
    model = DensityPeakClustering(
        index=family, n_centers=3, index_params=FAMILIES[family]
    )
    model.fit(points)
    expected = model.refit_many(dcs)

    with ClusteringService() as service:
        service.fit_snapshot("data", points, index=family, **FAMILIES[family])
        for dc, reference in zip(dcs, expected):
            served = service.cluster("data", dc, n_centers=3).value
            np.testing.assert_array_equal(served.labels, reference.labels)
            np.testing.assert_array_equal(served.rho, reference.rho)
            np.testing.assert_array_equal(served.delta, reference.delta)
            np.testing.assert_array_equal(served.mu, reference.mu)


def test_multi_snapshot_isolation():
    """Requests against different snapshots never cross-contaminate, even
    when interleaved through one coalescer and one cache."""
    a_points = corpus("duplicates")
    b_points = corpus("rho-ties")
    dc_a, dc_b = safe_dc(a_points, 0.3), safe_dc(b_points, 0.3)
    ref_a = make_index("kdtree", leaf_size=8).fit(a_points).cluster(dc_a, n_centers=3)
    ref_b = make_index("grid", target_occupancy=4).fit(b_points).cluster(dc_b, n_centers=3)

    with ClusteringService(linger_ms=5.0) as service:
        service.fit_snapshot("a", a_points, index="kdtree", leaf_size=8)
        service.fit_snapshot("b", b_points, index="grid", target_occupancy=4)
        jobs = [("a", dc_a), ("b", dc_b)] * 6
        barrier = threading.Barrier(len(jobs))

        def run(job):
            name, dc = job
            barrier.wait()
            return name, service.submit(name, "cluster", dc, n_centers=3).result()

        with ThreadPoolExecutor(len(jobs)) as pool:
            for name, result in pool.map(run, jobs):
                reference = ref_a if name == "a" else ref_b
                np.testing.assert_array_equal(result.value.labels, reference.labels)
                np.testing.assert_array_equal(result.value.rho, reference.rho)


@pytest.mark.parametrize("tie_break", ("id", "strict"))
def test_tie_break_served_exactly(tie_break):
    """Both density-tie conventions survive the serving path on a corpus
    built to stress them."""
    points = corpus("rho-ties")
    dc = safe_dc(points, 0.3)
    direct = make_index("ch", default_bins=16).fit(points)
    reference = direct.quantities(dc, tie_break)
    with ClusteringService() as service:
        service.fit_snapshot("data", points, index="ch", default_bins=16)
        served = service.quantities("data", dc, tie_break=tie_break).value
        assert_served_equals_direct(served, reference, f"tie_break={tie_break}")
