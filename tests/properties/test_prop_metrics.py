"""Hypothesis: invariants of the clustering-quality metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.metrics.external import (
    adjusted_rand_index,
    fowlkes_mallows_index,
    normalized_mutual_information,
    purity_score,
    v_measure,
)
from repro.metrics.pair_metrics import pair_confusion, pairwise_precision_recall_f1

labelings = st.integers(2, 60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 5), min_size=n, max_size=n),
        st.lists(st.integers(0, 5), min_size=n, max_size=n),
    )
)


@given(labelings)
@settings(max_examples=60, deadline=None)
def test_pair_counts_partition_all_pairs(pair):
    ref, obt = map(np.asarray, pair)
    q = pair_confusion(ref, obt)
    n = len(ref)
    assert q.tp + q.fp + q.fn + q.tn == n * (n - 1) // 2
    assert min(q.tp, q.fp, q.fn, q.tn) >= 0


@given(labelings)
@settings(max_examples=60, deadline=None)
def test_metrics_bounded(pair):
    ref, obt = map(np.asarray, pair)
    p, r, f1 = pairwise_precision_recall_f1(ref, obt)
    for v in (p, r, f1):
        assert 0.0 <= v <= 1.0
    assert 0.0 <= normalized_mutual_information(ref, obt) <= 1.0 + 1e-12
    assert 0.0 <= purity_score(ref, obt) <= 1.0
    assert -1.0 <= adjusted_rand_index(ref, obt) <= 1.0 + 1e-12
    assert 0.0 <= fowlkes_mallows_index(ref, obt) <= 1.0 + 1e-12


@given(labelings)
@settings(max_examples=60, deadline=None)
def test_precision_recall_swap_duality(pair):
    """Swapping reference and obtained swaps precision and recall."""
    ref, obt = map(np.asarray, pair)
    p1, r1, f1a = pairwise_precision_recall_f1(ref, obt)
    p2, r2, f1b = pairwise_precision_recall_f1(obt, ref)
    assert p1 == r2 and r1 == p2
    assert abs(f1a - f1b) < 1e-12


@given(st.lists(st.integers(0, 5), min_size=2, max_size=60))
@settings(max_examples=60, deadline=None)
def test_self_comparison_perfect(labels):
    labels = np.asarray(labels)
    assert pairwise_precision_recall_f1(labels, labels) == (1.0, 1.0, 1.0)
    assert adjusted_rand_index(labels, labels) == 1.0
    h, c, v = v_measure(labels, labels)
    assert min(h, c, v) > 1.0 - 1e-9


@given(labelings, st.integers(1, 1000))
@settings(max_examples=40, deadline=None)
def test_relabeling_invariance(pair, offset):
    ref, obt = map(np.asarray, pair)
    renamed = obt + offset  # a pure renaming of cluster ids
    assert pairwise_precision_recall_f1(ref, obt) == pairwise_precision_recall_f1(
        ref, renamed
    )
    assert adjusted_rand_index(ref, obt) == adjusted_rand_index(ref, renamed)


@given(labelings)
@settings(max_examples=40, deadline=None)
def test_ari_relates_to_pair_counts(pair):
    """ARI must be 1 exactly when FP = FN = 0 (identical partitions)."""
    ref, obt = map(np.asarray, pair)
    q = pair_confusion(ref, obt)
    ari = adjusted_rand_index(ref, obt)
    if q.fp == 0 and q.fn == 0:
        assert ari == 1.0
