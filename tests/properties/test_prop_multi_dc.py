"""Property tests for the multi-dc sweep API.

Contract: for every registered index, ``rho_all_multi`` / ``quantities_multi``
agree **element-wise** with the per-``dc`` single calls — and, for exact
indexes, with ``naive_quantities`` — over random point sets and random ``dc``
grids.  This is what lets the harness swap a sequential sweep for the batched
pass without changing a single reported number.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.baseline import naive_quantities
from repro.geometry.distance import pairwise_distances
from repro.indexes.registry import INDEX_CLASSES, make_index

from tests.conftest import assert_quantities_equal

#: name -> constructor kwargs (approximate indexes need τ explicitly).
INDEX_PARAMS = {
    "list": {},
    "ch": {},
    "rn-list": {"tau": 4.0},
    "rn-ch": {"tau": 4.0},
    "quadtree": {},
    "rtree": {},
    "kdtree": {},
    "grid": {},
    "partitioned": {"partitions": 3},
}


def test_every_registered_index_is_covered():
    """New registry entries must opt into the sweep property tests."""
    assert set(INDEX_PARAMS) == set(INDEX_CLASSES)


@st.composite
def points_and_dc_grid(draw):
    n = draw(st.integers(8, 40))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)),
            min_size=n,
            max_size=n,
        )
    )
    points = np.asarray(coords, dtype=np.float64) * 0.7310585786300049
    d = pairwise_distances(points)
    iu = np.triu_indices(len(points), k=1)
    uniq = np.unique(d[iu])
    uniq = uniq[uniq > 0.0]
    # All-coincident point sets are rejected by the auto-bin-width CH index
    # (by design); every other degenerate layout stays in scope.
    assume(len(uniq) > 0)
    if len(uniq) < 3:
        dcs = [0.5, 1.0, 2.0]
    else:
        # Midpoints of consecutive unique distances: no distance sits within
        # float noise of any dc, so strict-< comparisons cannot flip.  Only
        # len(uniq)-1 distinct gaps exist, so cap the draw there.
        k = draw(st.integers(2, min(6, len(uniq) - 1)))
        idx = draw(
            st.lists(
                st.integers(0, len(uniq) - 2), min_size=k, max_size=k, unique=True
            )
        )
        dcs = [float((uniq[i] + uniq[i + 1]) / 2.0) for i in idx]
    return points, dcs


@pytest.mark.parametrize("name", sorted(INDEX_PARAMS))
@settings(max_examples=25, deadline=None)
@given(data=points_and_dc_grid())
def test_multi_agrees_with_single_and_naive(name, data):
    points, dcs = data
    index = make_index(name, **INDEX_PARAMS[name]).fit(points)

    rhos = index.rho_all_multi(dcs)
    assert rhos.shape == (len(dcs), len(points))
    multi = index.quantities_multi(dcs)
    assert [q.dc for q in multi] == [float(dc) for dc in dcs]

    for dc, rho_row, q_multi in zip(dcs, rhos, multi):
        np.testing.assert_array_equal(
            rho_row, index.rho_all(float(dc)), err_msg=f"{name} rho_all dc={dc}"
        )
        single = index.quantities(float(dc))
        assert_quantities_equal(single, q_multi)
        if index.exact:
            assert_quantities_equal(naive_quantities(points, float(dc)), q_multi)


@pytest.mark.parametrize("name", sorted(INDEX_PARAMS))
def test_multi_rejects_bad_grids(name):
    rng = np.random.default_rng(3)
    index = make_index(name, **INDEX_PARAMS[name]).fit(rng.uniform(0, 5, (20, 2)))
    with pytest.raises(ValueError, match="positive"):
        index.quantities_multi([0.5, -1.0])
    with pytest.raises(ValueError, match="non-empty"):
        index.rho_all_multi([])


@pytest.mark.parametrize("tie_break", ["id", "strict"])
def test_multi_honours_tie_break(tie_break):
    """Lattice points (maximal density ties) under both conventions."""
    points = np.array([(x, y) for x in range(7) for y in range(7)], dtype=float)
    dcs = [1.2, 1.7, 3.3]
    for name in ("list", "ch", "rtree", "grid"):
        index = make_index(name, **INDEX_PARAMS[name]).fit(points)
        multi = index.quantities_multi(dcs, tie_break=tie_break)
        for dc, q in zip(dcs, multi):
            base = naive_quantities(points, dc, tie_break=tie_break)
            assert_quantities_equal(base, q)
