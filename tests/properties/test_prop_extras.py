"""Hypothesis: invariants of the extras — variants, streaming, persistence."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.baseline import naive_quantities
from repro.core.quantities import DensityOrder
from repro.extras.streaming import StreamingDPC
from repro.extras.variants import gaussian_density, knn_density, variant_quantities
from repro.geometry.distance import pairwise_distances
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex

from tests.conftest import assert_quantities_equal

coords = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


def point_sets(min_n=4, max_n=40):
    return st.integers(min_n, max_n).flatmap(
        lambda n: hnp.arrays(np.float64, (n, 2), elements=coords)
    )


@given(points=point_sets(), dc=st.floats(0.1, 10.0))
@settings(max_examples=30, deadline=None)
def test_gaussian_density_bounds(points, dc):
    """0 ≤ ρ_gauss(p) ≤ n-1, and ρ of a point with a twin is ≥ 1's worth."""
    rho = gaussian_density(points, dc)
    n = len(points)
    assert (rho >= -1e-9).all()
    assert (rho <= n - 1 + 1e-9).all()


@given(points=point_sets(min_n=6), k=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_knn_density_antitone_in_radius(points, k):
    """Objects with smaller kNN radii must have (weakly) larger density."""
    assume(len(np.unique(points, axis=0)) > 1)
    index = ListIndex().fit(points)
    rho = knn_density(index, k=k, mode="max")
    radius = index.neighbor_dists[:, k - 1]
    order = np.argsort(radius)
    assert (np.diff(rho[order]) <= 1e-9).all()


@given(points=point_sets(min_n=6), dc=st.floats(0.2, 5.0))
@settings(max_examples=20, deadline=None)
def test_variant_delta_is_true_nearest_denser(points, dc):
    assume(len(np.unique(points, axis=0)) > 1)
    rho = gaussian_density(points, dc)
    q = variant_quantities(KDTreeIndex(leaf_size=3).fit(points), rho, dc=dc)
    d = pairwise_distances(points)
    order = q.density_order
    for p in range(len(points)):
        denser = [j for j in range(len(points)) if order.is_denser(j, p)]
        if denser:
            assert np.isclose(q.delta[p], d[p, denser].min())
        else:
            assert np.isclose(q.delta[p], d[p].max())


@given(
    batches=st.lists(point_sets(min_n=3, max_n=15), min_size=1, max_size=4),
    dc=st.floats(0.3, 5.0),
)
@settings(max_examples=15, deadline=None)
def test_streaming_always_equals_batch(batches, dc):
    """StreamingDPC's quantities equal a from-scratch run at every prefix."""
    d = batches[0].shape[1]
    assume(all(b.shape[1] == d for b in batches))
    stream = StreamingDPC(
        index_factory=lambda: KDTreeIndex(leaf_size=4),
        rebuild_factor=0.7,
        min_buffer=5,
    )
    for batch in batches:
        stream.add(batch)
        expected = naive_quantities(stream.points(), dc)
        got = stream.quantities(dc)
        assert_quantities_equal(expected, got)


@given(points=point_sets(min_n=5))
@settings(max_examples=15, deadline=None)
def test_persist_roundtrip_property(points, tmp_path_factory):
    from repro.indexes.persist import load_index, save_index

    path = str(tmp_path_factory.mktemp("persist") / "index.npz")
    index = KDTreeIndex(leaf_size=4).fit(points)
    save_index(index, path)
    restored = load_index(path)
    assert_quantities_equal(index.quantities(1.0), restored.quantities(1.0))
