"""DPC vs DBSCAN vs k-means (the paper's Section 1 positioning).

Two workloads make the argument:
* interleaved half-moons — non-convex clusters where centroid methods fail;
* blobs with noise — where DPC's decision graph separates outliers.

Run:  python examples/dpc_vs_dbscan_kmeans.py
"""

import numpy as np

from repro import DensityPeakClustering
from repro.extras import dbscan, kmeans
from repro.metrics import adjusted_rand_index


def moons(n_per=250, seed=0):
    rng = np.random.default_rng(seed)
    t = rng.uniform(0, np.pi, n_per)
    upper = np.column_stack([np.cos(t), np.sin(t)]) + rng.normal(0, 0.07, (n_per, 2))
    lower = np.column_stack([1 - np.cos(t), 0.5 - np.sin(t)]) + rng.normal(
        0, 0.07, (n_per, 2)
    )
    points = np.concatenate([upper, lower])
    truth = np.concatenate([np.zeros(n_per), np.ones(n_per)]).astype(np.int64)
    return points, truth


def noisy_blobs(seed=1):
    rng = np.random.default_rng(seed)
    pts = np.concatenate(
        [
            rng.normal([0, 0], 0.4, (200, 2)),
            rng.normal([5, 5], 0.5, (200, 2)),
            rng.normal([9, 0], 0.3, (200, 2)),
            rng.uniform(-2, 11, (60, 2)),
        ]
    )
    truth = np.concatenate(
        [np.zeros(200), np.ones(200), np.full(200, 2), np.full(60, -1)]
    ).astype(np.int64)
    return pts, truth


def report(name, truth, labels, mask=None):
    if mask is None:
        mask = np.ones(len(truth), dtype=bool)
    ari = adjusted_rand_index(truth[mask], labels[mask])
    print(f"  {name:<22} ARI = {ari:+.3f}")
    return ari


def main() -> None:
    print("workload 1: two interleaved half-moons (non-convex)")
    points, truth = moons()
    dpc = DensityPeakClustering(index="kdtree", dc=0.25, n_centers=2)
    a1 = report("DPC (kd-tree index)", truth, dpc.fit_predict(points))
    db = dbscan(points, eps=0.22, min_pts=4)
    mask = db.labels >= 0
    a2 = report("DBSCAN", truth, db.labels, mask)
    km = kmeans(points, k=2, seed=0)
    a3 = report("k-means", truth, km.labels)
    assert min(a1, a2) > a3, "density methods must beat k-means on moons"

    print("\nworkload 2: three blobs + uniform noise")
    points, truth = noisy_blobs()
    core = truth >= 0
    dpc = DensityPeakClustering(index="rtree", dc=0.6, n_centers=3)
    report("DPC", truth, dpc.fit_predict(points), core)
    db = dbscan(points, eps=0.4, min_pts=5)
    report("DBSCAN (core pts)", truth, db.labels, core & (db.labels >= 0))
    km = kmeans(points, k=3, seed=0)
    report("k-means", truth, km.labels, core)
    print(
        "\nnote: DPC needed one parameter (dc) and no noise threshold; "
        "DBSCAN needed (eps, min_pts); k-means needed k and still cannot "
        "flag noise."
    )


if __name__ == "__main__":
    main()
