"""Paper Figure 1 in miniature: the same data, four dc values, four stories.

DPC's clustering is highly sensitive to dc — the paper's motivation for
building an index once and re-running the two queries cheaply per dc.

Run:  python examples/dc_sensitivity.py
"""

import time

import numpy as np

from repro import DensityPeakClustering
from repro.datasets import gowalla


def describe(labels: np.ndarray, halo: np.ndarray | None = None) -> str:
    sizes = sorted(np.bincount(labels), reverse=True)
    head = ", ".join(str(s) for s in sizes[:6])
    tail = " ..." if len(sizes) > 6 else ""
    noise = f"; {int(halo.sum())} halo" if halo is not None else ""
    return f"{len(sizes):3d} clusters; sizes {head}{tail}{noise}"


def main() -> None:
    data = gowalla(n=4000, seed=0)
    print(f"{data.name}: {data.n} simulated check-ins over the US + Caribbean\n")

    model = DensityPeakClustering(index="rtree", dc=0.05)
    built = time.perf_counter()
    model.fit(data.points)
    build_and_first = time.perf_counter() - built

    print(f"{'dc':>8} | clustering")
    print("-" * 60)
    print(f"{0.05:>8} | {describe(model.labels_)}")

    # The whole remaining grid in one batched pass over the built index.
    dcs = (0.2, 1.0, 5.0)
    start = time.perf_counter()
    results = model.refit_many(dcs)
    elapsed = time.perf_counter() - start
    for dc, result in zip(dcs, results):
        print(f"{dc:>8} | {describe(result.labels, result.halo)}")

    print(
        f"\nfirst fit (index build + query): {build_and_first:.2f}s; the other "
        f"{len(dcs)} dc values reused the index in one batched refit_many pass "
        f"({elapsed:.2f}s total) — the paper's core value proposition."
    )


if __name__ == "__main__":
    main()
