"""Serve exact DPC queries over HTTP: snapshots, coalescing, result cache.

Starts an in-process serving stack (the same one ``python -m repro serve``
runs), publishes the S1 benchmark as a snapshot, and issues HTTP/JSON
queries against it — demonstrating the exactness contract (served responses
are bit-identical to direct index calls, even through JSON), the result
cache, and coalesced dispatch under concurrency.

Run:  PYTHONPATH=src python examples/serve_quickstart.py
"""

import json
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.datasets import s1
from repro.indexes.kdtree import KDTreeIndex
from repro.serving import ClusteringService, make_server


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def main() -> None:
    data = s1(n=2000, seed=7)

    # One service = snapshot store + request coalescer + result cache.
    service = ClusteringService(dispatch="coalesce", linger_ms=2.0)
    server = make_server(service, port=0)  # port 0 = pick a free one
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address
    base = f"http://{host}:{port}"
    print(f"serving on {base}")

    # Publish a snapshot by POSTing points (fits a kd-tree in-process).
    published = post(base, "/v1/snapshots/s1", {
        "points": data.points.tolist(),
        "index": "kdtree",
    })["published"]
    print(f"published snapshot 's1': n={published['n']}, "
          f"fingerprint={published['fingerprint'][:12]}…")

    # Query it — and verify the served labels equal a direct index call.
    out = post(base, "/v1/query", {
        "snapshot": "s1", "op": "cluster", "dc": 30_000.0, "n_centers": 15,
    })
    direct = KDTreeIndex().fit(data.points).cluster(30_000.0, n_centers=15)
    assert out["labels"] == direct.labels.tolist()
    assert np.array_equal(np.asarray(out["delta"]), direct.delta)
    print(f"clusters: {out['n_clusters']}  (bit-identical to a direct call, "
          f"cache_hit={out['meta']['cache_hit']})")

    # The same query again is a cache hit keyed on the snapshot fingerprint.
    again = post(base, "/v1/query", {
        "snapshot": "s1", "op": "cluster", "dc": 30_000.0, "n_centers": 15,
    })
    print(f"repeat query: cache_hit={again['meta']['cache_hit']}")

    # Concurrent clients exploring different dc values coalesce into one
    # batched multi-dc engine run instead of eight serial calls.
    dcs = [5_000.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0, 50_000.0]
    with ThreadPoolExecutor(len(dcs)) as pool:
        list(pool.map(
            lambda dc: post(base, "/v1/query", {
                "snapshot": "s1", "op": "quantities", "dc": dc,
                "use_cache": False,
            }),
            dcs,
        ))
    stats = service.coalescer.stats
    print(f"dc sweep from {len(dcs)} concurrent clients: "
          f"{stats['engine_calls']} engine calls for {stats['requests']} requests "
          f"(largest batch: {stats['largest_batch']})")

    server.shutdown()
    service.close()


if __name__ == "__main__":
    main()
