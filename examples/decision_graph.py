"""The decision graph on the 28-point toy layout (paper Figure 2).

Renders an ASCII ρ-vs-δ scatter: centres appear top-right (high ρ, high δ),
outliers top-left (low ρ, high δ), everything else hugs the x-axis.

Run:  python examples/decision_graph.py
"""

import numpy as np

from repro import DensityPeakClustering, select_centers_threshold, suggest_outliers
from repro.datasets import science_toy


def ascii_scatter(rho, delta, width=60, height=18, marks=None):
    """Plain-text scatter of (rho, delta) with optional marked ids."""
    marks = marks or {}
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    rho_max = max(rho.max(), 1)
    delta_max = delta.max()
    for p, (r, d) in enumerate(zip(rho, delta)):
        x = int(round(r / rho_max * width))
        y = int(round(d / delta_max * height))
        char = marks.get(p, "·")
        grid[height - y][x] = char
    lines = ["delta"]
    lines += ["|" + "".join(row) for row in grid]
    lines += ["+" + "-" * (width + 1) + "> rho"]
    return "\n".join(lines)


def main() -> None:
    data = science_toy()
    model = DensityPeakClustering(index="list", dc=0.5, n_centers=2)
    model.fit(data.points)
    q = model.result_.quantities

    centers = set(model.centers_.tolist())
    outliers = set(suggest_outliers(q, rho_max=1, delta_min=1.0).tolist())
    marks = {p: "C" for p in centers}
    marks.update({p: "o" for p in outliers})

    print("28 points: two groups + three isolated objects")
    print("C = selected centre, o = decision-graph outlier\n")
    print(ascii_scatter(q.rho, q.delta, marks=marks))

    print("\ncentres:", sorted(centers), "  outliers:", sorted(outliers))
    same = select_centers_threshold(q, rho_min=5, delta_min=1.0)
    assert set(same.tolist()) == centers, "threshold reading matches top-k"
    print("cluster sizes:", np.bincount(model.labels_).tolist())


if __name__ == "__main__":
    main()
