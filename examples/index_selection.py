"""The paper's Section 5.5 ("Discussion") as executable advice.

Builds every index over the same dataset and prints the three costs a user
trades off — construction time, memory, query time — followed by the
paper's selection guidance evaluated against the measured numbers.

Run:  python examples/index_selection.py [n_points]
"""

import sys
import time

from repro import make_index
from repro.datasets import birch
from repro.harness import Table, time_quantities

CANDIDATES = [
    ("list", {}),
    ("ch", {}),
    ("rn-list", {"tau": 250_000.0}),
    ("rn-ch", {"tau": 250_000.0, "bin_width": 8_000.0}),
    ("rtree", {}),
    ("quadtree", {}),
    ("kdtree", {}),
    ("grid", {}),
]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    data = birch(n=n, seed=0)
    dc = data.params.dc_default
    print(f"{data.name}: n = {data.n}, dc = {dc}\n")

    table = Table(
        "index trade-offs (build once, query per dc)",
        ["index", "build_s", "memory_mb", "query_s", "exact"],
    )
    measured = {}
    for name, params in CANDIDATES:
        index = make_index(name, **params)
        index.fit(data.points)
        _, timing = time_quantities(index, dc)
        row = dict(
            index=name,
            build_s=index.build_seconds,
            memory_mb=index.memory_bytes() / 2**20,
            query_s=timing.total_seconds,
            exact=type(index).exact,
        )
        measured[name] = row
        table.add_row(**row)
    print(table.render())

    print("\npaper's guidance (Section 5.5), checked against this run:")
    checks = [
        (
            "small data + many dc runs -> CH Index",
            measured["ch"]["query_s"] <= measured["rtree"]["query_s"],
        ),
        (
            "tree indexes dominate on memory",
            measured["rtree"]["memory_mb"] < 0.1 * measured["list"]["memory_mb"],
        ),
        (
            "tree indexes dominate on construction",
            measured["rtree"]["build_s"] < measured["list"]["build_s"],
        ),
        (
            "tau-truncation shrinks list memory",
            measured["rn-list"]["memory_mb"] < measured["list"]["memory_mb"],
        ),
    ]
    for claim, holds in checks:
        print(f"  [{'ok' if holds else '??'}] {claim}")


if __name__ == "__main__":
    main()
