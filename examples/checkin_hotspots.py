"""Find check-in hot-spots (cities) in simulated Brightkite data.

The paper's real datasets are location-based-social-network check-ins; the
natural application of DPC there is hot-spot discovery: cluster centres are
the densest points of each metro area, the halo is travel noise.

Run:  python examples/checkin_hotspots.py
"""

import numpy as np

from repro import DensityPeakClustering, suggest_outliers
from repro.datasets import brightkite
from repro.metrics import normalized_mutual_information


def main() -> None:
    data = brightkite(n=6000, seed=1)
    n_noise = int((data.labels == -1).sum())
    print(
        f"{data.name}: {data.n} check-ins, {data.meta['cities']} cities, "
        f"{n_noise} background check-ins"
    )

    model = DensityPeakClustering(index="rtree", dc=0.5, halo=True)
    model.fit(data.points)
    print(f"\nhot-spots found: {model.n_clusters_}")

    # Rank hot-spots by check-in volume and show their coordinates.
    sizes = np.bincount(model.labels_)
    order = np.argsort(-sizes)
    print(f"\n{'rank':>4} {'check-ins':>10} {'lon':>9} {'lat':>7}")
    for rank, cluster in enumerate(order[:8], start=1):
        center = model.centers_[cluster]
        lon, lat = data.points[center]
        print(f"{rank:>4} {sizes[cluster]:>10} {lon:>9.2f} {lat:>7.2f}")

    halo_count = int(model.halo_.sum())
    print(f"\nhalo (border/noise) check-ins: {halo_count}")

    # Compare against the generator's city assignment (city points only).
    mask = data.labels >= 0
    nmi = normalized_mutual_information(data.labels[mask], model.labels_[mask])
    print(f"agreement with the simulated city structure (NMI): {nmi:.3f}")

    # Isolated check-ins: low density, far from anything denser.
    q = model.result_.quantities
    outliers = suggest_outliers(q, rho_max=2, delta_min=2.0)
    print(f"isolated check-ins (decision-graph outliers): {len(outliers)}")


if __name__ == "__main__":
    main()
