"""Density variants (related-work extensions) + index persistence.

Shows two things beyond the paper's core pipeline:

1. the cut-off density of Eq. 1 swapped for a Gaussian-kernel density
   (Science'14's suggestion) and a kNN density (Wang & Song style) —
   the same indexes serve the δ query for all three;
2. saving the expensive List Index to disk and reloading it in a later
   session (construction is the O(n² log n) part; do it once).

Run:  python examples/density_variants.py
"""

import os
import tempfile
import time

import numpy as np

from repro import ListIndex, assign_labels, load_index, save_index, select_centers_top_k
from repro.datasets import s1
from repro.extras import gaussian_density, knn_density, variant_quantities
from repro.metrics import adjusted_rand_index


def cluster_with_density(index, rho, dc, k, points):
    q = variant_quantities(index, rho, dc=dc)
    centers = select_centers_top_k(q, k)
    return assign_labels(q, centers, points=points)


def main() -> None:
    data = s1(n=1500, seed=4)
    dc = 30_000.0
    print(f"{data.name}: n = {data.n}, 15 true clusters, dc = {dc:g}\n")

    start = time.perf_counter()
    index = ListIndex().fit(data.points)
    print(f"List Index built in {time.perf_counter() - start:.2f}s "
          f"({index.memory_bytes() / 2**20:.1f} MB)")

    # --- three density definitions, one δ machinery -----------------------
    cutoff_rho = index.rho_all(dc).astype(np.float64)
    kernel_rho = gaussian_density(data.points, dc)
    knn_rho = knn_density(index, k=30)

    print(f"\n{'density':<18} {'ARI vs ground truth':>20}")
    for name, rho in (
        ("cut-off (Eq. 1)", cutoff_rho),
        ("gaussian kernel", kernel_rho),
        ("kNN (k=30)", knn_rho),
    ):
        labels = cluster_with_density(index, rho, dc, 15, data.points)
        ari = adjusted_rand_index(data.labels, labels)
        print(f"{name:<18} {ari:>20.3f}")

    # --- persistence -------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "s1-list-index.npz")
        save_index(index, path)
        size_mb = os.path.getsize(path) / 2**20
        start = time.perf_counter()
        restored = load_index(path)
        load_s = time.perf_counter() - start
        same = np.array_equal(restored.rho_all(dc), index.rho_all(dc))
        print(
            f"\nsaved index: {size_mb:.1f} MB on disk; reloaded in {load_s:.2f}s; "
            f"answers identical: {same}"
        )


if __name__ == "__main__":
    main()
