"""Live evolving-hotspot clustering of a check-in stream (extension).

Real check-in streams are non-stationary: the metro that dominates the
volume changes over time.  This demo ingests a drifting simulated stream
(:func:`repro.datasets.simulate_checkin_stream`) through the LSM-style
delta path — every batch folds into a small side image, queries stay exact
with no rebuild — and contrasts three density views at each checkpoint:

* **cumulative** — exact ρ over everything seen (the old hotspot never
  fades: history dominates);
* **windowed** — only the trailing window counts (hard cut-off recency);
* **decayed** — old arrivals' density contribution halves every
  ``half_life`` arrivals (smooth recency).

The reported "hot city" is the city centre nearest the ρ-max point of each
view: the recency views track the drift while the cumulative view lags.

Run:  python examples/streaming_checkins.py
"""

import numpy as np

from repro.datasets import simulate_checkin_stream
from repro.extras import StreamingDPC


def hot_city(points: np.ndarray, rho: np.ndarray, centers: np.ndarray) -> int:
    """City whose centre is nearest the densest point of a view."""
    peak = points[int(np.argmax(rho))]
    return int(np.argmin(((centers - peak) ** 2).sum(axis=1)))


def main() -> None:
    n_batches, batch_size = 16, 500
    batches, centers = simulate_checkin_stream(
        n_batches, batch_size, n_cities=25, seed=7
    )
    dc = 0.35
    window = 2 * batch_size
    half_life = 1.5 * batch_size

    stream = StreamingDPC(rebuild_factor=0.5, min_buffer=128)
    print(
        f"drifting check-in stream: {n_batches} batches x {batch_size} points, "
        f"dc = {dc}\nwindow = {window} arrivals, half-life = {half_life:g} arrivals\n"
    )
    print(
        f"{'batch':>5} {'points':>7} {'delta':>6} {'compactions':>11} "
        f"{'hot(cumulative)':>15} {'hot(windowed)':>13} {'hot(decayed)':>12}"
    )

    for i, (points, _labels) in enumerate(batches, start=1):
        stream.add(points)
        if i % 4 and i != n_batches:
            continue
        pts = stream.points()
        full = stream.quantities(dc)
        win = stream.windowed_quantities(dc, window=window)
        dec = stream.decayed_quantities(dc, half_life=half_life)
        print(
            f"{i:>5} {stream.n:>7} {stream.n_buffered:>6} "
            f"{stream.rebuild_count - 1:>11} "
            f"{'city ' + str(hot_city(pts, full.rho, centers)):>15} "
            f"{'city ' + str(hot_city(pts[-window:], win.rho, centers)):>13} "
            f"{'city ' + str(hot_city(pts, dec.rho, centers)):>12}"
        )

    result = stream.cluster(dc)
    print(
        f"\nfinal exact clustering: {result.n_clusters} clusters over "
        f"{stream.n} points, {stream.rebuild_count - 1} compactions total — "
        "delta ingest kept every intermediate view exact without a single "
        "from-scratch rebuild, and the recency views followed the hotspot "
        "drift that the cumulative density hides."
    )


if __name__ == "__main__":
    main()
