"""Streaming clustering of arriving check-ins (extension).

The paper's check-in datasets grow continuously in reality.  StreamingDPC
keeps the clustering exact while amortising index rebuilds geometrically:
ingest Gowalla-style batches and watch the hot-spot map evolve.

Run:  python examples/streaming_checkins.py
"""

import numpy as np

from repro.datasets import gowalla
from repro.extras import StreamingDPC


def main() -> None:
    data = gowalla(n=6000, seed=3)
    rng = np.random.default_rng(0)
    order = rng.permutation(data.n)
    batches = np.array_split(data.points[order], 12)

    stream = StreamingDPC(rebuild_factor=0.5, min_buffer=128)
    dc = 0.4
    print(f"simulated check-in stream: {data.n} points in {len(batches)} batches, dc = {dc}\n")
    print(f"{'batch':>5} {'points':>7} {'buffered':>8} {'rebuilds':>8} {'clusters':>8}")

    for i, batch in enumerate(batches, start=1):
        stream.add(batch)
        if i % 3 == 0 or i == len(batches):
            result = stream.cluster(dc)
            print(
                f"{i:>5} {stream.n:>7} {stream.n_buffered:>8} "
                f"{stream.rebuild_count:>8} {result.n_clusters:>8}"
            )

    print(
        f"\n{stream.rebuild_count} index rebuilds for {len(batches)} batches — "
        "the geometric rebuild schedule keeps total construction work within "
        "a constant factor of one final build, while every intermediate "
        "clustering stayed exact."
    )


if __name__ == "__main__":
    main()
