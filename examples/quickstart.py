"""Quickstart: cluster the S1 benchmark with an index-accelerated DPC.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DensityPeakClustering
from repro.datasets import s1


def main() -> None:
    data = s1(n=2000, seed=7)
    print(f"dataset: {data.name}, n = {data.n} points, 15 true clusters")

    # Build the CH Index once; dc follows the paper's S1 setting.
    model = DensityPeakClustering(
        index="ch",
        dc=30_000,
        n_centers=15,
        index_params={"bin_width": data.params.w_default},
    )
    model.fit(data.points)

    print(f"\nclusters found: {model.n_clusters_}")
    sizes = np.bincount(model.labels_)
    print("cluster sizes:", ", ".join(str(s) for s in sorted(sizes, reverse=True)))

    print("\ntop of the decision graph (centers have high rho AND delta):")
    print(model.decision_graph_.as_table(limit=8))

    # The headline feature: trying another dc reuses the index.
    model.refit(10_000)
    print(f"\nafter refit(dc=10000): {model.n_clusters_} clusters "
          f"(index was not rebuilt)")

    stats = model.index_.stats()
    print(f"\nindex work counters: {stats.as_dict()}")


if __name__ == "__main__":
    main()
