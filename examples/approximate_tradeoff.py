"""The τ-approximation trade-off (paper §3.3, Figures 8–10 in miniature).

Sweeps the neighbour threshold τ on the Birch stand-in and reports, for each
τ: index memory, query time, and clustering quality against exact DPC.

Run:  python examples/approximate_tradeoff.py
"""

from repro import RNListIndex, RTreeIndex, assign_labels, select_centers_auto, select_centers_top_k
from repro.datasets import birch
from repro.harness import Table, time_quantities
from repro.metrics import pairwise_precision_recall_f1


def main() -> None:
    data = birch(n=3000, seed=0)
    dc = data.params.dc_default
    print(f"{data.name}: n = {data.n}, dc = {dc}")

    # Exact reference clustering (tree index: exact, low memory).
    exact = RTreeIndex().fit(data.points)
    q_ref = exact.quantities(dc)
    centers_ref = select_centers_auto(q_ref, min_centers=2)
    labels_ref = assign_labels(q_ref, centers_ref, points=data.points)
    k = len(centers_ref)
    print(f"exact DPC finds {k} clusters\n")

    table = Table(
        "tau sweep: memory vs speed vs quality",
        ["tau", "tau/dc", "memory_mb", "query_s", "precision", "recall", "f1"],
    )
    for tau in (dc / 10, dc / 2, dc, 2 * dc, 5 * dc):
        index = RNListIndex(tau=float(tau)).fit(data.points)
        q, timing = time_quantities(index, dc)
        centers = select_centers_top_k(q, k)
        labels = assign_labels(q, centers, points=data.points)
        p, r, f1 = pairwise_precision_recall_f1(labels_ref, labels)
        table.add_row(
            tau=float(tau),
            **{"tau/dc": tau / dc},
            memory_mb=index.memory_bytes() / 2**20,
            query_s=timing.total_seconds,
            precision=p,
            recall=r,
            f1=f1,
        )
    print(table.render())
    print(
        "\nreading: once tau >= dc the clustering matches exact DPC almost "
        "perfectly at a fraction of the full N-List memory; below dc, rho is "
        "truncated and quality collapses — the paper's Figure 10."
    )


if __name__ == "__main__":
    main()
