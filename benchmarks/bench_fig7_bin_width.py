"""Figure 7 — CH Index running time vs bin width w.

Paper shape: larger w ⇒ longer N-List sections to search ⇒ slower ρ; when
dc is an exact multiple of w the bin density is the answer and the time
dips below the trend.
"""

import pytest

from repro.indexes.rn_list import RNCHIndex


@pytest.mark.parametrize("w_position", [0, 1, 2, 3])
@pytest.mark.parametrize("dataset_name", ["birch", "range_ds"])
def test_fig7_rho_time_vs_w(benchmark, request, dataset_name, w_position):
    ds = request.getfixturevalue(dataset_name)
    params = ds.params
    w = params.w_grid[w_position]
    dc = params.fig7_dc[1]  # the middle dc of the panel
    index = RNCHIndex(tau=params.tau_star, bin_width=float(w)).fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, w=w, dc=dc)
    benchmark(index.rho_all, float(dc))


def test_fig7_edge_dip(benchmark, birch):
    """dc exactly on a stored bin edge answers without any section search.

    The edge fast path fires only when the stored edge reproduces dc
    bit-for-bit (w * k == dc); 4.0 * w is an exact float product, so this
    stays on the O(1) path after the FP-safety fix.
    """
    ds = birch
    w = ds.params.w_grid[1]
    index = RNCHIndex(tau=ds.params.tau_star, bin_width=float(w)).fit(ds.points)
    dc = 4.0 * w  # exact multiple
    benchmark.extra_info.update(dataset=ds.name, w=w, dc=dc, edge=True)
    benchmark(index.rho_all, float(dc))
    index.reset_stats()
    index.rho_all(float(dc))
    assert index.stats().binary_searches == 0


@pytest.mark.parametrize("dataset_name", ["birch", "range_ds"])
def test_fig7_panel_dcs_batched(benchmark, request, dataset_name):
    """All three panel dc values of Figure 7 in one quantities_multi pass."""
    ds = request.getfixturevalue(dataset_name)
    params = ds.params
    w = params.w_grid[1]
    index = RNCHIndex(tau=params.tau_star, bin_width=float(w)).fit(ds.points)
    dcs = [float(dc) for dc in params.fig7_dc]
    benchmark.extra_info.update(dataset=ds.name, w=w, n_dcs=len(dcs))
    benchmark(index.quantities_multi, dcs)
