"""Closed-loop load benchmark for the serving layer (serial vs coalesced).

For each benchmarked index, publishes one snapshot into a
:class:`~repro.serving.service.ClusteringService` and drives it with
``--clients`` closed-loop threads issuing ``cluster`` requests drawn from a
``dc`` grid — once with per-request **serial** dispatch, once with
**coalesced** dispatch through the batched multi-``dc`` kernels — recording
throughput and p50/p95/p99 latency, then **appends** a record to
``BENCH_serving.json`` (a list of records, the perf trajectory file).

The dispatch rounds run with the result cache *disabled* so they measure
the engine path, not memoisation; a third warm-cache round is recorded
separately for observability.  Bit-identity of a sample of served results
against direct index calls is asserted along the way.

Honesty note: the record carries ``cpu_count``/``usable_cpus``.  Unlike
worker scaling, coalescing does **not** need multiple cores to win — it
replaces N engine runs with one batched run — so single-core gains here are
real, but absolute numbers from a starved CI box are still just smoke.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_load.py --quick
    PYTHONPATH=src python benchmarks/bench_serving_load.py --n 20000 --clients 8
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import obs
from repro.datasets.loaders import load_dataset
from repro.indexes.registry import make_index
from repro.obs.provenance import append_record
from repro.serving.loadgen import run_load, sweep_open_loop
from repro.serving.service import ClusteringService

#: Tree/grid families only by default: the O(n²)-space list indexes don't fit
#: a 20k-point run in modest memory (pass --indexes ch,... explicitly for
#: small n; the --quick smoke and unit tests cover them there).
METHODS = ("kdtree", "quadtree", "rtree", "grid")


def _verify_exactness(service: ClusteringService, index_name: str, points, dc: float) -> None:
    served = service.cluster("bench", dc, n_centers=4, use_cache=False).value
    reference = make_index(index_name).fit(points).cluster(dc, n_centers=4)
    np.testing.assert_array_equal(served.rho, reference.rho)
    np.testing.assert_array_equal(served.delta, reference.delta)
    np.testing.assert_array_equal(served.labels, reference.labels)


def run(
    n: int = 20000,
    dataset: str = "s1",
    clients: int = 8,
    requests_per_client: int = 24,
    dc_count: int = 8,
    linger_ms: float = 2.0,
    max_batch: int = 64,
    seed: int = 0,
    indexes: "tuple[str, ...] | None" = None,
    trace_sample: int = 0,
    offered_rps: "tuple[float, ...] | None" = None,
    open_duration_s: float = 2.0,
    workers: int = 0,
) -> dict:
    """Measure every method; returns one BENCH_serving.json record.

    ``offered_rps`` switches an additional **open-loop** round on: for each
    method, the coalesced service is swept across those Poisson arrival
    rates (latency-vs-offered-load plus the saturation throughput) —
    closed-loop rounds stay the default and always run.  ``workers > 0``
    runs every service with that many supervised shared-memory serving
    workers, so the records also carry failover counters.
    """
    ds = load_dataset(dataset, n=n, seed=seed)
    grid = [float(v) for v in ds.params.dc_grid]
    lo, hi = min(grid), max(grid)
    dcs = [float(v) for v in np.linspace(lo, hi, dc_count)]
    record = {
        "benchmark": "serving_load",
        "dataset": ds.name,
        "n": int(ds.n),
        "dcs": dcs,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "linger_ms": linger_ms,
        "max_batch": max_batch,
        "workers": workers,
        "op": "cluster",
        "methods": {},
    }
    for name in indexes or METHODS:
        row: dict = {}
        for dispatch in ("serial", "coalesce"):
            with ClusteringService(
                dispatch=dispatch,
                cache_entries=0,  # dispatch rounds measure the engine path
                max_batch=max_batch,
                linger_ms=linger_ms,
                workers=workers if dispatch == "coalesce" else 0,
            ) as service:
                service.fit_snapshot("bench", ds.points, index=name)
                _verify_exactness(service, name, ds.points, dcs[0])
                report = run_load(
                    service, "bench", dcs,
                    clients=clients, requests_per_client=requests_per_client,
                    op="cluster", use_cache=False,
                    cluster_params={"n_centers": 4}, seed=seed,
                    trace_sample=trace_sample if dispatch == "coalesce" else 0,
                )
            row[dispatch] = report.as_record()
        # Warm-cache round: the whole dc grid is cached after one pass, so
        # this measures the memoised ceiling, recorded separately.
        with ClusteringService(dispatch="coalesce", linger_ms=linger_ms) as service:
            service.fit_snapshot("bench", ds.points, index=name)
            for dc in dcs:  # warm every grid entry
                service.cluster("bench", dc, n_centers=4)
            report = run_load(
                service, "bench", dcs,
                clients=clients, requests_per_client=requests_per_client,
                op="cluster", use_cache=True,
                cluster_params={"n_centers": 4}, seed=seed,
            )
            row["warm_cache"] = report.as_record()
        if offered_rps:
            # Open-loop round: Poisson arrivals swept across the offered
            # rates — records the latency knee and saturation throughput.
            with ClusteringService(
                dispatch="coalesce",
                cache_entries=0,
                max_batch=max_batch,
                linger_ms=linger_ms,
                workers=workers,
            ) as service:
                service.fit_snapshot("bench", ds.points, index=name)
                row["open_loop"] = sweep_open_loop(
                    service, "bench", dcs, offered_rps,
                    duration_s=open_duration_s, op="cluster",
                    use_cache=False, cluster_params={"n_centers": 4},
                    seed=seed,
                )
        serial_rps = row["serial"]["throughput_rps"]
        coalesce_rps = row["coalesce"]["throughput_rps"]
        row["coalesce_speedup"] = coalesce_rps / serial_rps if serial_rps > 0 else None
        record["methods"][name] = row
    return record


def main(argv=None) -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--dataset", default="s1")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=24, help="requests per client")
    parser.add_argument("--dc-count", type=int, default=8, help="distinct dc values in the grid")
    parser.add_argument("--linger-ms", type=float, default=2.0)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--indexes", default=None, help="comma-separated subset of " + ",".join(METHODS)
    )
    parser.add_argument("--out", default="BENCH_serving.json")
    parser.add_argument(
        "--offered-rps", default=None,
        help="comma-separated arrival rates (e.g. 20,50,100): adds an "
        "open-loop Poisson sweep per method recording latency-vs-offered-"
        "load and the saturation throughput (closed-loop stays default)",
    )
    parser.add_argument(
        "--open-duration-s", type=float, default=2.0,
        help="offered-arrival window per open-loop rate",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="run services with N supervised shared-memory serving workers "
        "(0 = in-process dispatch)",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=0, metavar="N",
        help="enable repro.obs tracing and record N sampled request traces "
        "per coalesced round; prints one phase breakdown per method",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny CI smoke size (n=1500, 4 clients x 6 requests, kdtree+grid)",
    )
    args = parser.parse_args(argv)
    indexes = tuple(args.indexes.split(",")) if args.indexes else None
    if args.quick:
        args.n = min(args.n, 1500)
        args.clients = min(args.clients, 4)
        args.requests = min(args.requests, 6)
        indexes = indexes or ("kdtree", "grid")
    if args.trace_sample > 0:
        obs.enable()
    try:
        offered = (
            tuple(float(rate) for rate in args.offered_rps.split(","))
            if args.offered_rps else None
        )
        record = run(
            n=args.n, dataset=args.dataset, clients=args.clients,
            requests_per_client=args.requests, dc_count=args.dc_count,
            linger_ms=args.linger_ms, max_batch=args.max_batch, seed=args.seed,
            indexes=indexes, trace_sample=args.trace_sample,
            offered_rps=offered, open_duration_s=args.open_duration_s,
            workers=args.workers,
        )
    finally:
        if args.trace_sample > 0:
            obs.disable()
    append_record(record, args.out)
    for name, row in record["methods"].items():
        serial, coalesce, warm = row["serial"], row["coalesce"], row["warm_cache"]
        print(
            f"{name:10s} serial {serial['throughput_rps']:8.1f} rps "
            f"(p99 {serial['latency_ms']['p99']:7.1f} ms)   "
            f"coalesce {coalesce['throughput_rps']:8.1f} rps "
            f"(p99 {coalesce['latency_ms']['p99']:7.1f} ms)   "
            f"speedup {row['coalesce_speedup']:.2f}x   "
            f"warm-cache {warm['throughput_rps']:8.1f} rps"
        )
        open_loop = row.get("open_loop")
        if open_loop:
            knees = "  ".join(
                f"{rec['offered_rps']:g}rps→p99 {rec['latency_ms']['p99']:.1f}ms"
                f" (err {rec['errors']}, shed {rec['shed']}, fo {rec['failovers']})"
                for rec in open_loop["sweep"]
            )
            print(
                f"           open-loop saturation "
                f"{open_loop['saturation_rps']:.1f} rps   {knees}"
            )
        samples = row["coalesce"].get("trace_samples") or []
        if samples:
            sample = samples[0]
            phases = ", ".join(
                f"{phase} {ms:.2f}ms" for phase, ms in sorted(sample["phase_ms"].items())
            )
            print(f"           trace {sample['trace_id']}: {phases}")
    provenance = record["provenance"]
    print(
        f"wrote {args.out} (cpu_count={provenance['cpu_count']}, "
        f"usable={provenance['usable_cpus']})"
    )
    return args.out


if __name__ == "__main__":
    main()
