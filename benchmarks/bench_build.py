"""Bulk-build benchmark: direct FlatTree construction vs the object-graph fit.

Times ``fit()`` for every tree family under both construction paths and
records the end-to-end effect on the two production consumers of fast
builds — :class:`~repro.extras.streaming.StreamingDPC` amortised rebuilds
and :class:`~repro.serving.snapshots.SnapshotStore` fit-and-publish — to
``BENCH_build.json``.  Two timings matter per family:

* ``fit`` — ``fit(points)`` wall clock;
* ``query_ready`` — time until the index can answer its first batched
  query: for the bulk path that *is* ``fit`` (the flat image is the fit
  product), for the objects path it is ``fit`` plus the lazy
  ``flatten_tree`` every query path consumes since PR 2.

The script exits non-zero if the bulk fit is slower than the object fit for
any family at ``n >= 5000`` — the CI ``build-smoke`` regression gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_build.py --quick
    PYTHONPATH=src python benchmarks/bench_build.py --n 20000 --repeats 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

import numpy as np

from repro.datasets.loaders import load_dataset
from repro.extras.streaming import StreamingDPC
from repro.obs.provenance import append_record
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex
from repro.serving.snapshots import SnapshotStore

FAMILIES: Dict[str, Callable] = {
    "rtree": RTreeIndex,
    "kdtree": KDTreeIndex,
    "quadtree": QuadtreeIndex,
}


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    # Best-of, like the other BENCH_* scripts: fit times are deterministic
    # work, so the minimum is the least load-contaminated observation.
    return min(fn() for _ in range(max(1, repeats)))


def _timed(fn: Callable[[], None]) -> float:
    t = time.perf_counter()
    fn()
    return time.perf_counter() - t


def run(n: int = 20000, dataset: str = "s1", repeats: int = 5, seed: int = 0) -> dict:
    ds = load_dataset(dataset, n=n, seed=seed)
    points = ds.points
    dc = float(min(ds.params.dc_grid))
    report = {
        "benchmark": "bulk_build_vs_objects",
        "dataset": ds.name,
        "n": int(ds.n),
        "dc": dc,
        "repeats": repeats,
        "families": {},
        "streaming": {},
        "snapshot_publish": {},
    }

    for name, cls in FAMILIES.items():
        objects_fit = _best_of(
            repeats, lambda: _timed(lambda: cls(build="objects").fit(points))
        )
        # The objects path is not query-ready until the first query pays the
        # lazy flatten; the bulk fit produces the flat image directly.
        objects_ready = _best_of(
            repeats,
            lambda: _timed(lambda: cls(build="objects").fit(points)._flat_tree()),
        )
        bulk_fit = _best_of(
            repeats, lambda: _timed(lambda: cls(build="bulk").fit(points))
        )
        # Exactness spot check rides along: one full quantities() run must be
        # bit-identical across the two construction paths.
        qa = cls(build="objects").fit(points).quantities(dc)
        qb = cls(build="bulk").fit(points).quantities(dc)
        np.testing.assert_array_equal(qa.rho, qb.rho)
        np.testing.assert_array_equal(qa.delta, qb.delta)
        np.testing.assert_array_equal(qa.mu, qb.mu)
        report["families"][name] = {
            "objects_fit_seconds": objects_fit,
            "objects_query_ready_seconds": objects_ready,
            "bulk_fit_seconds": bulk_fit,
            "fit_speedup": objects_fit / bulk_fit if bulk_fit > 0 else float("inf"),
            "query_ready_speedup": (
                objects_ready / bulk_fit if bulk_fit > 0 else float("inf")
            ),
        }

    # Streaming: feed the dataset in batches; the amortised rebuilds (each a
    # full fit of the grown prefix) dominate, so the add() total tracks the
    # construction path directly.
    batch = max(1, n // 16)
    for mode in ("objects", "bulk"):
        def feed() -> float:
            stream = StreamingDPC(index_factory=lambda: RTreeIndex(build=mode))
            t = time.perf_counter()
            for start in range(0, len(points), batch):
                stream.add(points[start : start + batch])
            seconds = time.perf_counter() - t
            feed.rebuilds = stream.rebuild_count
            return seconds

        seconds = _best_of(max(1, repeats // 2), feed)
        report["streaming"][mode] = {
            "total_add_seconds": seconds,
            "rebuilds": feed.rebuilds,
            "batch": batch,
        }
    report["streaming"]["speedup"] = (
        report["streaming"]["objects"]["total_add_seconds"]
        / report["streaming"]["bulk"]["total_add_seconds"]
    )

    # Snapshot publish: fit-and-publish latency for a serving hot swap.
    for mode in ("objects", "bulk"):
        def publish() -> float:
            store = SnapshotStore()
            t = time.perf_counter()
            store.fit("bench", points, index="rtree", build=mode)
            return time.perf_counter() - t

        report["snapshot_publish"][mode] = {
            "fit_publish_seconds": _best_of(max(1, repeats // 2), publish)
        }
    report["snapshot_publish"]["speedup"] = (
        report["snapshot_publish"]["objects"]["fit_publish_seconds"]
        / report["snapshot_publish"]["bulk"]["fit_publish_seconds"]
    )

    report["gate"] = {
        "n": int(ds.n),
        "enforced": bool(ds.n >= 5000),
        "ok": all(
            row["fit_speedup"] > 1.0 for row in report["families"].values()
        )
        if ds.n >= 5000
        else True,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--dataset", default="s1")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_build.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke size (n=5000, fewer repeats; the >=5k gate still runs)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 5000)
        args.repeats = min(args.repeats, 3)
    report = run(n=args.n, dataset=args.dataset, repeats=args.repeats, seed=args.seed)
    append_record(report, args.out)
    for name, row in report["families"].items():
        print(
            f"{name:10s} objects {row['objects_fit_seconds']*1e3:7.2f} ms "
            f"(ready {row['objects_query_ready_seconds']*1e3:7.2f} ms)  "
            f"bulk {row['bulk_fit_seconds']*1e3:6.2f} ms  "
            f"-> {row['fit_speedup']:.2f}x fit, {row['query_ready_speedup']:.2f}x ready"
        )
    print(
        f"streaming  {report['streaming']['speedup']:.2f}x   "
        f"snapshot publish {report['snapshot_publish']['speedup']:.2f}x"
    )
    print(f"wrote {args.out}")
    if not report["gate"]["ok"]:
        print("GATE FAILED: bulk fit slower than the object path at n>=5k", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
