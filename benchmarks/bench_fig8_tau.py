"""Figure 8 — running time vs τ for the approximate list indexes.

Paper shape: running time grows with τ (longer RN-Lists to search); the CH
variant varies less because its ρ cost is governed by w, so differences
come from the δ scan only.
"""

import pytest

from repro.harness.runner import time_quantities
from repro.indexes.rn_list import RNCHIndex, RNListIndex


@pytest.mark.parametrize("tau_position", [0, 1, 2])
@pytest.mark.parametrize("variant", ["list", "ch"])
@pytest.mark.parametrize("dataset_name", ["birch", "brightkite"])
def test_fig8_time_vs_tau(benchmark, request, dataset_name, variant, tau_position):
    ds = request.getfixturevalue(dataset_name)
    params = ds.params
    tau = float(params.tau_grid[tau_position])
    index = (
        RNListIndex(tau=tau)
        if variant == "list"
        else RNCHIndex(tau=tau, bin_width=params.w_default)
    ).fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, tau=tau, variant=variant)
    benchmark(lambda: time_quantities(index, params.dc_default)[0])
