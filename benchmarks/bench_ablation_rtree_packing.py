"""Ablation — R-tree construction: STR packing vs dynamic Guttman insertion.

Paper §4.2: "the packing algorithm often results in better structure with
typically less overlap and better storage utilization ... which results in
improved query performances".  This bench measures both construction and
query cost for the two builds.
"""

import pytest

from repro.harness.runner import time_quantities
from repro.indexes.rtree import RTreeIndex


@pytest.mark.parametrize("packing", ["str", "dynamic"])
def test_ablation_rtree_build(benchmark, query, packing):
    ds = query
    benchmark.extra_info.update(dataset=ds.name, packing=packing)
    benchmark(lambda: RTreeIndex(packing=packing).fit(ds.points))


@pytest.mark.parametrize("packing", ["str", "dynamic"])
def test_ablation_rtree_query(benchmark, query, packing):
    ds = query
    dc = ds.params.dc_default
    index = RTreeIndex(packing=packing).fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, packing=packing)
    benchmark(lambda: time_quantities(index, dc)[0])


def test_str_leaves_better_packed(query):
    ds = query
    str_tree = RTreeIndex(packing="str").fit(ds.points)
    dyn_tree = RTreeIndex(packing="dynamic").fit(ds.points)

    def mean_leaf_fill(tree):
        sizes = [len(n.ids) for n in tree.root.iter_nodes() if n.is_leaf]
        return sum(sizes) / (len(sizes) * tree.max_entries)

    assert mean_leaf_fill(str_tree) > mean_leaf_fill(dyn_tree), (
        "STR should pack leaves fuller than quadratic-split insertion"
    )
