"""Failover drill against a real `python -m repro serve` process.

The end-to-end acceptance check for the replicated serving tier, driven the
way an operator would see it:

1. boot the server as a subprocess with ``--workers 2`` (supervised
   shared-memory serving workers) and a deterministic dataset,
2. hammer it with concurrent clients while SIGKILLing serving workers
   mid-load until ``/metrics`` records a failover,
3. assert **zero failed requests** and every response **bit-identical** to a
   local ``quantities_multi`` on the same points,
4. SIGTERM the server under load and assert a clean drain: exit code 0
   within the drain deadline, and no leaked ``/dev/shm`` segments.

Usage:
    PYTHONPATH=src python benchmarks/failover_smoke.py [--out BENCH.json]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.indexes.parallel import SHM_PREFIX  # noqa: E402
from repro.indexes.registry import make_index  # noqa: E402
from repro.obs.export import parse_prometheus  # noqa: E402
from repro.obs.provenance import append_record  # noqa: E402


def shard_segments():
    try:
        return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def get_json(base, path, timeout=30):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return json.load(response)


def post_query(base, payload, timeout=60):
    request = urllib.request.Request(
        base + "/v1/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def read_failovers(base):
    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        samples = parse_prometheus(response.read().decode())
    return sum(
        value for _, value in samples.get("repro_serving_failovers_total", [])
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1500, help="dataset size")
    parser.add_argument("--workers", type=int, default=2, help="serving workers")
    parser.add_argument("--clients", type=int, default=4, help="client threads")
    parser.add_argument(
        "--edge", default="asyncio", choices=("threads", "asyncio"),
        help="front-end flavour under test",
    )
    parser.add_argument(
        "--kill-rounds", type=int, default=20,
        help="max mid-load SIGKILLs before giving up on seeing a failover",
    )
    parser.add_argument(
        "--drain-timeout-s", type=float, default=15.0,
        help="drain budget handed to the server (and waited on here)",
    )
    parser.add_argument("--out", default=None, help="append a JSON record here")
    args = parser.parse_args()

    rng = np.random.default_rng(20260808)
    points = np.concatenate(
        [
            rng.normal([0.0, 0.0], 0.5, size=(args.n // 2, 2)),
            rng.normal([3.0, 3.0], 0.7, size=(args.n - args.n // 2, 2)),
        ]
    )
    spread = float(np.ptp(points, axis=0).max())
    dcs = [round(spread * f, 6) for f in (0.05, 0.1, 0.2)]
    references = {
        dc: q
        for dc, q in zip(dcs, make_index("ch").fit(points).quantities_multi(dcs))
    }

    shm_before = set(shard_segments())
    workdir = tempfile.mkdtemp(prefix="repro-failover-")
    csv_path = os.path.join(workdir, "points.csv")
    np.savetxt(csv_path, points, delimiter=",")

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    server = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--input", csv_path, "--index", "ch", "--snapshot", "main",
            "--workers", str(args.workers), "--heartbeat-s", "0.1",
            "--edge", args.edge, "--port", "0", "--cache-entries", "0",
            "--linger-ms", "2",
            "--drain-timeout-s", str(args.drain_timeout_s),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    base = None
    lines = []
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            lines.append(line)
            match = re.search(r"serving on (http://[\w.:]+)", line)
            if match:
                base = match.group(1)
                break
        if base is None:
            raise RuntimeError("server never announced its address:\n" + "".join(lines))
        # Drain the server's stdout in the background so prints can't block it.
        tail: list = []
        threading.Thread(
            target=lambda: tail.extend(iter(server.stdout.readline, "")),
            daemon=True,
        ).start()

        health = get_json(base, "/healthz")["health"]
        pool = health.get("workers") or {}
        assert len(pool.get("workers", [])) == args.workers, (
            f"healthz shows {pool} — expected {args.workers} workers"
        )

        # -- load + kills ----------------------------------------------------
        stop = threading.Event()
        counts = {"ok": 0}
        failures: list = []
        lock = threading.Lock()

        def client(slot: int) -> None:
            crng = np.random.default_rng(slot)
            while not stop.is_set():
                dc = dcs[int(crng.integers(0, len(dcs)))]
                try:
                    out = post_query(base, {
                        "snapshot": "main", "op": "quantities", "dc": dc,
                        "use_cache": False,
                    })
                    reference = references[dc]
                    assert out["rho"] == reference.rho.tolist()
                    assert out["mu"] == reference.mu.tolist()
                    assert np.array_equal(
                        np.asarray(out["delta"]), reference.delta
                    )
                except Exception as exc:  # noqa: BLE001 - the drill's verdict
                    with lock:
                        failures.append(f"{type(exc).__name__}: {exc}")
                    return
                with lock:
                    counts["ok"] += 1

        threads = [
            threading.Thread(target=client, args=(slot,), daemon=True)
            for slot in range(args.clients)
        ]
        for thread in threads:
            thread.start()

        kills = 0
        failovers = 0.0
        for _ in range(args.kill_rounds):
            time.sleep(0.25)
            if failures:
                break
            health = get_json(base, "/healthz")["health"]
            rows = (health.get("workers") or {}).get("workers", [])
            live = [r for r in rows if r["state"] in ("busy", "healthy") and r["pid"]]
            # Prefer a busy worker: that kill is the mid-batch one.
            live.sort(key=lambda r: r["state"] != "busy")
            if not live:
                continue
            try:
                os.kill(int(live[0]["pid"]), signal.SIGKILL)
                kills += 1
            except (ProcessLookupError, PermissionError):
                continue
            time.sleep(0.25)
            failovers = read_failovers(base)
            if failovers >= 1:
                break
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)

        assert not failures, f"client-visible failures under worker kills: {failures}"
        assert counts["ok"] > 0, "the drill never completed a request"
        assert failovers >= 1, (
            f"no failover recorded in /metrics after {kills} kills "
            f"({counts['ok']} requests served)"
        )

        # -- graceful drain --------------------------------------------------
        # One last burst in flight while SIGTERM lands.  A request that
        # arrives after the drain began is *refused* (503 / connection
        # refused) — that's the design (clients fail over to a replica), so
        # only admitted requests assert anything.
        def burst_query() -> None:
            try:
                out = post_query(
                    base,
                    {"snapshot": "main", "op": "quantities", "dc": dcs[0],
                     "use_cache": False},
                )
            except Exception:  # noqa: BLE001 - refused by the drain
                return
            assert out["rho"] == references[dcs[0]].rho.tolist()

        burst = [
            threading.Thread(target=burst_query, daemon=True) for _ in range(2)
        ]
        for thread in burst:
            thread.start()
        server.send_signal(signal.SIGTERM)
        returncode = server.wait(timeout=args.drain_timeout_s + 30.0)
        assert returncode == 0, (
            f"drain was not clean: exit {returncode}\n" + "".join(tail)
        )

        leaked = sorted(set(shard_segments()) - shm_before)
        assert not leaked, f"serving images leaked into /dev/shm: {leaked}"

        print(
            f"failover smoke OK: {counts['ok']} requests bit-identical, "
            f"0 failures, {kills} kill(s), {failovers:g} failover(s) in "
            f"/metrics, drain exit 0 ({args.edge} edge, "
            f"{args.workers} workers)"
        )
        if args.out:
            append_record(
                {
                    "benchmark": "failover_smoke",
                    "edge": args.edge,
                    "workers": args.workers,
                    "clients": args.clients,
                    "n": args.n,
                    "requests_ok": counts["ok"],
                    "failures": len(failures),
                    "kills": kills,
                    "failovers": failovers,
                    "drain_exit": returncode,
                },
                args.out,
            )
            print(f"wrote {args.out}")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10.0)
        try:
            os.unlink(csv_path)
            os.rmdir(workdir)
        except OSError:
            pass


if __name__ == "__main__":
    raise SystemExit(main())
