"""Partitioned scale-out benchmark: dataset tiles vs one monolithic index.

For one dataset size, fits a monolithic index and partitioned variants at
increasing tile counts, measures fit and end-to-end ``quantities()`` (ρ + δ)
for each, verifies (ρ, δ, μ) **bit-identity** against the monolithic answer
along the way, and **appends** a record to ``BENCH_partition.json`` (a list
of records — the perf trajectory file).

Each partitioned row carries the exchange telemetry
(:meth:`~repro.indexes.partition.PartitionedIndex.partition_stats`): how
many points sat in halo strips, how many δ queries settled inside their
tile vs crossed it, and how many tile probes the density/distance prunes
saved.  The record carries ``cpu_count``/``usable_cpus`` so a reader can
tell real multi-core scaling from a core-starved CI box — with
``--backend process`` each tile's queries run as supervised shared-memory
tasks, and on one visible core that path can only show its overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_partitioned.py --quick
    PYTHONPATH=src python benchmarks/bench_partitioned.py --n 20000 --partitions 2,4,8
    PYTHONPATH=src python benchmarks/bench_partitioned.py --backend process --n-jobs 4
"""

from __future__ import annotations

import argparse
import time
from typing import Callable

import numpy as np

from repro.datasets.loaders import load_dataset
from repro.indexes.registry import make_index
from repro.obs.provenance import append_record

FAMILIES = ("rtree", "kdtree", "quadtree", "grid", "list", "ch")


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    return min(fn() for _ in range(repeats))


def run(
    n: int = 20000,
    dataset: str = "s1",
    dc: "float | None" = None,
    family: str = "rtree",
    partitions: "tuple[int, ...]" = (2, 4),
    backend: str = "serial",
    n_jobs: "int | None" = None,
    repeats: int = 1,
    seed: int = 0,
) -> dict:
    """Measure one family across tile counts; returns one record."""
    ds = load_dataset(dataset, n=n, seed=seed)
    dc = float(dc) if dc is not None else float(min(ds.params.dc_grid))
    record = {
        "benchmark": "partitioned",
        "dataset": ds.name,
        "n": int(ds.n),
        "dc": dc,
        "family": family,
        "backend": backend,
        "n_jobs": n_jobs,
        "repeats": repeats,
        "partitioned": {},
    }

    mono = make_index(family)
    t0 = time.perf_counter()
    mono.fit(ds.points)
    mono_fit = time.perf_counter() - t0
    reference = mono.quantities(dc)
    mono_seconds = _best_of(
        repeats, lambda: _timed(lambda: mono.quantities(dc))
    )
    record["single"] = {"fit_seconds": mono_fit, "seconds": mono_seconds}

    for p in partitions:
        index = make_index(
            "partitioned",
            family=family,
            partitions=p,
            halo=dc,  # pre-size the strip so fit_seconds includes it
            backend=backend,
            n_jobs=n_jobs,
        )
        t0 = time.perf_counter()
        index.fit(ds.points)
        fit_seconds = time.perf_counter() - t0
        try:
            q = index.quantities(dc)  # warm-up: pools fork, images publish
            np.testing.assert_array_equal(q.rho, reference.rho)
            np.testing.assert_array_equal(q.delta, reference.delta)
            np.testing.assert_array_equal(q.mu, reference.mu)
            seconds = _best_of(
                repeats, lambda: _timed(lambda: index.quantities(dc))
            )
            stats = index.partition_stats()
        finally:
            index.release_execution()
        total = stats["local_settled"] + stats["gathered"]
        record["partitioned"][str(p)] = {
            "fit_seconds": fit_seconds,
            "seconds": seconds,
            "speedup": mono_seconds / seconds if seconds > 0 else None,
            "identical": True,  # the asserts above are the proof
            "halo": stats["halo"],
            "halo_points": stats["halo_points"],
            "local_settled_fraction": stats["local_settled"] / total
            if total
            else None,
            "gather_probes": stats["gather_probes"],
            "partitions_pruned_density": stats["partitions_pruned_density"],
            "partitions_pruned_distance": stats["partitions_pruned_distance"],
        }
    return record


def _timed(fn: Callable[[], object]) -> float:
    t = time.perf_counter()
    fn()
    return time.perf_counter() - t


def main(argv=None) -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--dataset", default="s1")
    parser.add_argument("--dc", type=float, default=None)
    parser.add_argument("--family", default="rtree", choices=FAMILIES)
    parser.add_argument(
        "--partitions", default="2,4", help="comma-separated tile counts"
    )
    parser.add_argument("--backend", default="serial", choices=("serial", "threads", "process"))
    parser.add_argument("--n-jobs", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_partition.json")
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI smoke size (n=1200)"
    )
    args = parser.parse_args(argv)
    partitions = tuple(int(p) for p in args.partitions.split(","))
    if args.quick:
        args.n = min(args.n, 1200)
        args.repeats = 1
    record = run(
        n=args.n,
        dataset=args.dataset,
        dc=args.dc,
        family=args.family,
        partitions=partitions,
        backend=args.backend,
        n_jobs=args.n_jobs,
        repeats=args.repeats,
        seed=args.seed,
    )
    append_record(record, args.out)
    print(
        f"{args.family:10s} single fit {record['single']['fit_seconds']:.3f}s "
        f"query {record['single']['seconds']:.3f}s"
    )
    for p, row in record["partitioned"].items():
        settled = row["local_settled_fraction"]
        settled_txt = f"settled {settled:.0%}" if settled is not None else ""
        print(
            f"  tiles={p:3s} fit {row['fit_seconds']:.3f}s "
            f"query {row['seconds']:.3f}s ({row['speedup']:.2f}x)  "
            f"halo_pts {row['halo_points']}  {settled_txt}"
        )
    provenance = record["provenance"]
    print(
        f"wrote {args.out} (cpu_count={provenance['cpu_count']}, "
        f"usable={provenance['usable_cpus']}, backend={args.backend})"
    )
    return args.out


if __name__ == "__main__":
    main()
