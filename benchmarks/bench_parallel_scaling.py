"""Worker-scaling benchmark for the sharded execution backends.

For every tree/grid index at one dataset size, measures end-to-end
``quantities()`` (ρ + δ) on the serial backend and on the shared-memory
``process`` backend at increasing worker counts, verifying bit-identity of
(ρ, δ, μ) along the way, and **appends** a record to ``BENCH_parallel.json``
(a list of records — the perf trajectory file this PR and future PRs grow).

The record carries ``cpu_count``/``usable_cpus`` so a reader can tell real
multi-core scaling from a core-starved CI box: on one visible core the
process backend can only show its overhead, and the committed numbers say
so rather than pretending.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --n 20000 --jobs 2,4
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict

import numpy as np

from repro.datasets.loaders import load_dataset
from repro.obs.provenance import append_record, usable_cpus as _usable_cpus
from repro.indexes.grid import GridIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex

METHODS: Dict[str, Callable] = {
    "kdtree": KDTreeIndex,
    "quadtree": QuadtreeIndex,
    "rtree": RTreeIndex,
    "grid": GridIndex,
}


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    return min(fn() for _ in range(repeats))


def run(
    n: int = 20000,
    dataset: str = "s1",
    dc: "float | None" = None,
    jobs: "tuple[int, ...]" = (2, 4),
    repeats: int = 1,
    seed: int = 0,
    chunk_size: "int | None" = None,
    indexes: "tuple[str, ...] | None" = None,
) -> dict:
    """Measure every method; returns one BENCH_parallel.json record."""
    ds = load_dataset(dataset, n=n, seed=seed)
    dc = float(dc) if dc is not None else float(min(ds.params.dc_grid))
    record = {
        "benchmark": "parallel_scaling",
        "dataset": ds.name,
        "n": int(ds.n),
        "dc": dc,
        "repeats": repeats,
        "chunk_size": chunk_size,
        "usable_cpus": _usable_cpus(),
        "methods": {},
    }
    for name in indexes or tuple(METHODS):
        factory = METHODS[name]
        index = factory().fit(ds.points)
        reference = index.quantities(dc)

        def quantities_time() -> float:
            t = time.perf_counter()
            index.quantities(dc)
            return time.perf_counter() - t

        serial_seconds = _best_of(repeats, quantities_time)
        row = {"serial_seconds": serial_seconds, "parallel": {}}
        for n_jobs in jobs:
            index.set_execution(
                backend="process", n_jobs=n_jobs, chunk_size=chunk_size
            )
            q = index.quantities(dc)  # warm-up: fork pool + publish the image
            np.testing.assert_array_equal(q.rho, reference.rho)
            np.testing.assert_array_equal(q.delta, reference.delta)
            np.testing.assert_array_equal(q.mu, reference.mu)
            par_seconds = _best_of(repeats, quantities_time)
            row["parallel"][str(n_jobs)] = {
                "seconds": par_seconds,
                "speedup": serial_seconds / par_seconds if par_seconds > 0 else None,
            }
            index.release_execution()
            index.set_execution(backend="serial")
        record["methods"][name] = row
    return record


def main(argv=None) -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--dataset", default="s1")
    parser.add_argument("--dc", type=float, default=None)
    parser.add_argument("--jobs", default="2,4", help="comma-separated worker counts")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument(
        "--indexes", default=None, help="comma-separated subset of " + ",".join(METHODS)
    )
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail unless the best method reaches this speedup at --gate-jobs "
        "workers; skipped (exit 0) when fewer usable CPUs than --gate-jobs",
    )
    parser.add_argument(
        "--gate-jobs", type=int, default=4, help="worker count the gate checks"
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI smoke size (n=1200, jobs=2)"
    )
    args = parser.parse_args(argv)
    jobs = tuple(int(j) for j in args.jobs.split(","))
    if args.quick:
        args.n = min(args.n, 1200)
        args.repeats = 1
        jobs = (2,)
    indexes = tuple(args.indexes.split(",")) if args.indexes else None
    record = run(
        n=args.n, dataset=args.dataset, dc=args.dc, jobs=jobs,
        repeats=args.repeats, seed=args.seed, chunk_size=args.chunk_size,
        indexes=indexes,
    )
    append_record(record, args.out)
    for name, row in record["methods"].items():
        scaling = "  ".join(
            f"x{j}: {cell['seconds']:.3f}s ({cell['speedup']:.2f}x)"
            for j, cell in row["parallel"].items()
        )
        print(f"{name:10s} serial {row['serial_seconds']:.3f}s  {scaling}")
    print(
        f"wrote {args.out} (cpu_count={record['provenance']['cpu_count']}, "
        f"usable={record['usable_cpus']})"
    )
    if args.gate is not None:
        if record["usable_cpus"] < args.gate_jobs:
            print(
                f"gate skipped: {record['usable_cpus']} usable CPUs < "
                f"{args.gate_jobs} workers — a core-starved box cannot show "
                "real scaling"
            )
            return args.out
        speedups = [
            cell["speedup"]
            for row in record["methods"].values()
            for j, cell in row["parallel"].items()
            if int(j) == args.gate_jobs and cell["speedup"] is not None
        ]
        best = max(speedups, default=0.0)
        if best < args.gate:
            import sys

            print(
                f"GATE FAILED: best speedup {best:.2f}x at {args.gate_jobs} "
                f"workers is below {args.gate:.1f}x",
                file=sys.stderr,
            )
            raise SystemExit(1)
        print(f"gate passed: best {best:.2f}x >= {args.gate:.1f}x at {args.gate_jobs} workers")
    return args.out


if __name__ == "__main__":
    main()
