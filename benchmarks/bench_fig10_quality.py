"""Figure 10 — clustering quality of the τ-approximation vs exact DPC.

Times the full approximate pipeline (build RN-List, quantities, centres,
assignment) and reports the paper's pairwise P/R/F1 against the exact
clustering in extra_info.  Shape asserted: quality at the largest τ beats
quality at the smallest τ.
"""

import pytest

from repro.core.assignment import assign_labels
from repro.core.decision import select_centers_auto, select_centers_top_k
from repro.indexes.rn_list import RNListIndex
from repro.indexes.rtree import RTreeIndex
from repro.metrics.pair_metrics import pairwise_precision_recall_f1


@pytest.mark.parametrize("dataset_name", ["birch", "range_ds"])
def test_fig10_quality_sweep(benchmark, request, dataset_name):
    ds = request.getfixturevalue(dataset_name)
    params = ds.params
    dc = params.dc_default

    exact = RTreeIndex().fit(ds.points)
    q_ref = exact.quantities(dc)
    centers_ref = select_centers_auto(q_ref, min_centers=2)
    labels_ref = assign_labels(q_ref, centers_ref, points=ds.points)
    k = len(centers_ref)

    def approximate_run(tau):
        index = RNListIndex(tau=float(tau)).fit(ds.points)
        q = index.quantities(dc)
        centers = select_centers_top_k(q, k)
        return assign_labels(q, centers, points=ds.points)

    taus = params.quality_tau_grid
    quality = {}
    for tau in taus:
        labels = approximate_run(tau)
        p, r, f1 = pairwise_precision_recall_f1(labels_ref, labels)
        quality[tau] = {"precision": round(p, 4), "recall": round(r, 4), "f1": round(f1, 4)}
    benchmark.extra_info.update(dataset=ds.name, dc=dc, quality=quality)

    benchmark(approximate_run, taus[-1])  # time one full approximate pipeline

    assert quality[taus[-1]]["f1"] >= quality[taus[0]]["f1"], (
        "largest tau must not be worse than the smallest"
    )
