"""Table 4 — index construction time.

Paper shape: tree indexes build orders of magnitude faster than list-based
ones; Quadtree beats R-tree on small data (no balancing work); the CH
histograms add little on top of the List Index build.
"""

import pytest

from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex

SMALL = ["s1", "query"]
LARGE = ["birch", "range_ds", "brightkite", "gowalla"]


@pytest.mark.parametrize("dataset_name", SMALL)
@pytest.mark.parametrize("method", ["list", "ch", "rtree", "quadtree"])
def test_table4_construction_small(benchmark, request, dataset_name, method):
    ds = request.getfixturevalue(dataset_name)
    factory = {
        "list": lambda: ListIndex(),
        "ch": lambda: CHIndex(bin_width=ds.params.w_default),
        "rtree": lambda: RTreeIndex(),
        "quadtree": lambda: QuadtreeIndex(),
    }[method]
    benchmark.extra_info.update(dataset=ds.name, n=ds.n, method=method)
    benchmark(lambda: factory().fit(ds.points))


@pytest.mark.parametrize("dataset_name", LARGE)
@pytest.mark.parametrize("method", ["rn-list", "rn-ch", "rtree", "quadtree"])
def test_table4_construction_large(benchmark, request, dataset_name, method):
    ds = request.getfixturevalue(dataset_name)
    params = ds.params
    factory = {
        "rn-list": lambda: RNListIndex(tau=params.tau_star),
        "rn-ch": lambda: RNCHIndex(tau=params.tau_star, bin_width=params.w_default),
        "rtree": lambda: RTreeIndex(),
        "quadtree": lambda: QuadtreeIndex(),
    }[method]
    benchmark.extra_info.update(dataset=ds.name, n=ds.n, method=method)
    benchmark(lambda: factory().fit(ds.points))
