"""Figure 9 — memory vs w (9a, CH histograms) and vs τ (9b, List Index).

Paper shape: histogram memory shrinks as w grows (fewer bins); RN-List
memory grows with τ (longer lists).  The monotonicity is asserted.
"""

import pytest

from repro.indexes.rn_list import RNCHIndex, RNListIndex


@pytest.mark.parametrize("dataset_name", ["birch", "range_ds"])
def test_fig9a_histogram_memory_vs_w(benchmark, request, dataset_name):
    ds = request.getfixturevalue(dataset_name)
    params = ds.params

    def build_all():
        mems = {}
        for w in params.w_grid:
            index = RNCHIndex(tau=params.tau_star, bin_width=float(w)).fit(ds.points)
            mems[w] = index.histogram_memory_bytes()
        return mems

    mems = benchmark(build_all)
    benchmark.extra_info.update(
        dataset=ds.name, histogram_mb={w: m / 2**20 for w, m in mems.items()}
    )
    sizes = [mems[w] for w in params.w_grid]
    assert sizes == sorted(sizes, reverse=True), "larger w must mean fewer bins"


@pytest.mark.parametrize("dataset_name", ["birch", "gowalla"])
def test_fig9b_list_memory_vs_tau(benchmark, request, dataset_name):
    ds = request.getfixturevalue(dataset_name)
    params = ds.params

    def build_all():
        mems = {}
        for tau in params.tau_grid:
            index = RNListIndex(tau=float(tau)).fit(ds.points)
            mems[tau] = index.memory_bytes()
        return mems

    mems = benchmark(build_all)
    benchmark.extra_info.update(
        dataset=ds.name, memory_mb={t: m / 2**20 for t, m in mems.items()}
    )
    sizes = [mems[t] for t in params.tau_grid]
    assert sizes == sorted(sizes), "larger tau must mean longer RN-Lists"
