"""Ablation — δ-query frontier: priority queue vs the paper's ordered stack.

Algorithm 6 uses a stack with best-child ordering and remarks "a priority
queue can be used to replace the stack".  Both are exact; this bench shows
the work difference (the heap achieves true best-first order globally, the
stack only locally per node).
"""

import pytest

from repro.core.quantities import DensityOrder
from repro.indexes.rtree import RTreeIndex


@pytest.mark.parametrize("frontier", ["batched", "heap", "stack"])
def test_ablation_delta_frontier(benchmark, birch, frontier):
    ds = birch
    dc = ds.params.dc_default
    index = RTreeIndex(frontier=frontier).fit(ds.points)
    rho = index.rho_all(dc)
    order = DensityOrder(rho)
    benchmark.extra_info.update(dataset=ds.name, frontier=frontier)
    benchmark(index.delta_all, order)
    benchmark.extra_info["nodes_visited"] = index.stats().nodes_visited


def test_frontiers_agree(birch):
    ds = birch
    dc = ds.params.dc_default
    import numpy as np

    batched = RTreeIndex(frontier="batched").fit(ds.points).quantities(dc)
    heap = RTreeIndex(frontier="heap").fit(ds.points).quantities(dc)
    stack = RTreeIndex(frontier="stack").fit(ds.points).quantities(dc)
    np.testing.assert_array_equal(heap.delta, stack.delta)
    np.testing.assert_array_equal(heap.mu, stack.mu)
    np.testing.assert_array_equal(heap.delta, batched.delta)
    np.testing.assert_array_equal(heap.mu, batched.mu)
