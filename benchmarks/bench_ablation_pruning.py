"""Ablation — Lemma 1 (density pruning) and Lemma 2 (distance pruning).

Both prunings only skip work, never change results; this bench quantifies
how much work each saves on the δ query, which is the paper's implicit
justification for storing maxrho at every node.
"""

import pytest

from repro.core.quantities import DensityOrder
from repro.indexes.rtree import RTreeIndex

CONFIGS = {
    "both": dict(density_pruning=True, distance_pruning=True),
    "density-only": dict(density_pruning=True, distance_pruning=False),
    "distance-only": dict(density_pruning=False, distance_pruning=True),
    "none": dict(density_pruning=False, distance_pruning=False),
}


@pytest.mark.parametrize("config", list(CONFIGS))
def test_ablation_pruning_delta(benchmark, birch, config):
    ds = birch
    dc = ds.params.dc_default
    index = RTreeIndex(**CONFIGS[config]).fit(ds.points)
    rho = index.rho_all(dc)
    order = DensityOrder(rho)
    benchmark.extra_info.update(dataset=ds.name, config=config)
    benchmark(index.delta_all, order)
    benchmark.extra_info["nodes_visited"] = index.stats().nodes_visited


def test_pruning_reduces_node_visits(birch):
    ds = birch
    dc = ds.params.dc_default
    visits = {}
    for config, kwargs in CONFIGS.items():
        index = RTreeIndex(**kwargs).fit(ds.points)
        index.quantities(dc)
        visits[config] = index.stats().nodes_visited
    assert visits["both"] < visits["none"]
    assert visits["both"] <= visits["density-only"]
    assert visits["both"] <= visits["distance-only"]
