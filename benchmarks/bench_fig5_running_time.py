"""Figure 5 — query (ρ+δ) running time per method per dataset.

Paper shape: list-based indexes (CH best) beat tree-based; the original DPC
baseline is slowest at scale; R-tree beats Quadtree on the larger datasets.
"""

import pytest

from repro.core.baseline import naive_quantities
from repro.harness.runner import time_quantities
from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex


def _query_run(index, dc):
    q, _ = time_quantities(index, dc)
    return q


def _record_phase_split(benchmark, index, dc):
    """One extra measured run so the ρ-vs-δ split lands in the JSON output."""
    _, timing = time_quantities(index, dc)
    benchmark.extra_info.update(
        rho_seconds=timing.rho_seconds, delta_seconds=timing.delta_seconds
    )


@pytest.mark.parametrize("dataset_name", ["s1", "query"])
class BenchSmallDatasets:
    """Datasets where the full list indexes fit (paper: S1, Query)."""


@pytest.mark.parametrize("dataset_name", ["s1", "query"])
@pytest.mark.parametrize(
    "method",
    ["list", "ch", "rtree", "quadtree", "dpc"],
)
def test_fig5_small(benchmark, request, dataset_name, method):
    ds = request.getfixturevalue(dataset_name)
    dc = ds.params.dc_default
    if method == "dpc":
        benchmark.extra_info.update(dataset=ds.name, n=ds.n, method="DPC")
        benchmark(lambda: naive_quantities(ds.points, dc))
        return
    factory = {
        "list": lambda: ListIndex(),
        "ch": lambda: CHIndex(bin_width=ds.params.w_default),
        "rtree": lambda: RTreeIndex(),
        "quadtree": lambda: QuadtreeIndex(),
    }[method]
    index = factory().fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, n=ds.n, method=method)
    benchmark(_query_run, index, dc)
    _record_phase_split(benchmark, index, dc)


@pytest.mark.parametrize("dataset_name", ["s1", "query"])
@pytest.mark.parametrize("method", ["rtree", "quadtree", "kdtree", "grid"])
@pytest.mark.parametrize("delta_path", ["batched", "reference"])
def test_fig5_delta_engine(benchmark, request, dataset_name, method, delta_path):
    """Batched δ engine vs the per-object reference, same index and dc."""
    from repro.indexes.grid import GridIndex
    from repro.indexes.kdtree import KDTreeIndex

    ds = request.getfixturevalue(dataset_name)
    dc = ds.params.dc_default
    factory = {
        ("rtree", "batched"): lambda: RTreeIndex(),
        ("rtree", "reference"): lambda: RTreeIndex(frontier="heap"),
        ("quadtree", "batched"): lambda: QuadtreeIndex(),
        ("quadtree", "reference"): lambda: QuadtreeIndex(frontier="heap"),
        ("kdtree", "batched"): lambda: KDTreeIndex(),
        ("kdtree", "reference"): lambda: KDTreeIndex(frontier="heap"),
        ("grid", "batched"): lambda: GridIndex(),
        ("grid", "reference"): lambda: GridIndex(delta_mode="scalar"),
    }[(method, delta_path)]
    index = factory().fit(ds.points)
    benchmark.extra_info.update(
        dataset=ds.name, n=ds.n, method=method, delta_path=delta_path
    )
    benchmark(_query_run, index, dc)
    _record_phase_split(benchmark, index, dc)


@pytest.mark.parametrize("dataset_name", ["s1", "query"])
@pytest.mark.parametrize("method", ["list", "ch"])
def test_fig5_dc_sweep_batched(benchmark, request, dataset_name, method):
    """Many-dc amortisation: the dataset's whole dc grid per timed run."""
    ds = request.getfixturevalue(dataset_name)
    dcs = [float(v) for v in ds.params.dc_grid]
    factory = {
        "list": lambda: ListIndex(),
        "ch": lambda: CHIndex(bin_width=ds.params.w_default),
    }[method]
    index = factory().fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, n=ds.n, n_dcs=len(dcs), method=method)
    benchmark(index.quantities_multi, dcs)


@pytest.mark.parametrize("dataset_name", ["birch", "range_ds", "brightkite", "gowalla"])
@pytest.mark.parametrize("method", ["rn-list", "rn-ch", "rtree", "quadtree"])
def test_fig5_large(benchmark, request, dataset_name, method):
    """The four datasets where only τ*-approximated lists fit (paper's *)."""
    ds = request.getfixturevalue(dataset_name)
    params = ds.params
    dc = params.dc_default
    factory = {
        "rn-list": lambda: RNListIndex(tau=params.tau_star),
        "rn-ch": lambda: RNCHIndex(tau=params.tau_star, bin_width=params.w_default),
        "rtree": lambda: RTreeIndex(),
        "quadtree": lambda: QuadtreeIndex(),
    }[method]
    index = factory().fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, n=ds.n, method=method)
    benchmark(_query_run, index, dc)
