"""Streaming maintenance benchmark: LSM delta segments vs amortised rebuild.

Replays one batch schedule through two maintenance strategies, keeping the
stream **exactly queryable** after every batch (each checkpoint computes
full (ρ, δ, μ) — the continuous-clustering scenario the paper's check-in
datasets motivate):

* **delta** — the live path: :class:`repro.extras.StreamingDPC`, every
  batch folds into the index's sorted side image
  (:meth:`~repro.indexes.base.DPCIndex.add_points`), checkpoints answer
  through the (base, delta) pair kernels, compaction is a sorted merge;
* **rebuild** — the strategy this PR replaced: buffer arrivals, refit
  from scratch when the buffer outgrows ``rebuild_factor`` times the
  index, and answer checkpoints that catch a non-empty buffer by the
  brute-force patch the old ``StreamingDPC.quantities`` used (an O(n²)
  pass over the combined set — exact, but paid on every such query).

Both follow the identical trigger policy and answer the identical
checkpoints exactly, so the measured gap is the cost of *staying exactly
queryable while ingesting*.  Appends a record to ``BENCH_streaming.json``
(a list — the perf trajectory file).  With ``--gate MIN`` the process
exits non-zero unless the delta path is at least ``MIN`` times faster
end-to-end, which is how CI pins the win down.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py --quick
    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py --n 20000 --gate 3.0
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.core.baseline import naive_quantities
from repro.datasets.loaders import load_dataset
from repro.extras.streaming import StreamingDPC
from repro.obs.provenance import append_record
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex

METHODS: Dict[str, Callable] = {
    "rtree": RTreeIndex,
    "kdtree": KDTreeIndex,
    "quadtree": QuadtreeIndex,
}


def delta_run(
    batches: List[np.ndarray],
    factory: Callable,
    dc: float,
    rebuild_factor: float,
    min_buffer: int,
    query_every: int,
) -> dict:
    stream = StreamingDPC(
        index_factory=factory, rebuild_factor=rebuild_factor, min_buffer=min_buffer
    )
    rhos = []
    t0 = time.perf_counter()
    for i, batch in enumerate(batches, start=1):
        stream.add(batch)
        if i % query_every == 0 or i == len(batches):
            rhos.append(stream.quantities(dc).rho)
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "compactions": stream.rebuild_count - 1,
        "final_delta": stream.n_buffered,
        "n": stream.n,
        "queries": len(rhos),
        "_rhos": rhos,
    }


def _patched_quantities(index, buffer: np.ndarray, dc: float):
    """The old ``StreamingDPC.quantities`` buffer patch, verbatim in spirit:
    ρ of the indexed prefix through the index plus cross-counts, then the
    exact δ/μ via a naive O(n²) pass over the combined set."""
    points = np.concatenate([index.points, buffer])
    metric = index.metric
    n_idx = index.n
    rho = np.empty(len(points), dtype=np.int64)
    rho[:n_idx] = index.rho_all(dc)
    cross = metric.cross(buffer, points)
    for i in range(len(buffer)):
        rho[n_idx + i] = int((cross[i] < dc).sum()) - 1  # minus self
    rho[:n_idx] += (cross[:, :n_idx] < dc).sum(axis=0)
    return naive_quantities(points, dc, metric=metric, rho=rho)


def rebuild_run(
    batches: List[np.ndarray],
    factory: Callable,
    dc: float,
    rebuild_factor: float,
    min_buffer: int,
    query_every: int,
) -> dict:
    index = None
    buffered: List[np.ndarray] = []
    n_buffered = 0
    rebuilds = 0
    rhos = []
    t0 = time.perf_counter()
    for i, batch in enumerate(batches, start=1):
        if index is None:
            index = factory().fit(batch)
            rebuilds += 1
        else:
            buffered.append(batch)
            n_buffered += len(batch)
            if n_buffered >= min_buffer and n_buffered > rebuild_factor * index.n:
                index = factory().fit(np.concatenate([index.points, *buffered]))
                buffered = []
                n_buffered = 0
                rebuilds += 1
        if i % query_every == 0 or i == len(batches):
            if n_buffered:
                rhos.append(_patched_quantities(index, np.concatenate(buffered), dc).rho)
            else:
                rhos.append(index.quantities(dc).rho)
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "rebuilds": rebuilds,
        "final_buffer": n_buffered,
        "n": index.n + n_buffered,
        "queries": len(rhos),
        "_rhos": rhos,
    }


def run(
    n: int = 20000,
    dataset: str = "gowalla",
    dc: "float | None" = None,
    batch_size: int = 500,
    rebuild_factor: float = 0.5,
    min_buffer: int = 64,
    query_every: int = 4,
    seed: int = 0,
    indexes: "tuple[str, ...] | None" = None,
) -> dict:
    ds = load_dataset(dataset, n=n, seed=seed)
    dc = float(dc) if dc is not None else float(min(ds.params.dc_grid))
    rng = np.random.default_rng(seed)
    order = rng.permutation(ds.n)
    batches = [
        ds.points[order[start : start + batch_size]]
        for start in range(0, ds.n, batch_size)
    ]
    record = {
        "benchmark": "streaming_ingest",
        "dataset": ds.name,
        "n": int(ds.n),
        "dc": dc,
        "batch_size": batch_size,
        "n_batches": len(batches),
        "query_every": query_every,
        "rebuild_factor": rebuild_factor,
        "min_buffer": min_buffer,
        "methods": {},
    }
    for name in indexes or tuple(METHODS):
        factory = METHODS[name]
        delta = delta_run(batches, factory, dc, rebuild_factor, min_buffer, query_every)
        rebuild = rebuild_run(
            batches, factory, dc, rebuild_factor, min_buffer, query_every
        )
        assert delta["n"] == rebuild["n"] == ds.n
        # Both strategies answered the identical checkpoints — and exactly.
        for qa, qb in zip(delta.pop("_rhos"), rebuild.pop("_rhos")):
            np.testing.assert_array_equal(qa, qb)
        record["methods"][name] = {
            "delta": delta,
            "rebuild": rebuild,
            "speedup": rebuild["seconds"] / delta["seconds"]
            if delta["seconds"] > 0
            else None,
        }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--dataset", default="gowalla")
    parser.add_argument("--dc", type=float, default=None)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument("--rebuild-factor", type=float, default=0.5)
    parser.add_argument("--min-buffer", type=int, default=64)
    parser.add_argument("--query-every", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--indexes", default=None, help="comma-separated subset of " + ",".join(METHODS)
    )
    parser.add_argument("--out", default="BENCH_streaming.json")
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail unless every measured index's delta path is at least "
        "this many times faster than the rebuild baseline",
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI smoke size (n=2000)"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 2000)
        args.batch_size = min(args.batch_size, 200)
    indexes = tuple(args.indexes.split(",")) if args.indexes else None
    record = run(
        n=args.n,
        dataset=args.dataset,
        dc=args.dc,
        batch_size=args.batch_size,
        rebuild_factor=args.rebuild_factor,
        min_buffer=args.min_buffer,
        query_every=args.query_every,
        seed=args.seed,
        indexes=indexes,
    )
    append_record(record, args.out)
    failed = []
    for name, row in record["methods"].items():
        print(
            f"{name:10s} delta {row['delta']['seconds']:.3f}s "
            f"({row['delta']['compactions']} compactions)  "
            f"rebuild {row['rebuild']['seconds']:.3f}s "
            f"({row['rebuild']['rebuilds']} refits)  "
            f"speedup {row['speedup']:.2f}x"
        )
        if args.gate is not None and row["speedup"] < args.gate:
            failed.append(name)
    print(f"wrote {args.out}")
    if failed:
        print(f"GATE FAILED: {', '.join(failed)} below {args.gate:.1f}x", file=sys.stderr)
        return 1
    if args.gate is not None:
        print(f"gate passed: all >= {args.gate:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
