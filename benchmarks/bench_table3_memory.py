"""Table 3 — index memory footprint (reported via extra_info).

pytest-benchmark times the (cheap) memory accounting call; the quantity of
interest is ``memory_mb`` in extra_info.  Paper shape: List/CH require
orders of magnitude more than R-tree/Quadtree; R-tree slightly below
Quadtree (balanced structure, no empty quadrants).
"""

import pytest

from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex


def _factories(params, full_lists):
    if full_lists:
        yield "List Index", lambda: ListIndex()
        yield "CH Index", lambda: CHIndex(bin_width=params.w_default)
    else:
        yield "List Index*", lambda: RNListIndex(tau=params.tau_star)
        yield "CH Index*", lambda: RNCHIndex(
            tau=params.tau_star, bin_width=params.w_default
        )
    yield "R-tree", lambda: RTreeIndex()
    yield "Quadtree", lambda: QuadtreeIndex()


@pytest.mark.parametrize("dataset_name", ["s1", "query", "birch", "range_ds", "brightkite", "gowalla"])
def test_table3_memory(benchmark, request, dataset_name):
    ds = request.getfixturevalue(dataset_name)
    full_lists = ds.params.tau_star is None
    report = {}
    indexes = []
    for label, factory in _factories(ds.params, full_lists):
        index = factory().fit(ds.points)
        indexes.append(index)
        report[label] = round(index.memory_bytes() / 2**20, 3)
    benchmark.extra_info.update(dataset=ds.name, n=ds.n, memory_mb=report)
    benchmark(lambda: [i.memory_bytes() for i in indexes])

    tree_mb = report["R-tree"]
    list_mb = report.get("List Index", report.get("List Index*"))
    assert list_mb > tree_mb, "Table 3 shape: list-based indexes cost more memory"
