"""Shared fixtures for the per-figure benchmark suite.

Benchmarks default to the small ``test`` profile so that
``pytest benchmarks/ --benchmark-only`` completes in minutes; set
``REPRO_BENCH_PROFILE=bench`` (or ``large``) to run closer to paper scale.
Full-scale sweeps with paper-style tables come from the harness CLI
(``python -m repro.harness all``).
"""

import os

import pytest

from repro.datasets.loaders import load_dataset

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "test")


def dataset_fixture(name, fixture_name):
    @pytest.fixture(scope="session", name=fixture_name)
    def fixture():
        return load_dataset(name, profile=PROFILE, seed=0)

    return fixture


s1 = dataset_fixture("s1", "s1")
query = dataset_fixture("query", "query")
birch = dataset_fixture("birch", "birch")
# "range" would shadow the builtin-named pytest fixture namespace entry, so
# the range dataset is exposed as "range_ds".
range_ds = dataset_fixture("range", "range_ds")
brightkite = dataset_fixture("brightkite", "brightkite")
gowalla = dataset_fixture("gowalla", "gowalla")
