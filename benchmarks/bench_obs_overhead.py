"""Observability overhead gate: disabled instrumentation must stay ≤ 2%.

The :mod:`repro.obs` contract is that instrumentation compiled into the hot
paths is a *measured* no-op while observability is disabled (the default
everywhere except a live server).  This benchmark enforces it:

1. ``t_off`` — best-of wall clock of one end-to-end ``quantities()`` run
   with observability disabled (the production default path).
2. One run with observability **enabled**, counting what the
   instrumentation actually did: metric writes (registry write counter)
   and spans (trace tree walk).
3. The per-call cost of a *disabled* instrument — counter fetch + ``inc``
   and a no-op span — measured over a tight calibration loop.

The gate multiplies the op counts from (2) by the per-op disabled costs
from (3): that product is the instrumentation's worst-case share of
``t_off``, and it must stay under ``--gate-pct`` (default 2%).  Gating on
the *estimate* instead of an enabled-vs-disabled A/B diff keeps the check
deterministic on a noisy CI box — an A/B diff of two ~seconds runs swings
by more than 2% from scheduler jitter alone, while op counts and a
million-iteration calibration loop do not.  The A/B timing is still
recorded (not gated) for the trajectory file.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --n 20000
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro import obs
from repro.datasets.loaders import load_dataset
from repro.indexes.registry import make_index
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.provenance import append_record

CALIBRATION_ITERS = 200_000


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    return min(fn() for _ in range(max(1, repeats)))


def _timed(fn: Callable[[], object]) -> float:
    t = time.perf_counter()
    fn()
    return time.perf_counter() - t


def _count_spans(tree: "dict | None") -> int:
    if not tree:
        return 0
    return 1 + sum(_count_spans(child) for child in tree.get("children", ()))


def calibrate_noop_ns(iters: int = CALIBRATION_ITERS) -> "dict[str, float]":
    """Per-op nanosecond cost of *disabled* instruments (obs must be off)."""
    assert not obs.enabled(), "calibration measures the disabled path"
    # Counter fetch + labels + inc — the exact call shape of a hot site.
    t0 = time.perf_counter_ns()
    for _ in range(iters):
        obs_metrics.counter("bench_calibration_total", "calibration", ("k",)).labels("v").inc()
    metric_ns = (time.perf_counter_ns() - t0) / iters
    t0 = time.perf_counter_ns()
    for _ in range(iters):
        with obs_trace.span("bench.calibration"):
            pass
    span_ns = (time.perf_counter_ns() - t0) / iters
    return {"metric_op_ns": metric_ns, "span_ns": span_ns}


def run(
    n: int = 20000,
    dataset: str = "s1",
    family: str = "kdtree",
    dc: "float | None" = None,
    repeats: int = 3,
    seed: int = 0,
    gate_pct: float = 2.0,
) -> dict:
    ds = load_dataset(dataset, n=n, seed=seed)
    dc = float(dc) if dc is not None else float(min(ds.params.dc_grid))
    index = make_index(family).fit(ds.points)
    index.quantities(dc)  # warm-up: lazy flatten, caches

    assert not obs.enabled()
    t_off = _best_of(repeats, lambda: _timed(lambda: index.quantities(dc)))

    # Enabled pass: count what instrumentation a run actually performs.
    obs_metrics.REGISTRY.reset()
    obs_trace.reset()
    obs.enable()
    try:
        root = obs_trace.begin_span("bench.obs_overhead")
        writes_before = obs_metrics.REGISTRY.total_writes()
        with obs_trace.use_span(root):
            t_on = _timed(lambda: index.quantities(dc))
        metric_ops = obs_metrics.REGISTRY.total_writes() - writes_before
        root.finish()
        spans = _count_spans(obs_trace.get_trace(root.trace_id)) - 1  # minus root
    finally:
        obs.disable()
        obs_metrics.REGISTRY.reset()
        obs_trace.reset()

    calibration = calibrate_noop_ns()
    estimated_seconds = (
        metric_ops * calibration["metric_op_ns"] + spans * calibration["span_ns"]
    ) / 1e9
    overhead_pct = 100.0 * estimated_seconds / t_off if t_off > 0 else 0.0

    return {
        "benchmark": "obs_overhead",
        "dataset": ds.name,
        "n": int(ds.n),
        "dc": dc,
        "family": family,
        "repeats": repeats,
        "disabled_seconds": t_off,
        "enabled_seconds_informational": t_on,
        "metric_ops_per_query": int(metric_ops),
        "spans_per_query": int(spans),
        "calibration": calibration,
        "estimated_disabled_overhead_seconds": estimated_seconds,
        "estimated_disabled_overhead_pct": overhead_pct,
        "gate": {
            "pct": gate_pct,
            "ok": bool(overhead_pct <= gate_pct),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--dataset", default="s1")
    parser.add_argument("--family", default="kdtree")
    parser.add_argument("--dc", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--gate-pct", type=float, default=2.0,
        help="fail if the estimated disabled-instrumentation share of one "
        "query exceeds this percentage",
    )
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI smoke size (n=2000)"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 2000)
        args.repeats = 2
    record = run(
        n=args.n, dataset=args.dataset, family=args.family, dc=args.dc,
        repeats=args.repeats, seed=args.seed, gate_pct=args.gate_pct,
    )
    append_record(record, args.out)
    cal = record["calibration"]
    print(
        f"{record['family']} n={record['n']}: disabled {record['disabled_seconds']*1e3:.1f} ms, "
        f"enabled {record['enabled_seconds_informational']*1e3:.1f} ms (informational)"
    )
    print(
        f"per query: {record['metric_ops_per_query']} metric ops x "
        f"{cal['metric_op_ns']:.0f} ns + {record['spans_per_query']} spans x "
        f"{cal['span_ns']:.0f} ns = {record['estimated_disabled_overhead_seconds']*1e6:.1f} us "
        f"({record['estimated_disabled_overhead_pct']:.3f}% of the disabled run)"
    )
    print(f"wrote {args.out}")
    if not record["gate"]["ok"]:
        print(
            f"GATE FAILED: disabled-instrumentation overhead "
            f"{record['estimated_disabled_overhead_pct']:.3f}% exceeds "
            f"{record['gate']['pct']:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
