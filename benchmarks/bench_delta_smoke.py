"""δ-engine benchmark smoke: ρ-vs-δ phase split, batched vs per-object.

Runs ``quantities()`` for every tree/grid index at one dataset size and
records per-phase wall clock (ρ, δ, assignment) for both the batched δ
engine and the per-object reference path, writing the result to
``BENCH_delta.json``.  This is the perf trajectory file this PR and future
PRs append to — CI runs it at a tiny ``--quick`` size purely to keep the
harness from rotting; the committed numbers come from ``--n 20000``.

Usage::

    PYTHONPATH=src python benchmarks/bench_delta_smoke.py --quick
    PYTHONPATH=src python benchmarks/bench_delta_smoke.py --n 20000 --repeats 3
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict

import numpy as np

from repro.core.quantities import DensityOrder
from repro.datasets.loaders import load_dataset
from repro.harness.runner import time_cluster
from repro.obs.provenance import append_record
from repro.indexes.grid import GridIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex

#: index name -> (batched factory, per-object reference factory)
METHODS: Dict[str, tuple] = {
    "rtree": (lambda: RTreeIndex(), lambda: RTreeIndex(frontier="heap")),
    "quadtree": (lambda: QuadtreeIndex(), lambda: QuadtreeIndex(frontier="heap")),
    "kdtree": (lambda: KDTreeIndex(), lambda: KDTreeIndex(frontier="heap")),
    "grid": (lambda: GridIndex(), lambda: GridIndex(delta_mode="scalar")),
}


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    return min(fn() for _ in range(repeats))


def run(
    n: int = 20000,
    dataset: str = "s1",
    dc: "float | None" = None,
    repeats: int = 1,
    seed: int = 0,
) -> dict:
    """Measure every method; returns the BENCH_delta.json payload."""
    ds = load_dataset(dataset, n=n, seed=seed)
    # Default to the smallest dc of the dataset's grid: the δ query is then
    # the dominant phase (the regime this PR targets — ρ shrinks with dc,
    # the per-object δ search does not).
    dc = float(dc) if dc is not None else float(min(ds.params.dc_grid))
    report = {
        "benchmark": "delta_engine_phase_split",
        "dataset": ds.name,
        "n": int(ds.n),
        "dc": dc,
        "repeats": repeats,
        "methods": {},
    }
    for name, (batched_factory, reference_factory) in METHODS.items():
        batched = batched_factory().fit(ds.points)
        reference = reference_factory().fit(ds.points)
        rho = batched.rho_all(dc)
        order = DensityOrder(rho)

        def rho_time() -> float:
            t = time.perf_counter()
            batched.rho_all(dc)
            return time.perf_counter() - t

        def delta_batched_time() -> float:
            t = time.perf_counter()
            batched.delta_all(order)
            return time.perf_counter() - t

        def delta_reference_time() -> float:
            t = time.perf_counter()
            reference.delta_all(order)
            return time.perf_counter() - t

        d_new, m_new = batched.delta_all(order)
        d_ref, m_ref = reference.delta_all(order)
        np.testing.assert_array_equal(d_new, d_ref)
        np.testing.assert_array_equal(m_new, m_ref)

        rho_s = _best_of(repeats, rho_time)
        delta_s = _best_of(repeats, delta_batched_time)
        delta_ref_s = _best_of(repeats, delta_reference_time)
        _, cluster_timing = time_cluster(batched, dc, n_centers=5)
        report["methods"][name] = {
            "rho_seconds": rho_s,
            "delta_seconds": delta_s,
            "delta_reference_seconds": delta_ref_s,
            "assign_seconds": cluster_timing.assign_seconds,
            "delta_speedup": delta_ref_s / delta_s if delta_s > 0 else float("inf"),
            "quantities_speedup_vs_reference": (rho_s + delta_ref_s)
            / (rho_s + delta_s),
        }
    return report


def main(argv=None) -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--dataset", default="s1")
    parser.add_argument("--dc", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_delta.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny CI smoke size (n=1500, one repeat)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 1500)
        args.repeats = 1
    report = run(
        n=args.n, dataset=args.dataset, dc=args.dc,
        repeats=args.repeats, seed=args.seed,
    )
    append_record(report, args.out)
    for name, row in report["methods"].items():
        print(
            f"{name:10s} rho {row['rho_seconds']:.3f}s  "
            f"delta {row['delta_seconds']:.3f}s "
            f"(reference {row['delta_reference_seconds']:.3f}s, "
            f"{row['delta_speedup']:.1f}x)  "
            f"quantities {row['quantities_speedup_vs_reference']:.1f}x"
        )
    print(f"wrote {args.out}")
    return args.out


if __name__ == "__main__":
    main()
