"""Figure 6 — running time vs dc.

Paper shape: list-based times are flat in dc (binary search depth barely
moves); tree times grow with dc (more intersected nodes) and then collapse
at the largest dc L, where Observation-1 containment answers ρ from the
root.
"""

import pytest

from repro.harness.runner import time_quantities
from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.rtree import RTreeIndex

DC_POINTS = ["smallest", "middle", "largest", "L"]


def pick_dc(ds, which):
    grid = ds.params.dc_grid
    return {
        "smallest": grid[0],
        "middle": grid[len(grid) // 2],
        "largest": grid[-1],
        "L": ds.diameter_upper_bound(),
    }[which]


@pytest.mark.parametrize("which", DC_POINTS)
@pytest.mark.parametrize("method", ["list", "ch", "rtree"])
def test_fig6_dc_sweep_s1(benchmark, s1, which, method):
    ds = s1
    dc = pick_dc(ds, which)
    index = {
        "list": lambda: ListIndex(),
        "ch": lambda: CHIndex(bin_width=ds.params.w_default),
        "rtree": lambda: RTreeIndex(),
    }[method]().fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, dc=dc, dc_point=which, method=method)
    benchmark(lambda: time_quantities(index, dc)[0])


@pytest.mark.parametrize("which", DC_POINTS)
def test_fig6_tree_rho_only_birch(benchmark, birch, which):
    """Isolates the ρ query, where the dc growth/collapse effect lives."""
    ds = birch
    dc = pick_dc(ds, which)
    index = RTreeIndex().fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, dc=dc, dc_point=which)
    benchmark(index.rho_all, dc)


@pytest.mark.parametrize("method", ["list", "ch", "rtree"])
def test_fig6_whole_grid_batched_s1(benchmark, s1, method):
    """The entire Figure 6 dc grid in one quantities_multi pass per method."""
    ds = s1
    dcs = [pick_dc(ds, which) for which in DC_POINTS]
    index = {
        "list": lambda: ListIndex(),
        "ch": lambda: CHIndex(bin_width=ds.params.w_default),
        "rtree": lambda: RTreeIndex(),
    }[method]().fit(ds.points)
    benchmark.extra_info.update(dataset=ds.name, n_dcs=len(dcs), method=method)
    benchmark(index.quantities_multi, dcs)
