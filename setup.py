"""Legacy shim so `pip install -e .` works in offline environments.

The canonical metadata lives in pyproject.toml; this file only enables the
setup.py-develop editable path on systems without the `wheel` package
(pip falls back automatically, or pass --no-use-pep517).
"""

from setuptools import setup

setup()
