"""repro — Index-based Solutions for Efficient Density Peak Clustering.

A from-scratch reproduction of Rasool, Zhou, Chen, Liu & Xu (ICDE 2021 /
arXiv:2002.03182): Density Peak Clustering accelerated by list-based indexes
(List Index, Cumulative Histogram Index, approximate RN-List) and tree-based
indexes (Quadtree, R-tree), plus kd-tree and grid extensions.

Quickstart::

    import numpy as np
    from repro import DensityPeakClustering
    from repro.datasets import s1

    data = s1(seed=7)
    model = DensityPeakClustering(index="ch", dc=50_000, n_centers=15)
    labels = model.fit_predict(data.points)
"""

from repro.core import (
    DensityPeakClustering,
    DecisionGraph,
    DensityOrder,
    DPCQuantities,
    DPCResult,
    NO_NEIGHBOR,
    TieBreak,
    assign_labels,
    estimate_dc,
    halo_mask,
    naive_quantities,
    select_centers_auto,
    select_centers_threshold,
    select_centers_top_k,
    suggest_outliers,
)
from repro.indexes import (
    CHIndex,
    CorruptSnapshotError,
    DPCIndex,
    GridIndex,
    IndexStats,
    KDTreeIndex,
    ListIndex,
    QuadtreeIndex,
    RNCHIndex,
    RNListIndex,
    RTreeIndex,
    available_indexes,
    load_index,
    make_index,
    save_index,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DensityPeakClustering",
    "DecisionGraph",
    "DensityOrder",
    "DPCQuantities",
    "DPCResult",
    "NO_NEIGHBOR",
    "TieBreak",
    "assign_labels",
    "estimate_dc",
    "halo_mask",
    "naive_quantities",
    "select_centers_auto",
    "select_centers_threshold",
    "select_centers_top_k",
    "suggest_outliers",
    # indexes
    "CHIndex",
    "CorruptSnapshotError",
    "DPCIndex",
    "GridIndex",
    "IndexStats",
    "KDTreeIndex",
    "ListIndex",
    "QuadtreeIndex",
    "RNCHIndex",
    "RNListIndex",
    "RTreeIndex",
    "available_indexes",
    "make_index",
    "save_index",
    "load_index",
]
