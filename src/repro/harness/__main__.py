"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.harness fig5                 # one experiment
    python -m repro.harness all --profile test   # everything, small scale
    python -m repro.harness fig10 --datasets birch range --csv out.csv
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import EXPERIMENTS
from repro.harness.charts import CHART_SPECS, chart_table
from repro.harness.runner import DEFAULT_MEMORY_BUDGET_MB


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--profile", default="bench", choices=("test", "bench", "large"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--datasets", nargs="*", default=None, help="restrict to these datasets"
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=float,
        default=DEFAULT_MEMORY_BUDGET_MB,
        help="budget deciding where full list indexes are feasible",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="add multi-core columns (sharded process backend) to the "
        "experiments that support them (fig5, fig6-batched)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=4,
        help="tile count for the partitioned scale-out experiment",
    )
    parser.add_argument("--csv", default=None, help="also write the table as CSV")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render the result as an ASCII bar chart too",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        func = EXPERIMENTS[name]
        kwargs = {"profile": args.profile, "seed": args.seed, "datasets": args.datasets}
        if "memory_budget_mb" in func.__code__.co_varnames:
            kwargs["memory_budget_mb"] = args.memory_budget_mb
        if "n_jobs" in func.__code__.co_varnames:
            kwargs["n_jobs"] = args.n_jobs
        if "partitions" in func.__code__.co_varnames:
            kwargs["partitions"] = args.partitions
        started = time.perf_counter()
        table = func(**kwargs)
        elapsed = time.perf_counter() - started
        print(table.render())
        if args.chart and name in CHART_SPECS:
            print()
            print(chart_table(table, **CHART_SPECS[name]))
        print(f"[{name}: {len(table)} rows in {elapsed:.1f}s]\n")
        if args.csv:
            path = args.csv if len(names) == 1 else f"{name}_{args.csv}"
            table.to_csv(path)
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
