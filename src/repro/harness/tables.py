"""Plain-text result tables for the experiment harness.

Each experiment produces a :class:`Table` whose rows mirror the rows/series
of the corresponding paper table or figure; ``render()`` prints an aligned
monospace table, ``to_csv`` exports for plotting.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Table"]


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


class Table:
    """An ordered collection of result rows with a title and column list."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; declared: {self.columns}")
        self.rows.append({c: values.get(c) for c in self.columns})

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def where(self, **conditions: Any) -> List[Dict[str, Any]]:
        """Rows matching all ``column=value`` conditions."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in conditions.items()):
                out.append(row)
        return out

    def render(self) -> str:
        cells = [[_format_cell(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        body = [" | ".join(r[i].rjust(widths[i]) for i in range(len(widths))) for r in cells]
        lines = [f"== {self.title} ==", header, sep, *body]
        return "\n".join(lines)

    def to_csv(self, path: Optional[str] = None) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns, lineterminator="\n")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.title!r}, rows={len(self.rows)})"
