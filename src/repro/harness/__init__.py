"""Experiment harness: timing plumbing, result tables, per-figure runners."""

from repro.harness.tables import Table
from repro.harness.runner import (
    DEFAULT_MEMORY_BUDGET_MB,
    ClusterTiming,
    MethodSpec,
    QueryTiming,
    full_list_bytes,
    list_index_fits,
    paper_methods,
    time_cluster,
    time_naive,
    time_quantities,
)
from repro.harness.ablations import (
    ABLATIONS,
    ablation_densities,
    ablation_dimensionality,
    ablation_frontier,
    ablation_pruning,
    ablation_rtree_packing,
)
from repro.harness.experiments import (
    EXPERIMENTS,
    fig5_running_time,
    fig6_dc_sweep,
    fig7_binwidth_sweep,
    fig8_tau_sweep,
    fig9a_w_memory,
    fig9b_tau_memory,
    fig10_quality,
    table3_memory,
    table4_construction,
)

EXPERIMENTS.update(ABLATIONS)

__all__ = [
    "Table",
    "ABLATIONS",
    "ablation_densities",
    "ablation_dimensionality",
    "ablation_frontier",
    "ablation_pruning",
    "ablation_rtree_packing",
    "DEFAULT_MEMORY_BUDGET_MB",
    "ClusterTiming",
    "MethodSpec",
    "QueryTiming",
    "full_list_bytes",
    "list_index_fits",
    "paper_methods",
    "time_cluster",
    "time_naive",
    "time_quantities",
    "EXPERIMENTS",
    "fig5_running_time",
    "fig6_dc_sweep",
    "fig7_binwidth_sweep",
    "fig8_tau_sweep",
    "fig9a_w_memory",
    "fig9b_tau_memory",
    "fig10_quality",
    "table3_memory",
    "table4_construction",
]
