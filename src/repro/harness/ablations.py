"""Ablation experiments (DESIGN.md §3) — the design choices the paper
mentions but does not isolate:

* δ-query frontier: the paper's ordered stack vs the priority queue it
  suggests as a replacement;
* the two pruning lemmas, toggled independently;
* R-tree construction: STR packing vs dynamic Guttman insertion.

All three report both wall-clock and the logical probe counters, because at
Python scale constant factors can mask algorithmic differences the counters
still show.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets.loaders import load_dataset
from repro.harness.runner import time_quantities
from repro.harness.tables import Table
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex

__all__ = [
    "ablation_frontier",
    "ablation_pruning",
    "ablation_rtree_packing",
    "ablation_dimensionality",
    "ablation_densities",
    "ABLATIONS",
]


def ablation_frontier(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """δ-query frontier: batched engine vs per-object stack/heap references.

    ``"stack"`` is the paper's Algorithm 6, ``"heap"`` the priority-queue
    replacement it suggests, ``"batched"`` the frontier-batched engine of
    :mod:`repro.indexes.kernels` (note its ``nodes_visited`` counts per
    block-visit over a different traversal schedule).
    """
    table = Table(
        "Ablation — delta-query frontier (batched vs stack vs heap)",
        ["dataset", "n", "index", "frontier", "delta_seconds", "nodes_visited"],
    )
    for name in datasets or ("birch", "gowalla"):
        ds = load_dataset(name, profile=profile, seed=seed)
        for cls in (RTreeIndex, QuadtreeIndex):
            for frontier in ("batched", "heap", "stack"):
                index = cls(frontier=frontier).fit(ds.points)
                _, timing = time_quantities(index, ds.params.dc_default)
                table.add_row(
                    dataset=ds.name, n=ds.n, index=cls.name, frontier=frontier,
                    delta_seconds=timing.delta_seconds,
                    nodes_visited=index.stats().nodes_visited,
                )
    return table


def ablation_pruning(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Lemma 1 (density) and Lemma 2 (distance) pruning, independently."""
    table = Table(
        "Ablation — pruning lemmas in the delta query",
        ["dataset", "n", "density", "distance", "delta_seconds", "nodes_visited"],
    )
    configs = (
        (True, True),
        (True, False),
        (False, True),
        (False, False),
    )
    for name in datasets or ("birch",):
        ds = load_dataset(name, profile=profile, seed=seed)
        for density, distance in configs:
            index = RTreeIndex(
                density_pruning=density, distance_pruning=distance
            ).fit(ds.points)
            _, timing = time_quantities(index, ds.params.dc_default)
            table.add_row(
                dataset=ds.name, n=ds.n, density=density, distance=distance,
                delta_seconds=timing.delta_seconds,
                nodes_visited=index.stats().nodes_visited,
            )
    return table


def ablation_rtree_packing(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """STR bulk loading vs dynamic Guttman insertion (paper §4.2)."""
    table = Table(
        "Ablation — R-tree packing (STR vs dynamic insertion)",
        [
            "dataset", "n", "packing", "build_seconds", "query_seconds",
            "nodes_visited", "leaf_fill",
        ],
    )
    for name in datasets or ("query",):
        ds = load_dataset(name, profile=profile, seed=seed)
        for packing in ("str", "dynamic"):
            index = RTreeIndex(packing=packing).fit(ds.points)
            _, timing = time_quantities(index, ds.params.dc_default)
            leaves = [len(n.ids) for n in index.root.iter_nodes() if n.is_leaf]
            fill = sum(leaves) / (len(leaves) * index.max_entries)
            table.add_row(
                dataset=ds.name, n=ds.n, packing=packing,
                build_seconds=index.build_seconds,
                query_seconds=timing.total_seconds,
                nodes_visited=index.stats().nodes_visited,
                leaf_fill=fill,
            )
    return table


def ablation_dimensionality(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Query cost vs dimensionality (beyond the paper's 2-D datasets).

    Gaussian mixtures embedded in d = 2..8 dimensions at constant n; the
    list-based indexes are dimension-oblivious (they only see distances)
    while the box-pruning indexes degrade as boxes become less selective —
    the classic curse-of-dimensionality effect, quantified with probe
    counters.
    """
    import numpy as np

    from repro.indexes.kdtree import KDTreeIndex
    from repro.indexes.list_index import ListIndex

    del datasets  # synthetic sweep; the dataset argument does not apply
    n = {"test": 600, "bench": 2000, "large": 5000}.get(profile, 2000)
    table = Table(
        "Ablation — query cost vs dimensionality (n fixed)",
        [
            "d", "n", "index", "seconds", "nodes_visited",
            "distance_evals", "objects_scanned",
        ],
    )
    rng = np.random.default_rng(seed)
    for d in (2, 3, 5, 8):
        centers = rng.uniform(0.0, 10.0, size=(6, d))
        points = np.concatenate(
            [rng.normal(c, 0.5, size=(n // 6 + 1, d)) for c in centers]
        )[:n]
        dc = 1.0
        for factory in (lambda: ListIndex(), lambda: KDTreeIndex(), lambda: RTreeIndex()):
            index = factory().fit(points)
            _, timing = time_quantities(index, dc)
            stats = index.stats()
            table.add_row(
                d=d, n=n, index=index.name, seconds=timing.total_seconds,
                nodes_visited=stats.nodes_visited,
                distance_evals=stats.distance_evals,
                objects_scanned=stats.objects_scanned,
            )
    return table


def ablation_densities(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Cut-off (Eq. 1) vs Gaussian-kernel vs kNN densities (extension).

    Same index, same δ machinery, three density definitions; reports wall
    clock for the density step and agreement with generator ground truth
    (ARI) where the dataset has one.
    """
    import time as _time

    import numpy as np

    from repro.core.assignment import assign_labels
    from repro.core.decision import select_centers_top_k
    from repro.core.quantities import DensityOrder
    from repro.extras.variants import gaussian_density, knn_density
    from repro.indexes.list_index import ListIndex
    from repro.metrics.external import adjusted_rand_index

    table = Table(
        "Ablation — density definitions (cut-off vs kernel vs kNN)",
        ["dataset", "n", "density", "rho_seconds", "k_or_dc", "ari_vs_truth"],
    )
    for name in datasets or ("s1", "birch"):
        ds = load_dataset(name, profile=profile, seed=seed)
        dc = ds.params.dc_default
        k_clusters = int(ds.meta.get("clusters", 15))
        index = ListIndex().fit(ds.points)
        knn_k = max(4, ds.n // 100)

        def run(label, rho, knob):
            order = DensityOrder(rho)
            delta, mu = index.delta_all(order)
            from repro.core.quantities import DPCQuantities

            q = DPCQuantities(dc=dc, rho=order.rho, delta=delta, mu=mu, density_order=order)
            centers = select_centers_top_k(q, k_clusters)
            labels = assign_labels(q, centers, points=ds.points)
            ari = (
                adjusted_rand_index(ds.labels, labels)
                if ds.labels is not None
                else None
            )
            table.add_row(
                dataset=ds.name, n=ds.n, density=label,
                rho_seconds=rho_time, k_or_dc=knob, ari_vs_truth=ari,
            )

        start = _time.perf_counter()
        cutoff = index.rho_all(dc).astype(np.float64)
        rho_time = _time.perf_counter() - start
        run("cut-off", cutoff, dc)

        start = _time.perf_counter()
        kernel = gaussian_density(ds.points, dc)
        rho_time = _time.perf_counter() - start
        run("gaussian", kernel, dc)

        start = _time.perf_counter()
        knn = knn_density(index, k=knn_k)
        rho_time = _time.perf_counter() - start
        run("knn", knn, knn_k)
    return table


ABLATIONS = {
    "ablation-frontier": ablation_frontier,
    "ablation-pruning": ablation_pruning,
    "ablation-packing": ablation_rtree_packing,
    "ablation-dimensionality": ablation_dimensionality,
    "ablation-densities": ablation_densities,
}
