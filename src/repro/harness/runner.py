"""Timing / memory plumbing shared by the experiment definitions.

The paper's method line-up is encoded here once:

* ``fig5 methods`` — List, CH, R-tree, Quadtree, plus the original DPC
  baseline;
* list-based indexes run **full** on datasets whose N-List fits the memory
  budget and are *skipped* otherwise in Figure 5 (exactly the missing bars
  in the paper); the τ-approximated variants stand in for them everywhere
  the paper says "we used the largest τ" (Tables 3–4, Figures 6–10);
* the memory budget is a knob (default 300 MB) because the paper's own
  cut-off was its 16 GB testbed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.baseline import naive_quantities
from repro.core.quantities import DensityOrder, DPCQuantities, DPCResult, TieBreak
from repro.datasets.base import Dataset
from repro.obs import trace as obs_trace
from repro.indexes.base import DPCIndex
from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex

__all__ = [
    "QueryTiming",
    "ClusterTiming",
    "time_quantities",
    "time_quantities_multi",
    "time_cluster",
    "time_naive",
    "full_list_bytes",
    "list_index_fits",
    "MethodSpec",
    "paper_methods",
    "DEFAULT_MEMORY_BUDGET_MB",
]

DEFAULT_MEMORY_BUDGET_MB: float = 300.0


@dataclass(frozen=True)
class QueryTiming:
    """Wall-clock decomposition of one (ρ, δ) run over a fitted index."""

    rho_seconds: float
    delta_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.rho_seconds + self.delta_seconds


@dataclass(frozen=True)
class ClusterTiming:
    """Phase split of a full clustering run: ρ vs δ vs assignment.

    ``assign_seconds`` covers everything after the two index queries —
    centre selection, the μ-chain label propagation, and the optional halo.
    This is the decomposition the δ-engine benchmarks record, so a perf PR's
    effect on each phase stays visible in the numbers.
    """

    rho_seconds: float
    delta_seconds: float
    assign_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.rho_seconds + self.delta_seconds + self.assign_seconds

    @property
    def query(self) -> QueryTiming:
        return QueryTiming(self.rho_seconds, self.delta_seconds)


def time_quantities(
    index: DPCIndex, dc: float, tie_break: "str | TieBreak" = TieBreak.ID
) -> Tuple[DPCQuantities, QueryTiming]:
    """Run both DPC queries on ``index`` and time them separately.

    The phases are also traced under the engine's own span names
    (``engine.rho`` / ``engine.delta``), so a harness run with
    :mod:`repro.obs` enabled exposes the same phase breakdown as a served
    request; the returned perf_counter timings stay the measurement of
    record either way.
    """
    with obs_trace.span("engine.quantities", dc=float(dc)):
        t0 = time.perf_counter()
        with obs_trace.span("engine.rho"):
            rho = index.rho_all(float(dc))
        t1 = time.perf_counter()
        order = DensityOrder(rho, tie_break)
        with obs_trace.span("engine.delta"):
            delta, mu = index.delta_all(order)
        t2 = time.perf_counter()
    q = DPCQuantities(dc=float(dc), rho=rho, delta=delta, mu=mu, density_order=order)
    return q, QueryTiming(rho_seconds=t1 - t0, delta_seconds=t2 - t1)


def time_quantities_multi(
    index: DPCIndex, dcs, tie_break: "str | TieBreak" = TieBreak.ID
) -> Tuple[List[DPCQuantities], float]:
    """Run the batched multi-``dc`` sweep on ``index``; returns (qs, seconds).

    This is the paper's index-once workflow measured as one unit: every
    cut-off of the grid evaluated against the one built structure through
    ``quantities_multi`` (batched kernels in the list-family indexes).
    """
    t0 = time.perf_counter()
    qs = index.quantities_multi(dcs, tie_break)
    return qs, time.perf_counter() - t0


def time_cluster(
    index: DPCIndex,
    dc: float,
    n_centers: Optional[int] = None,
    rho_min: Optional[float] = None,
    delta_min: Optional[float] = None,
    tie_break: "str | TieBreak" = TieBreak.ID,
    halo: bool = False,
) -> Tuple["DPCResult", ClusterTiming]:
    """Run a full clustering on ``index`` with a per-phase timing split."""
    with obs_trace.span("engine.quantities", dc=float(dc)):
        t0 = time.perf_counter()
        with obs_trace.span("engine.rho"):
            rho = index.rho_all(float(dc))
        t1 = time.perf_counter()
        order = DensityOrder(rho, tie_break)
        with obs_trace.span("engine.delta"):
            delta, mu = index.delta_all(order)
        t2 = time.perf_counter()
    q = DPCQuantities(dc=float(dc), rho=rho, delta=delta, mu=mu, density_order=order)
    result = index._finish_cluster(q, n_centers, rho_min, delta_min, halo)
    t3 = time.perf_counter()
    return result, ClusterTiming(
        rho_seconds=t1 - t0, delta_seconds=t2 - t1, assign_seconds=t3 - t2
    )


def time_naive(points: np.ndarray, dc: float) -> Tuple[DPCQuantities, float]:
    """Run the original Θ(n²) DPC algorithm, returning (quantities, seconds)."""
    t0 = time.perf_counter()
    q = naive_quantities(points, dc)
    return q, time.perf_counter() - t0


def full_list_bytes(n: int) -> int:
    """Resident size of a full List Index: (n, n-1) int32 ids + float64 dists."""
    return n * (n - 1) * (4 + 8)


def list_index_fits(n: int, memory_budget_mb: float) -> bool:
    """Would the full N-List fit the budget (the paper's 16 GB analogue)?"""
    return full_list_bytes(n) <= memory_budget_mb * 1024 * 1024


@dataclass(frozen=True)
class MethodSpec:
    """One method column of the paper's comparison plots.

    ``factory`` builds a fresh unfitted index; ``None`` marks the naive DPC
    baseline (timed through :func:`time_naive` instead).  ``approximate``
    records whether the list-based method had to fall back to the τ-truncated
    variant (the paper's ``*`` rows).
    """

    label: str
    factory: Optional[Callable[[], DPCIndex]]
    approximate: bool = False

    def build(self, points: np.ndarray) -> DPCIndex:
        if self.factory is None:
            raise ValueError(f"method {self.label} has no index (naive baseline)")
        return self.factory().fit(points)


def paper_methods(
    dataset: Dataset,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    include_naive: bool = True,
    skip_unfit_lists: bool = False,
) -> List[MethodSpec]:
    """The paper's Figure 5 method set for ``dataset``.

    List/CH run full when the N-List fits ``memory_budget_mb``; otherwise
    they either fall back to the τ*-truncated variant (Tables 3–4, Figures
    6–10 behaviour) or — with ``skip_unfit_lists=True`` — are omitted
    entirely (Figure 5 behaviour: no bars).  The naive baseline follows the
    same feasibility rule as the paper stored its full distance matrix.
    """
    params = dataset.params
    n = dataset.n
    fits = list_index_fits(n, memory_budget_mb)
    methods: List[MethodSpec] = []

    if fits:
        methods.append(MethodSpec("List Index", lambda: ListIndex()))
        methods.append(
            MethodSpec("CH Index", lambda: CHIndex(bin_width=params.w_default))
        )
    elif not skip_unfit_lists:
        tau = params.tau_star
        if tau is not None:
            methods.append(
                MethodSpec(
                    "List Index", lambda: RNListIndex(tau=tau), approximate=True
                )
            )
            methods.append(
                MethodSpec(
                    "CH Index",
                    lambda: RNCHIndex(tau=tau, bin_width=params.w_default),
                    approximate=True,
                )
            )
    methods.append(MethodSpec("R-tree", lambda: RTreeIndex()))
    methods.append(MethodSpec("Quadtree", lambda: QuadtreeIndex()))
    if include_naive and fits:
        methods.append(MethodSpec("DPC", None))
    return methods
