"""ASCII charts for the harness CLI.

The paper's results are figures; ``python -m repro.harness fig6 --chart``
renders the regenerated series as monospace bar charts so the shape (growth,
collapse, crossover) is visible without leaving the terminal.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.harness.tables import Table

__all__ = ["bar_chart", "grouped_chart", "chart_table"]


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.2g}"
    return f"{value:.4g}"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 48,
) -> str:
    """One horizontal bar per (label, value); bars scale to the maximum."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels vs {len(values)} values")
    if not labels:
        return f"== {title} ==\n(no data)"
    peak = max((abs(v) for v in values), default=0.0)
    label_w = max(len(str(l)) for l in labels)
    lines = [f"== {title} =="] if title else []
    for label, value in zip(labels, values):
        bar = "" if peak == 0 else "█" * max(1, int(round(abs(value) / peak * width)))
        lines.append(f"{str(label):>{label_w}} | {bar} {_format_value(value)}")
    return "\n".join(lines)


def grouped_chart(
    groups: Dict[str, Dict[str, float]],
    title: str = "",
    width: int = 40,
) -> str:
    """Bars grouped by an outer key: ``{group: {series: value}}``.

    Matches the paper's multi-series figures (e.g. one group per dc, one bar
    per index).
    """
    lines = [f"== {title} =="] if title else []
    all_values = [v for series in groups.values() for v in series.values()]
    peak = max((abs(v) for v in all_values), default=0.0)
    series_w = max(
        (len(str(s)) for series in groups.values() for s in series), default=1
    )
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            bar = "" if peak == 0 else "█" * max(1, int(round(abs(value) / peak * width)))
            lines.append(f"  {str(name):>{series_w}} | {bar} {_format_value(value)}")
    return "\n".join(lines)


def chart_table(
    table: Table,
    value_column: str,
    label_column: str,
    group_column: Optional[str] = None,
    width: int = 40,
) -> str:
    """Render a harness :class:`Table` as a (grouped) bar chart.

    Rows with missing values are skipped.  With ``group_column``, one block
    per distinct group value is emitted.
    """
    rows = [r for r in table.rows if r.get(value_column) is not None]
    if group_column is None:
        labels = [str(r[label_column]) for r in rows]
        values = [float(r[value_column]) for r in rows]
        return bar_chart(labels, values, title=table.title, width=width)
    groups: Dict[str, Dict[str, float]] = {}
    for r in rows:
        group = str(r[group_column])
        groups.setdefault(group, {})[str(r[label_column])] = float(r[value_column])
    return grouped_chart(groups, title=table.title, width=width)


#: Per-experiment chart configuration: (value, label, group) columns.
CHART_SPECS: Dict[str, Dict[str, Optional[str]]] = {
    "fig5": {"value_column": "seconds", "label_column": "method", "group_column": "dataset"},
    "table3": {"value_column": "memory_mb", "label_column": "method", "group_column": "dataset"},
    "table4": {"value_column": "seconds", "label_column": "method", "group_column": "dataset"},
    "fig6": {"value_column": "seconds", "label_column": "dc", "group_column": "method"},
    "fig7": {"value_column": "rho_seconds", "label_column": "w", "group_column": "dataset"},
    "fig8": {"value_column": "seconds", "label_column": "tau", "group_column": "method"},
    "fig9a": {"value_column": "histogram_mb", "label_column": "w", "group_column": "dataset"},
    "fig9b": {"value_column": "memory_mb", "label_column": "tau", "group_column": "dataset"},
    "fig10": {"value_column": "f1", "label_column": "tau", "group_column": "dataset"},
}
