"""Experiment definitions — one function per paper table/figure.

Every function returns a :class:`~repro.harness.tables.Table` whose rows
mirror the rows/series the paper reports; the CLI
(``python -m repro.harness <experiment>``) renders them.  Dataset sizes
follow the chosen profile (DESIGN.md §3): absolute times differ from the
paper's C++ testbed, the *shape* (who wins, rough factors, crossovers) is
the reproduction target recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.assignment import assign_labels
from repro.core.decision import select_centers_auto, select_centers_top_k
from repro.datasets.base import Dataset
from repro.datasets.loaders import PAPER_DATASETS, load_dataset
from repro.harness.runner import (
    DEFAULT_MEMORY_BUDGET_MB,
    MethodSpec,
    full_list_bytes,
    list_index_fits,
    paper_methods,
    time_naive,
    time_quantities,
    time_quantities_multi,
)
from repro.harness.tables import Table
from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex
from repro.metrics.pair_metrics import pairwise_precision_recall_f1

__all__ = [
    "fig5_running_time",
    "table3_memory",
    "table4_construction",
    "fig6_dc_sweep",
    "fig6_dc_sweep_batched",
    "fig7_binwidth_sweep",
    "fig8_tau_sweep",
    "fig9a_w_memory",
    "fig9b_tau_memory",
    "fig10_quality",
    "serving_throughput",
    "partitioned_scaleout",
    "EXPERIMENTS",
]


def _datasets(
    names: Optional[Sequence[str]], profile: str, seed: int, default: Sequence[str]
) -> List[Dataset]:
    return [load_dataset(name, profile=profile, seed=seed) for name in (names or default)]


#: The four datasets of the τ / w studies (paper §5.3.2–5.4).
APPROX_DATASETS = ("birch", "range", "brightkite", "gowalla")


def fig5_running_time(
    profile: str = "bench",
    seed: int = 0,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    datasets: Optional[Sequence[str]] = None,
    n_jobs: int = 1,
) -> Table:
    """Figure 5: query (ρ+δ) running time of every method on every dataset.

    List/CH/DPC rows are absent for datasets whose full N-List (or distance
    matrix) exceeds the memory budget — the paper's missing bars.

    ``n_jobs > 1`` adds multi-core columns: the same (ρ+δ) run re-timed on
    the sharded ``process`` backend (:mod:`repro.indexes.parallel`), whose
    results are bit-identical to the serial columns by contract.
    """
    table = Table(
        "Figure 5 — running time (s), one (rho+delta) run at the dataset's dc",
        ["dataset", "n", "dc", "method", "seconds", "rho_seconds", "delta_seconds",
         "fit_seconds", "par_seconds", "par_speedup", "note"],
    )
    for ds in _datasets(datasets, profile, seed, PAPER_DATASETS):
        dc = ds.params.dc_default
        for method in paper_methods(
            ds, memory_budget_mb, include_naive=True, skip_unfit_lists=True
        ):
            if method.factory is None:
                _, seconds = time_naive(ds.points, dc)
                table.add_row(
                    dataset=ds.name, n=ds.n, dc=dc, method="DPC",
                    seconds=seconds, note="baseline",
                )
            else:
                index = method.build(ds.points)
                _, timing = time_quantities(index, dc)
                par_seconds = par_speedup = None
                if n_jobs > 1:
                    index.set_execution(backend="process", n_jobs=n_jobs)
                    try:
                        # Warm-up: fork the pool and publish the shard image
                        # once, so the column reports steady-state query
                        # latency rather than one-time start-up cost.
                        index.quantities(dc)
                        _, par = time_quantities(index, dc)
                        par_seconds = par.total_seconds
                        if par_seconds > 0:
                            par_speedup = timing.total_seconds / par_seconds
                    finally:
                        index.set_execution(backend="serial")
                table.add_row(
                    dataset=ds.name, n=ds.n, dc=dc, method=method.label,
                    seconds=timing.total_seconds,
                    rho_seconds=timing.rho_seconds,
                    delta_seconds=timing.delta_seconds,
                    fit_seconds=index.build_seconds,
                    par_seconds=par_seconds,
                    par_speedup=par_speedup,
                    note="approx (tau*)" if method.approximate else None,
                )
    return table


def table3_memory(
    profile: str = "bench",
    seed: int = 0,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Table 3: index memory (MB); '*' rows are the τ*-truncated list indexes."""
    table = Table(
        "Table 3 — memory usage by index (MB)",
        ["dataset", "n", "method", "memory_mb", "approx"],
    )
    for ds in _datasets(datasets, profile, seed, PAPER_DATASETS):
        for method in paper_methods(ds, memory_budget_mb, include_naive=False):
            index = method.build(ds.points)
            table.add_row(
                dataset=ds.name, n=ds.n, method=method.label,
                memory_mb=index.memory_bytes() / 2**20,
                approx=method.approximate,
            )
    return table


def table4_construction(
    profile: str = "bench",
    seed: int = 0,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Table 4: construction time (s).

    Following the paper, the CH row reports only the *extra* time to build
    the histograms on top of the List Index (measured as the difference of
    the two full builds).
    """
    table = Table(
        "Table 4 — construction time of each index (s)",
        ["dataset", "n", "method", "seconds", "approx"],
    )
    for ds in _datasets(datasets, profile, seed, PAPER_DATASETS):
        list_seconds: Optional[float] = None
        for method in paper_methods(ds, memory_budget_mb, include_naive=False):
            index = method.build(ds.points)
            seconds = index.build_seconds
            if method.label == "List Index":
                list_seconds = seconds
            elif method.label == "CH Index" and list_seconds is not None:
                seconds = max(seconds - list_seconds, 0.0)
            table.add_row(
                dataset=ds.name, n=ds.n, method=method.label,
                seconds=seconds, approx=method.approximate,
            )
    return table


def fig6_dc_sweep(
    profile: str = "bench",
    seed: int = 0,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Figure 6: running time vs dc (the 5 panel values plus L = largest).

    Expected shape: list-based flat in dc; trees grow with dc then collapse
    at L, where the root is fully contained and every ρ is answered in O(1).
    """
    table = Table(
        "Figure 6 — running time (s) vs dc",
        ["dataset", "n", "dc", "is_L", "method", "seconds", "rho_seconds", "delta_seconds"],
    )
    for ds in _datasets(datasets, profile, seed, PAPER_DATASETS):
        methods = paper_methods(ds, memory_budget_mb, include_naive=False)
        built = [(m, m.build(ds.points)) for m in methods]
        dcs = [(float(v), False) for v in ds.params.dc_grid]
        dcs.append((ds.diameter_upper_bound(), True))
        for dc, is_largest in dcs:
            for method, index in built:
                _, timing = time_quantities(index, dc)
                table.add_row(
                    dataset=ds.name, n=ds.n, dc=dc, is_L=is_largest,
                    method=method.label, seconds=timing.total_seconds,
                    rho_seconds=timing.rho_seconds,
                    delta_seconds=timing.delta_seconds,
                )
    return table


def fig6_dc_sweep_batched(
    profile: str = "bench",
    seed: int = 0,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    datasets: Optional[Sequence[str]] = None,
    n_jobs: int = 1,
) -> Table:
    """The Figure 6 dc grid evaluated as one batched ``quantities_multi`` pass.

    This is the workflow the paper's abstract promises ("the whole
    clustering process which probably involves trying many dc can be
    substantially shortened") measured end to end: per method, the whole
    dc grid against the one built index, batched vs. the per-dc loop.

    ``n_jobs > 1`` adds a multi-core column: the same batched sweep on the
    sharded ``process`` backend, which shards the full ``(dc, chunk)`` task
    grid over workers (results bit-identical to the serial sweep).
    """
    table = Table(
        "Figure 6 (batched) — whole dc grid per method, one quantities_multi pass",
        ["dataset", "n", "n_dcs", "method", "batched_seconds", "sequential_seconds",
         "speedup", "par_seconds", "par_speedup"],
    )
    for ds in _datasets(datasets, profile, seed, PAPER_DATASETS):
        methods = paper_methods(ds, memory_budget_mb, include_naive=False)
        dcs = [float(v) for v in ds.params.dc_grid]
        for method in methods:
            index = method.build(ds.points)
            _, batched = time_quantities_multi(index, dcs)
            sequential = 0.0
            for dc in dcs:
                _, timing = time_quantities(index, dc)
                sequential += timing.total_seconds
            par_seconds = par_speedup = None
            if n_jobs > 1:
                index.set_execution(backend="process", n_jobs=n_jobs)
                try:
                    # Warm-up (pool fork + shard-image publication) so the
                    # column is steady-state latency, not start-up cost.
                    index.quantities(dcs[0])
                    _, par_seconds = time_quantities_multi(index, dcs)
                    if par_seconds > 0:
                        par_speedup = batched / par_seconds
                finally:
                    index.set_execution(backend="serial")
            table.add_row(
                dataset=ds.name, n=ds.n, n_dcs=len(dcs), method=method.label,
                batched_seconds=batched, sequential_seconds=sequential,
                speedup=sequential / batched if batched > 0 else float("inf"),
                par_seconds=par_seconds, par_speedup=par_speedup,
            )
    return table


def fig7_binwidth_sweep(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Figure 7: CH Index running time vs bin width w, three dc per dataset.

    Expected shape: time grows with w (longer N-List sections to search),
    with dips where dc is an exact multiple of w (the bin density is the
    answer, no search at all).
    """
    table = Table(
        "Figure 7 — CH Index running time (s) vs bin width w",
        ["dataset", "n", "w", "dc", "rho_seconds", "total_seconds"],
    )
    for ds in _datasets(datasets, profile, seed, APPROX_DATASETS):
        params = ds.params
        if params.fig7_dc is None or params.tau_star is None:
            continue
        for w in params.w_grid:
            index = RNCHIndex(tau=params.tau_star, bin_width=float(w)).fit(ds.points)
            for dc in params.fig7_dc:
                _, timing = time_quantities(index, float(dc))
                table.add_row(
                    dataset=ds.name, n=ds.n, w=float(w), dc=float(dc),
                    rho_seconds=timing.rho_seconds,
                    total_seconds=timing.total_seconds,
                )
    return table


def fig8_tau_sweep(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Figure 8: List vs CH running time as τ varies (dc fixed at §5.4 values).

    Expected shape: time grows with τ (longer RN-Lists); CH is flatter
    because its ρ section length is governed by w, not τ.
    """
    table = Table(
        "Figure 8 — running time (s) vs tau (approximate indexes)",
        ["dataset", "n", "tau", "method", "seconds"],
    )
    for ds in _datasets(datasets, profile, seed, APPROX_DATASETS):
        params = ds.params
        if params.tau_grid is None:
            continue
        dc = params.dc_default
        for tau in params.tau_grid:
            for label, factory in (
                ("List", lambda: RNListIndex(tau=float(tau))),
                ("CH Index", lambda: RNCHIndex(tau=float(tau), bin_width=params.w_default)),
            ):
                index = factory().fit(ds.points)
                _, timing = time_quantities(index, dc)
                table.add_row(
                    dataset=ds.name, n=ds.n, tau=float(tau),
                    method=label, seconds=timing.total_seconds,
                )
    return table


def fig9a_w_memory(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Figure 9a: memory of the cumulative histograms vs bin width w."""
    table = Table(
        "Figure 9a — CH histogram memory (MB) vs w",
        ["dataset", "n", "w", "histogram_mb"],
    )
    for ds in _datasets(datasets, profile, seed, APPROX_DATASETS):
        params = ds.params
        if params.tau_star is None:
            continue
        for w in params.w_grid:
            index = RNCHIndex(tau=params.tau_star, bin_width=float(w)).fit(ds.points)
            table.add_row(
                dataset=ds.name, n=ds.n, w=float(w),
                histogram_mb=index.histogram_memory_bytes() / 2**20,
            )
    return table


def fig9b_tau_memory(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Figure 9b: List Index memory vs τ."""
    table = Table(
        "Figure 9b — List Index memory (MB) vs tau",
        ["dataset", "n", "tau", "memory_mb"],
    )
    for ds in _datasets(datasets, profile, seed, APPROX_DATASETS):
        params = ds.params
        if params.tau_grid is None:
            continue
        for tau in params.tau_grid:
            index = RNListIndex(tau=float(tau)).fit(ds.points)
            table.add_row(
                dataset=ds.name, n=ds.n, tau=float(tau),
                memory_mb=index.memory_bytes() / 2**20,
            )
    return table


def fig10_quality(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Table:
    """Figure 10: clustering quality (pairwise P/R/F1) of the τ-approximate
    List Index against exact DPC, as τ shrinks below dc.

    Expected shape: near-1.0 metrics while dc ≤ τ; collapse once τ < dc.
    """
    table = Table(
        "Figure 10 — quality of the approximate solution vs tau",
        ["dataset", "n", "dc", "tau", "precision", "recall", "f1", "n_centers"],
    )
    for ds in _datasets(datasets, profile, seed, APPROX_DATASETS):
        params = ds.params
        if params.quality_tau_grid is None:
            continue
        dc = params.dc_default
        # Reference clustering G: exact DPC via an exact index.
        exact = RTreeIndex().fit(ds.points)
        q_ref = exact.quantities(dc)
        centers_ref = select_centers_auto(q_ref, min_centers=2)
        k = len(centers_ref)
        labels_ref = assign_labels(q_ref, centers_ref, points=ds.points)
        for tau in params.quality_tau_grid:
            approx = RNListIndex(tau=float(tau)).fit(ds.points)
            q_approx = approx.quantities(dc)
            centers = select_centers_top_k(q_approx, k)
            labels = assign_labels(q_approx, centers, points=ds.points)
            precision, recall, f1 = pairwise_precision_recall_f1(labels_ref, labels)
            table.add_row(
                dataset=ds.name, n=ds.n, dc=dc, tau=float(tau),
                precision=precision, recall=recall, f1=f1, n_centers=k,
            )
    return table


def serving_throughput(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    indexes: Sequence[str] = ("kdtree", "grid"),
    clients: int = 8,
    requests_per_client: int = 16,
) -> Table:
    """Serving-layer dispatch comparison (not a paper figure — a scale-up).

    Closed-loop clients issue ``cluster`` requests drawn from the dataset's
    ``dc`` grid against a :class:`~repro.serving.service.ClusteringService`,
    once with per-request serial dispatch and once with coalesced dispatch
    through the multi-``dc`` kernels; the cache is disabled so the numbers
    measure dispatch, not memoisation.  Expected shape: coalescing wins
    whenever concurrency > 1, because a batch of distinct cut-offs shares
    one flattened-image engine run.
    """
    from repro.serving.loadgen import run_load
    from repro.serving.service import ClusteringService

    table = Table(
        "Serving — closed-loop throughput, serial vs coalesced dispatch",
        [
            "dataset", "n", "index", "dispatch", "clients", "requests",
            "rps", "p50_ms", "p95_ms", "p99_ms", "speedup",
        ],
    )
    for ds in _datasets(datasets, profile, seed, ("s1",)):
        dcs = [float(v) for v in ds.params.dc_grid]
        for index_name in indexes:
            serial_rps = None
            for dispatch in ("serial", "coalesce"):
                with ClusteringService(dispatch=dispatch, cache_entries=0) as service:
                    service.fit_snapshot("bench", ds.points, index=index_name)
                    report = run_load(
                        service, "bench", dcs,
                        clients=clients, requests_per_client=requests_per_client,
                        op="cluster", use_cache=False, seed=seed,
                    )
                if dispatch == "serial":
                    serial_rps = report.throughput_rps
                table.add_row(
                    dataset=ds.name, n=ds.n, index=index_name, dispatch=dispatch,
                    clients=clients, requests=report.requests,
                    rps=report.throughput_rps,
                    p50_ms=report.latency_ms["p50"],
                    p95_ms=report.latency_ms["p95"],
                    p99_ms=report.latency_ms["p99"],
                    speedup=(
                        None if serial_rps is None else report.throughput_rps / serial_rps
                    ),
                )
    return table


def partitioned_scaleout(
    profile: str = "bench",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    partitions: int = 4,
    n_jobs: int = 1,
) -> Table:
    """Partitioned execution check (not a paper figure — the scale-out).

    Shards each dataset into ``partitions`` Morton tiles with a dc-width
    halo (:mod:`repro.indexes.partition`), runs one (ρ+δ) pass both ways,
    and reports the per-tile exchange counters next to the monolithic
    timings.  The ``identical`` column is asserted, not just printed —
    dataset sharding must never move a single bit of (ρ, δ, μ).
    ``n_jobs > 1`` runs the per-partition kernels through the shared
    ``process`` executor (one shared-memory image per tile).
    """
    table = Table(
        "Partitioned execution — dataset tiles + halo exchange vs one index",
        [
            "dataset", "n", "dc", "partitions", "halo", "fit_seconds",
            "mono_seconds", "part_seconds", "speedup", "halo_points",
            "settled_local", "gathered", "identical",
        ],
    )
    for ds in _datasets(datasets, profile, seed, ("s1",)):
        dc = ds.params.dc_default
        mono = RTreeIndex().fit(ds.points)
        started = time.perf_counter()
        q_mono = mono.quantities(dc)
        mono_seconds = time.perf_counter() - started
        part = mono.partitioned(partitions, halo=dc)
        if n_jobs > 1:
            part.set_execution(backend="process", n_jobs=n_jobs)
        try:
            part.fit(ds.points)
            started = time.perf_counter()
            q_part = part.quantities(dc)
            part_seconds = time.perf_counter() - started
            pstats = part.partition_stats()
        finally:
            part.release_execution()
        identical = (
            np.array_equal(q_mono.rho, q_part.rho)
            and np.array_equal(q_mono.delta, q_part.delta)
            and np.array_equal(q_mono.mu, q_part.mu)
        )
        assert identical, f"partitioned run diverged on {ds.name}"
        table.add_row(
            dataset=ds.name, n=ds.n, dc=dc, partitions=pstats["partitions"],
            halo=pstats["halo"], fit_seconds=part.build_seconds,
            mono_seconds=mono_seconds, part_seconds=part_seconds,
            speedup=(mono_seconds / part_seconds if part_seconds > 0 else None),
            halo_points=pstats["halo_points"],
            settled_local=pstats["local_settled"],
            gathered=pstats["gathered"],
            identical=identical,
        )
    return table


#: CLI name → experiment function (ablations are appended on import to
#: avoid a circular dependency with repro.harness.ablations).
EXPERIMENTS = {
    "fig5": fig5_running_time,
    "table3": table3_memory,
    "table4": table4_construction,
    "fig6": fig6_dc_sweep,
    "fig6-batched": fig6_dc_sweep_batched,
    "fig7": fig7_binwidth_sweep,
    "fig8": fig8_tau_sweep,
    "fig9a": fig9a_w_memory,
    "fig9b": fig9b_tau_memory,
    "fig10": fig10_quality,
    "serving": serving_throughput,
    "partitioned": partitioned_scaleout,
}
