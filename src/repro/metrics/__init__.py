"""Clustering-quality metrics.

The paper evaluates its approximate solution with *pairwise* Precision,
Recall and F1 (Eqs. 3–5) against the exact DPC clustering as reference;
:mod:`repro.metrics.pair_metrics` implements those.  The usual external
metrics (ARI, NMI, FMI, purity, V-measure) are in
:mod:`repro.metrics.external` for the examples and extended analyses.
"""

from repro.metrics.pair_metrics import (
    contingency_matrix,
    pair_confusion,
    pairwise_precision_recall_f1,
    PairQuality,
)
from repro.metrics.external import (
    adjusted_rand_index,
    fowlkes_mallows_index,
    normalized_mutual_information,
    purity_score,
    v_measure,
)

__all__ = [
    "contingency_matrix",
    "pair_confusion",
    "pairwise_precision_recall_f1",
    "PairQuality",
    "adjusted_rand_index",
    "fowlkes_mallows_index",
    "normalized_mutual_information",
    "purity_score",
    "v_measure",
]
