"""Pairwise clustering quality — the paper's Eqs. 3–5.

The paper compares an *obtained* clustering ``C`` against a *reference*
clustering ``G`` (the exact DPC result) through object pairs:

* ``TP`` — pairs together in both ``C`` and ``G``;
* ``FP`` — pairs together in ``C`` but not in ``G``;
* ``FN`` — pairs together in ``G`` but not in ``C``;

``Precision = TP/(TP+FP)``, ``Recall = TP/(TP+FN)``, ``F1`` their harmonic
mean.  Enumerating the ``n(n-1)/2`` pairs is unnecessary: all three counts
fall out of the contingency table in O(n + #cells), which is how this module
stays usable at the paper's dataset sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "contingency_matrix",
    "pair_confusion",
    "pairwise_precision_recall_f1",
    "PairQuality",
]


def _as_label_array(labels, name: str) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {labels.shape}")
    return labels


def contingency_matrix(
    reference: np.ndarray, obtained: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense contingency table between two labelings.

    Returns ``(table, ref_sizes, obt_sizes)`` where ``table[i, j]`` counts
    objects in reference cluster ``i`` and obtained cluster ``j``.  Labels
    may be arbitrary integers (they are re-indexed internally).
    """
    reference = _as_label_array(reference, "reference")
    obtained = _as_label_array(obtained, "obtained")
    if len(reference) != len(obtained):
        raise ValueError(
            f"labelings differ in length: {len(reference)} vs {len(obtained)}"
        )
    ref_values, ref_idx = np.unique(reference, return_inverse=True)
    obt_values, obt_idx = np.unique(obtained, return_inverse=True)
    table = np.zeros((len(ref_values), len(obt_values)), dtype=np.int64)
    np.add.at(table, (ref_idx, obt_idx), 1)
    return table, table.sum(axis=1), table.sum(axis=0)


def _choose2(x: np.ndarray) -> np.ndarray:
    return x * (x - 1) // 2


@dataclass(frozen=True)
class PairQuality:
    """Pairwise confusion counts plus the paper's three metrics."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def pair_confusion(reference: np.ndarray, obtained: np.ndarray) -> PairQuality:
    """Pairwise TP/FP/FN/TN via the contingency table (no O(n²) pair loop)."""
    table, ref_sizes, obt_sizes = contingency_matrix(reference, obtained)
    n = int(ref_sizes.sum())
    tp = int(_choose2(table).sum())
    together_ref = int(_choose2(ref_sizes).sum())
    together_obt = int(_choose2(obt_sizes).sum())
    fp = together_obt - tp
    fn = together_ref - tp
    total = n * (n - 1) // 2
    tn = total - tp - fp - fn
    return PairQuality(tp=tp, fp=fp, fn=fn, tn=tn)


def pairwise_precision_recall_f1(
    reference: np.ndarray, obtained: np.ndarray
) -> Tuple[float, float, float]:
    """The paper's (Precision, Recall, F1) of ``obtained`` w.r.t. ``reference``."""
    q = pair_confusion(reference, obtained)
    return q.precision, q.recall, q.f1
