"""Standard external clustering metrics (beyond the paper's Eqs. 3–5).

Implemented from the contingency table, no third-party dependencies:
Adjusted Rand Index, Fowlkes–Mallows, Normalized Mutual Information,
purity, and V-measure (homogeneity / completeness).  Used by the examples
and the extended quality analyses; the paper's own figures only need the
pairwise metrics.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.metrics.pair_metrics import contingency_matrix, pair_confusion

__all__ = [
    "adjusted_rand_index",
    "fowlkes_mallows_index",
    "normalized_mutual_information",
    "purity_score",
    "v_measure",
]


def adjusted_rand_index(reference: np.ndarray, obtained: np.ndarray) -> float:
    """ARI ∈ [-1, 1]; 1 = identical partitions, ~0 = random agreement."""
    q = pair_confusion(reference, obtained)
    tp, fp, fn, tn = q.tp, q.fp, q.fn, q.tn
    total = tp + fp + fn + tn
    if total == 0:
        return 1.0
    sum_ref = tp + fn
    sum_obt = tp + fp
    expected = sum_ref * sum_obt / total
    max_index = (sum_ref + sum_obt) / 2.0
    if max_index == expected:
        # Degenerate partitions (e.g. everything in one cluster on both
        # sides): identical by convention.
        return 1.0
    return float((tp - expected) / (max_index - expected))


def fowlkes_mallows_index(reference: np.ndarray, obtained: np.ndarray) -> float:
    """FMI = sqrt(pairwise precision × recall) ∈ [0, 1]."""
    q = pair_confusion(reference, obtained)
    return float(np.sqrt(q.precision * q.recall))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


def _mutual_information(table: np.ndarray) -> float:
    n = table.sum()
    if n == 0:
        return 0.0
    rows = table.sum(axis=1, keepdims=True)
    cols = table.sum(axis=0, keepdims=True)
    mask = table > 0
    p = table[mask] / n
    outer = (rows @ cols)[mask] / (n * n)
    return float((p * np.log(p / outer)).sum())


def normalized_mutual_information(
    reference: np.ndarray, obtained: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalisation, ∈ [0, 1]."""
    table, ref_sizes, obt_sizes = contingency_matrix(reference, obtained)
    mi = _mutual_information(table)
    h_ref = _entropy(ref_sizes)
    h_obt = _entropy(obt_sizes)
    if h_ref == 0.0 and h_obt == 0.0:
        return 1.0
    denom = (h_ref + h_obt) / 2.0
    if denom == 0.0:
        return 0.0
    return float(mi / denom)


def purity_score(reference: np.ndarray, obtained: np.ndarray) -> float:
    """Fraction of objects in the majority reference class of their cluster."""
    table, _, _ = contingency_matrix(reference, obtained)
    n = table.sum()
    if n == 0:
        return 1.0
    return float(table.max(axis=0).sum() / n)


def v_measure(
    reference: np.ndarray, obtained: np.ndarray, beta: float = 1.0
) -> Tuple[float, float, float]:
    """(homogeneity, completeness, V-measure).

    Homogeneity: each obtained cluster contains only one reference class;
    completeness: each reference class lands in one obtained cluster;
    V-measure: their (β-weighted) harmonic mean.
    """
    table, ref_sizes, obt_sizes = contingency_matrix(reference, obtained)
    h_ref = _entropy(ref_sizes)
    h_obt = _entropy(obt_sizes)
    mi = _mutual_information(table)
    homogeneity = 1.0 if h_ref == 0.0 else mi / h_ref
    completeness = 1.0 if h_obt == 0.0 else mi / h_obt
    if homogeneity + completeness == 0.0:
        v = 0.0
    else:
        v = (
            (1.0 + beta)
            * homogeneity
            * completeness
            / (beta * homogeneity + completeness)
        )
    return float(homogeneity), float(completeness), float(v)
