"""Supervised shared-memory serving workers: replicas, failover, drain.

One serving process with one dispatcher thread (PR 4's prototype) has a
single point of failure: a crashed or wedged engine call is a full outage.
This module replicates the *compute* behind the coalescer across N
supervised worker **processes** while keeping the data shared:

* **One image, N readers.**  A published snapshot's fitted index is
  exported once (:func:`repro.indexes.persist.export_index_image`) into a
  single :class:`~repro.indexes.parallel.ShmPack` shared-memory segment.
  Workers attach read-only by segment name
  (:func:`~repro.indexes.parallel.attach_pack_views`) and rebuild a fully
  queryable index over the mapped arrays
  (:func:`~repro.indexes.persist.restore_index_image` — which also verifies
  the content fingerprint, so a torn or foreign segment can never serve).
  A snapshot swap is therefore an atomic segment-name flip: new batches
  carry the new fingerprint + handle, no per-worker copy, no staleness
  window.
* **Warm failover.**  The supervisor watches heartbeats, process liveness
  and per-batch deadlines.  A dead worker (``os._exit``, OOM kill, the
  injected ``serving.worker.kill`` fault) or a wedged one (stuck past the
  batch deadline, ``serving.worker.hang``) is removed from rotation and its
  in-flight batch is re-dispatched to a warm replica.  Replays are
  idempotent by construction: a batch is (fingerprint, dcs, tie-break) and
  the engine is deterministic, so any replica's answer is bit-identical —
  first result wins, late duplicates are discarded harmlessly.
* **Respawn with jittered backoff.**  Dead workers are restarted on an
  exponential, jittered schedule, so a crash loop cannot busy-spin the
  supervisor.
* **Degrade, never fail.**  When the pool cannot take or finish a batch
  (draining, no live workers, failover attempts exhausted) it raises/fails
  :class:`~repro.serving.errors.WorkerPoolUnavailableError` — the
  coalescer's cue to compute in-process, the pre-replication code path.
  Clients observe at most extra latency, never an error, extending PR 7's
  sticky degradation ladder (process → threads → serial) one level up:
  replicated → in-process.

All fault decisions (``serving.worker.kill``, ``serving.worker.hang``,
``serving.heartbeat.drop``, ``serving.shm.unlink``) are made in the parent
— markers ride the batch messages into workers — so chaos runs are
deterministic regardless of worker scheduling.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import random
import signal
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import connection, resource_tracker
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import faults
from repro.core.quantities import TieBreak
from repro.indexes.parallel import ShmPack, attach_pack_views, detach_pack
from repro.indexes.persist import export_index_image, restore_index_image
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.serving.errors import WorkerBatchError, WorkerPoolUnavailableError
from repro.serving.snapshots import Snapshot, SnapshotStore

__all__ = ["WorkerPool"]

#: Restored indexes a worker keeps attached at once (LRU; each holds a
#: shared-memory mapping, not a copy — the cap bounds mapping count, not
#: data).  Evicted entries detach their segment explicitly.
_WORKER_INDEX_CAP = 4

#: Exit status of a chaos-killed worker — recognisable in waitpid results.
_KILL_EXIT_STATUS = 13


def _pick_context():
    """``fork`` where available (Linux: instant start, inherits numpy/module
    state copy-on-write); the platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


# --------------------------------------------------------------------------
# worker side (runs in the child process)
# --------------------------------------------------------------------------


def _serving_worker_main(slot: int, conn, heartbeat_s: float, start_method: str) -> None:
    """Entry point of one serving worker process.

    Protocol (parent → worker):
      ``("batch", id, fingerprint, meta, handle, dcs, tie_break, marker)``,
      ``("unload", fingerprint, segment_name)``, ``("stop",)``.
    Worker → parent:
      ``("hb", seq)`` from a daemon heartbeat thread,
      ``("result", id, fingerprint, [DPCQuantities, ...])``,
      ``("load_failed", id, fingerprint, message)`` when the image cannot be
      attached/restored (segment unlinked, integrity failure),
      ``("error", id, type_name, message)`` for deterministic engine errors.
    """
    # Forked workers inherit the parent's installed fault plan; decisions
    # are parent-side only (markers ride the batch messages) — a worker
    # consulting the plan would double-count occurrences.
    faults.clear()
    try:
        # The terminal's SIGINT goes to the whole foreground group; drain is
        # the parent's job — workers exit via ("stop",) or SIGTERM.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - restricted platforms
        pass
    from repro.indexes import parallel as _parallel

    _parallel._worker_init(start_method)

    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(message: Tuple) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (OSError, BrokenPipeError, ValueError):
            return False

    def _heartbeat() -> None:
        seq = 0
        while not stop.wait(heartbeat_s):
            seq += 1
            if not _send(("hb", seq)):
                return

    threading.Thread(
        target=_heartbeat, name=f"repro-serve-worker-{slot}-hb", daemon=True
    ).start()
    _send(("hb", 0))  # announce readiness

    # fingerprint -> (restored index, segment name); LRU over shm mappings.
    indexes: "OrderedDict[str, Tuple[Any, str]]" = OrderedDict()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "unload":
            _, fingerprint, segment = message
            indexes.pop(fingerprint, None)
            detach_pack(segment)
            continue
        if kind != "batch":  # pragma: no cover - protocol future-proofing
            continue
        _, batch_id, fingerprint, meta, handle, dcs, tie_break, marker = message
        if marker is not None:
            # Chaos enactment, decided in the parent: die or wedge mid-batch.
            if marker["mode"] == "kill":
                os._exit(_KILL_EXIT_STATUS)
            time.sleep(marker.get("delay_s", 0.0))  # "hang"
        entry = indexes.get(fingerprint)
        if entry is None:
            try:
                views = attach_pack_views(handle)
                # Verifies flat/partition digests and the content
                # fingerprint — a worker can never serve from a torn image.
                index = restore_index_image(meta, views)
            except BaseException as exc:
                _send(
                    (
                        "load_failed",
                        batch_id,
                        fingerprint,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            while len(indexes) >= _WORKER_INDEX_CAP:
                _, (_, old_segment) = indexes.popitem(last=False)
                detach_pack(old_segment)
            indexes[fingerprint] = (index, handle[0])
        else:
            indexes.move_to_end(fingerprint)
        index = indexes[fingerprint][0]
        try:
            quantities = index.quantities_multi(list(dcs), TieBreak.coerce(tie_break))
        except BaseException as exc:
            # Deterministic engine failure: report (type, message); the
            # parent recomputes in-process so clients get the real typed
            # exception, not a pickled approximation.
            _send(("error", batch_id, type(exc).__name__, str(exc)))
        else:
            _send(("result", batch_id, fingerprint, quantities))
    stop.set()
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------


@dataclass
class _Image:
    """One snapshot content published into shared memory."""

    pack: ShmPack
    meta: Dict[str, Any]


@dataclass
class _Batch:
    """One coalesced engine call in flight through the pool.

    Identified by content — (fingerprint, dcs, tie_break) — so a replay on
    another worker is bit-identical and cache-safe; ``attempts`` counts
    dispatches, ``deadline`` (monotonic) is reset at each (re)assignment.
    """

    batch_id: int
    snapshot: Snapshot
    dcs: Tuple[float, ...]
    tie_break: str
    future: Future = field(default_factory=Future)
    deadline: float = 0.0
    attempts: int = 0
    span: Any = None


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("slot", "process", "conn", "state", "last_hb", "busy", "respawns", "respawn_at")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process: Any = None
        self.conn: Any = None
        self.state = "dead"  # "live" | "dead"
        self.last_hb = 0.0
        self.busy: Optional[_Batch] = None
        self.respawns = 0
        self.respawn_at = 0.0


class WorkerPool:
    """N supervised serving workers sharing snapshot images over shm.

    The pool subscribes to ``store``: every published snapshot's image is
    exported into shared memory eagerly (and retired — segment unlinked,
    workers told to detach — once no live snapshot serves that fingerprint
    anymore).  :meth:`submit` hands one coalesced batch to an idle worker;
    the returned future resolves to the ``quantities_multi`` payload or
    fails with :class:`~repro.serving.errors.WorkerPoolUnavailableError` /
    :class:`~repro.serving.errors.WorkerBatchError` — both of which the
    coalescer converts into an exact in-process recomputation, so pool
    trouble is never client-visible.

    Single-writer discipline: worker records (``busy``, ``state``,
    heartbeats) are owned by the supervisor thread; ``submit`` only touches
    the pending deque (under ``_lock``); image records have their own lock.
    """

    def __init__(
        self,
        store: SnapshotStore,
        workers: int = 2,
        heartbeat_s: float = 0.25,
        batch_timeout_s: float = 30.0,
        liveness_timeout_s: Optional[float] = None,
        respawn_backoff_s: float = 0.05,
        respawn_backoff_cap_s: float = 2.0,
        max_attempts: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not heartbeat_s > 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        if not batch_timeout_s > 0:
            raise ValueError(f"batch_timeout_s must be positive, got {batch_timeout_s}")
        self.store = store
        self.heartbeat_s = float(heartbeat_s)
        self.batch_timeout_s = float(batch_timeout_s)
        self.liveness_timeout_s = (
            float(liveness_timeout_s)
            if liveness_timeout_s is not None
            else max(5.0 * self.heartbeat_s, 0.5)
        )
        self.respawn_backoff_s = float(respawn_backoff_s)
        self.respawn_backoff_cap_s = float(respawn_backoff_cap_s)
        self.max_attempts = int(max_attempts) if max_attempts is not None else workers + 1
        self._ctx = _pick_context()
        self._tick = max(0.005, min(0.05, self.heartbeat_s / 2.0))
        self._ids = itertools.count(1)
        self._rng = random.Random(0x5EED ^ os.getpid())

        self._lock = threading.Lock()
        self._pending: "deque[_Batch]" = deque()
        self._commands: "deque[Tuple]" = deque()
        self._draining = False
        self._closed = False
        self._degraded: Optional[str] = None

        self._images_lock = threading.Lock()
        self._images: Dict[str, _Image] = {}

        self.stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failovers": 0,
            "worker_deaths": 0,
            "respawns": 0,
            "heartbeats_dropped": 0,
            "load_failures": 0,
            "batch_errors": 0,
            "unavailable": 0,
            "images_published": 0,
            "images_retired": 0,
        }

        # Start the parent's resource tracker *before* forking: a forked
        # worker inherits it and its attach-time registrations dedupe with
        # the parent's (one unlink balances them).  Forking first would hand
        # each worker a private tracker that "cleans up" (re-unlinks) the
        # parent's segments at worker exit.
        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        self._workers = [_Worker(slot) for slot in range(int(workers))]
        self._by_conn: Dict[Any, _Worker] = {}
        now = time.monotonic()
        for worker in self._workers:
            self._spawn(worker, now)

        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-pool", daemon=True
        )
        self._supervisor.start()

        # Publish images for whatever is already serving, then follow swaps.
        self._unsubscribe = store.subscribe(self._on_swap)
        for name in store.names():
            try:
                self._ensure_image(store.get(name))
            except (KeyError, WorkerPoolUnavailableError):
                pass  # dropped mid-iteration / lazily retried at submit

    # -- client side ----------------------------------------------------------

    def submit(
        self, snapshot: Snapshot, dcs: List[float], tie_break: "str | TieBreak"
    ) -> "Future[List[Any]]":
        """Hand one coalesced batch to the pool; resolves to the
        ``quantities_multi`` payload (order matching ``dcs``).

        Raises :class:`WorkerPoolUnavailableError` *synchronously* when the
        pool cannot take the batch right now (draining, closed, no live
        worker) — the caller computes in-process instead, immediately,
        rather than queueing behind a recovery that may take a while.
        """
        tie = TieBreak.coerce(tie_break).value
        batch_dcs = tuple(float(dc) for dc in dcs)
        with self._lock:
            if self._closed:
                raise WorkerPoolUnavailableError("worker pool is closed")
            if self._draining:
                raise WorkerPoolUnavailableError("worker pool is draining")
            if not any(w.state == "live" for w in self._workers):
                self.stats["unavailable"] += 1
                self._degraded = "no live serving workers; computing in-process"
                raise WorkerPoolUnavailableError(
                    "no live serving workers (all respawning)"
                )
        image_error: Optional[BaseException] = None
        try:
            self._ensure_image(snapshot)
        except WorkerPoolUnavailableError as exc:
            image_error = exc
        if image_error is not None:
            with self._lock:
                self.stats["unavailable"] += 1
            raise image_error
        batch = _Batch(
            batch_id=next(self._ids),
            snapshot=snapshot,
            dcs=batch_dcs,
            tie_break=tie,
            deadline=time.monotonic() + self.batch_timeout_s,
        )
        batch.span = obs_trace.begin_span(
            "serving.pool.batch",
            fingerprint=snapshot.fingerprint[:12],
            batch_dcs=len(batch_dcs),
        )
        with self._lock:
            if self._closed or self._draining:
                batch.span.finish()
                raise WorkerPoolUnavailableError("worker pool is draining")
            self.stats["submitted"] += 1
            self._pending.append(batch)
        self._wake()
        return batch.future

    def worker_pids(self) -> List[int]:
        """PIDs of the currently live workers (the failover drill's targets)."""
        return [
            w.process.pid
            for w in self._workers
            if w.state == "live" and w.process is not None
        ]

    @property
    def degraded(self) -> Optional[str]:
        """Why the pool last fell back to in-process dispatch (sticky; see
        :meth:`reset_degradation`), or ``None``."""
        return self._degraded

    def reset_degradation(self) -> None:
        """Clear the sticky degradation marker (operator acknowledgement)."""
        self._degraded = None

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.stats)

    def health(self) -> Dict[str, Any]:
        """Per-worker + pool rollup for ``healthz``.

        Worker states: ``healthy`` (idle, in rotation), ``busy`` (computing
        a batch), ``respawning`` (died, restart scheduled), ``draining``.
        Pool state is ``draining`` / ``degraded`` (sticky in-process
        fallback happened, or a worker is down) / ``healthy``.
        """
        now = time.monotonic()
        with self._lock:
            draining = self._draining
            pending = len(self._pending)
            stats = dict(self.stats)
        workers = []
        any_dead = False
        for w in self._workers:
            if w.state == "dead":
                any_dead = True
                state = "respawning"
            elif draining:
                state = "draining"
            elif w.busy is not None:
                state = "busy"
            else:
                state = "healthy"
            workers.append(
                {
                    "slot": w.slot,
                    "pid": w.process.pid if w.process is not None else None,
                    "state": state,
                    "respawns": w.respawns,
                    "heartbeat_age_s": round(max(0.0, now - w.last_hb), 3),
                }
            )
        degraded = self._degraded
        return {
            "state": (
                "draining"
                if draining
                else "degraded"
                if degraded or any_dead
                else "healthy"
            ),
            "degraded_reason": degraded,
            "workers": workers,
            "pending_batches": pending,
            "failovers": stats["failovers"],
            "worker_deaths": stats["worker_deaths"],
            "inline_fallbacks": stats["unavailable"],
        }

    # -- lifecycle ------------------------------------------------------------

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Stop taking new batches, flush in-flight ones, stop the workers.

        Returns ``True`` for a clean drain (everything flushed within the
        deadline); ``False`` when the deadline forced shutdown with work
        still in flight (those futures fail with
        :class:`WorkerPoolUnavailableError`, which the coalescer converts
        into an in-process recomputation — still no client-visible error).
        """
        with self._lock:
            if self._closed:
                return True
            self._draining = True
        self._wake()
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        clean = True
        while True:
            with self._lock:
                busy = bool(self._pending) or any(
                    w.busy is not None for w in self._workers
                )
            if not busy:
                break
            if time.monotonic() >= deadline:
                clean = False
                break
            time.sleep(0.01)
        self.close()
        return clean

    def close(self) -> None:
        """Stop the supervisor and the workers, release every image
        (idempotent).  Outstanding batch futures fail with
        :class:`WorkerPoolUnavailableError` — never left hanging."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        self._stop.set()
        self._wake()
        self._supervisor.join(timeout=10.0)
        self._unsubscribe()
        for w in self._workers:
            if w.state == "live" and w.conn is not None:
                try:
                    w.conn.send(("stop",))
                except (OSError, BrokenPipeError, ValueError):
                    pass
        for w in self._workers:
            process = w.process
            if process is not None:
                process.join(timeout=1.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=0.5)
                if process.is_alive():  # pragma: no cover - stubborn child
                    process.kill()
                    process.join(timeout=0.5)
            if w.conn is not None:
                try:
                    w.conn.close()
                except OSError:  # pragma: no cover
                    pass
            w.state = "dead"
        leftovers: List[_Batch] = []
        with self._lock:
            leftovers.extend(self._pending)
            self._pending.clear()
        for w in self._workers:
            if w.busy is not None:
                leftovers.append(w.busy)
                w.busy = None
        for batch in leftovers:
            self._fail(
                batch, WorkerPoolUnavailableError("worker pool closed"), "closed"
            )
        with self._images_lock:
            for image in self._images.values():
                image.pack.close()
            self._images.clear()
        for conn in (self._wake_r, self._wake_w):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- snapshot images ------------------------------------------------------

    def _ensure_image(self, snapshot: Snapshot) -> _Image:
        fingerprint = snapshot.fingerprint
        with self._images_lock:
            image = self._images.get(fingerprint)
            if image is not None and not image.pack.closed:
                return image
            try:
                meta, arrays = export_index_image(snapshot.index)
                pack = ShmPack(arrays)
            except BaseException as exc:
                raise WorkerPoolUnavailableError(
                    f"could not publish snapshot image: {type(exc).__name__}: {exc}"
                ) from exc
            image = _Image(pack=pack, meta=meta)
            self._images[fingerprint] = image
            self.stats["images_published"] += 1
            if obs_runtime._ENABLED:
                obs_metrics.counter(
                    "repro_serving_images_published_total",
                    "Snapshot images exported into shared memory for workers",
                ).inc()
            # Chaos point: the segment name vanishes right after publication
            # — worker attaches fail with load_failed and the supervisor
            # republishes from the snapshot the batch still holds.
            if faults.decide("serving.shm.unlink") is not None:
                pack.close()
            return image

    def _on_swap(
        self, name: str, new: Optional[Snapshot], old: Optional[Snapshot]
    ) -> None:
        if self._closed:
            return
        if new is not None:
            try:
                self._ensure_image(new)
            except WorkerPoolUnavailableError:
                pass  # lazily retried at submit; batches fall back inline
        if old is None:
            return
        if new is not None and new.fingerprint == old.fingerprint:
            return
        if self.store.holds_fingerprint(old.fingerprint):
            return
        with self._images_lock:
            image = self._images.pop(old.fingerprint, None)
            if image is None:
                return
            segment = image.pack.name
            # Unlink now: attached workers keep their mappings (POSIX), new
            # attaches fail — exactly right for retired content.
            image.pack.close()
            self.stats["images_retired"] += 1
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                "repro_serving_images_retired_total",
                "Snapshot images unlinked after their content stopped serving",
            ).inc()
        with self._lock:
            self._commands.append(("retire", old.fingerprint, segment))
        self._wake()

    # -- supervisor -----------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(None)
        except (OSError, BrokenPipeError, ValueError):  # pragma: no cover
            pass

    def _spawn(self, worker: _Worker, now: float) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_serving_worker_main,
            args=(
                worker.slot,
                child_conn,
                self.heartbeat_s,
                self._ctx.get_start_method(),
            ),
            name=f"repro-serve-worker-{worker.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.state = "live"
        worker.last_hb = now  # grace until the first heartbeat lands
        worker.busy = None
        self._by_conn[parent_conn] = worker

    def _supervise(self) -> None:
        while not self._stop.is_set():
            conns = [w.conn for w in self._workers if w.state == "live"]
            conns.append(self._wake_r)
            try:
                ready = connection.wait(conns, timeout=self._tick)
            except OSError:  # pragma: no cover - conn torn down mid-wait
                ready = []
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        while self._wake_r.poll():
                            self._wake_r.recv()
                    except (EOFError, OSError):  # pragma: no cover
                        pass
                    continue
                worker = self._by_conn.get(conn)
                if worker is not None and worker.state == "live":
                    self._drain_worker(worker)
            now = time.monotonic()
            self._run_commands()
            self._check_liveness(now)
            self._check_deadlines(now)
            self._respawn_due(now)
            self._assign_pending(now)
            if obs_runtime._ENABLED:
                obs_metrics.gauge(
                    "repro_serving_workers_live",
                    "Serving workers currently in rotation",
                ).set(sum(1 for w in self._workers if w.state == "live"))

    def _drain_worker(self, worker: _Worker) -> None:
        try:
            while worker.conn.poll():
                self._handle_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            self._worker_died(worker, "pipe closed")

    def _handle_message(self, worker: _Worker, message: Tuple) -> None:
        kind = message[0]
        if kind == "hb":
            # Chaos point: the supervisor loses this heartbeat.  Enough
            # consecutive drops expire liveness and trigger a *spurious*
            # failover — which idempotency makes harmless.
            if faults.decide("serving.heartbeat.drop") is not None:
                self.stats["heartbeats_dropped"] += 1
                if obs_runtime._ENABLED:
                    obs_metrics.counter(
                        "repro_serving_heartbeats_dropped_total",
                        "Worker heartbeats discarded (chaos or races)",
                    ).inc()
            else:
                worker.last_hb = time.monotonic()
            return
        if kind == "result":
            _, batch_id, fingerprint, payload = message
            batch = worker.busy
            if batch is None or batch.batch_id != batch_id:
                return  # late duplicate of a failed-over batch: discard
            worker.busy = None
            if fingerprint != batch.snapshot.fingerprint:  # pragma: no cover
                self._retry_or_fail(batch, "fingerprint mismatch in result")
                return
            with self._lock:
                self.stats["completed"] += 1
            self._resolve(batch, payload)
            return
        if kind == "load_failed":
            _, batch_id, fingerprint, text = message
            batch = worker.busy
            if batch is None or batch.batch_id != batch_id:
                return
            worker.busy = None
            with self._lock:
                self.stats["load_failures"] += 1
            # The segment is likely gone (chaos unlink, external cleanup):
            # drop the record so the next dispatch republishes from the
            # snapshot the batch still holds.
            with self._images_lock:
                image = self._images.get(fingerprint)
                if image is not None and image.pack.closed:
                    self._images.pop(fingerprint, None)
            self._retry_or_fail(batch, f"image load failed: {text}")
            return
        if kind == "error":
            _, batch_id, type_name, text = message
            batch = worker.busy
            if batch is None or batch.batch_id != batch_id:
                return
            worker.busy = None
            with self._lock:
                self.stats["batch_errors"] += 1
            self._fail(
                batch,
                WorkerBatchError(f"worker batch failed: {type_name}: {text}"),
                "error",
            )
            return

    def _run_commands(self) -> None:
        while True:
            with self._lock:
                if not self._commands:
                    return
                command = self._commands.popleft()
            if command[0] == "retire":
                _, fingerprint, segment = command
                for worker in self._workers:
                    if worker.state != "live":
                        continue
                    try:
                        worker.conn.send(("unload", fingerprint, segment))
                    except (OSError, BrokenPipeError, ValueError):
                        self._worker_died(worker, "pipe closed")

    def _check_liveness(self, now: float) -> None:
        for worker in self._workers:
            if worker.state != "live":
                continue
            if not worker.process.is_alive():
                self._worker_died(worker, "process exited")
            elif now - worker.last_hb > self.liveness_timeout_s:
                self._worker_died(worker, "heartbeat liveness expired")

    def _check_deadlines(self, now: float) -> None:
        for worker in self._workers:
            batch = worker.busy
            if worker.state == "live" and batch is not None and now >= batch.deadline:
                # Wedged: alive, heartbeating, but the batch never finishes.
                self._worker_died(worker, "batch deadline exceeded (wedged)")
        expired: List[_Batch] = []
        with self._lock:
            if self._pending:
                keep: "deque[_Batch]" = deque()
                while self._pending:
                    batch = self._pending.popleft()
                    if now >= batch.deadline and not batch.future.done():
                        expired.append(batch)
                    else:
                        keep.append(batch)
                self._pending = keep
                if expired:
                    self.stats["unavailable"] += len(expired)
        for batch in expired:
            self._degraded = "pending batch starved; computing in-process"
            self._fail(
                batch,
                WorkerPoolUnavailableError(
                    f"no worker picked up the batch within {self.batch_timeout_s}s"
                ),
                "starved",
            )

    def _worker_died(self, worker: _Worker, reason: str) -> None:
        if worker.state != "live":
            return
        # Salvage: a result already sitting in the pipe beats a replay.
        try:
            while worker.conn.poll():
                self._handle_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass
        batch = worker.busy
        worker.busy = None
        worker.state = "dead"
        process = worker.process
        if process is not None:
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
                if process.is_alive():  # pragma: no cover - stubborn child
                    process.kill()
            process.join(timeout=0.5)
        self._by_conn.pop(worker.conn, None)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.respawns += 1
        backoff = min(
            self.respawn_backoff_cap_s,
            self.respawn_backoff_s * (2.0 ** (worker.respawns - 1)),
        ) * (0.5 + self._rng.random())
        worker.respawn_at = time.monotonic() + backoff
        with self._lock:
            self.stats["worker_deaths"] += 1
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                "repro_serving_worker_deaths_total",
                "Serving workers removed from rotation, by reason",
                ("reason",),
            ).labels(reason.split(" ")[0] if reason else "unknown").inc()
        if batch is not None and not batch.future.done():
            with self._lock:
                self.stats["failovers"] += 1
            if obs_runtime._ENABLED:
                obs_metrics.counter(
                    "repro_serving_failovers_total",
                    "In-flight batches re-dispatched after a worker died or wedged",
                ).inc()
            if batch.span:
                batch.span.set("failover", batch.attempts + 1)
            self._retry_or_fail(batch, reason)

    def _retry_or_fail(self, batch: _Batch, reason: str) -> None:
        batch.attempts += 1
        if batch.attempts >= self.max_attempts:
            with self._lock:
                self.stats["unavailable"] += 1
            self._degraded = f"batch failover exhausted ({reason}); computing in-process"
            self._fail(
                batch,
                WorkerPoolUnavailableError(
                    f"batch gave up after {batch.attempts} attempts: {reason}"
                ),
                "exhausted",
            )
            return
        batch.deadline = time.monotonic() + self.batch_timeout_s
        with self._lock:
            self._pending.appendleft(batch)

    def _respawn_due(self, now: float) -> None:
        if self._stop.is_set():
            return
        for worker in self._workers:
            if worker.state == "dead" and now >= worker.respawn_at:
                try:
                    self._spawn(worker, now)
                except OSError:  # pragma: no cover - fork/pipe exhaustion
                    worker.respawn_at = now + self.respawn_backoff_cap_s
                    continue
                with self._lock:
                    self.stats["respawns"] += 1
                if obs_runtime._ENABLED:
                    obs_metrics.counter(
                        "repro_serving_worker_respawns_total",
                        "Serving worker processes restarted after death",
                    ).inc()

    def _assign_pending(self, now: float) -> None:
        for worker in self._workers:
            if worker.state != "live" or worker.busy is not None:
                continue
            while True:
                with self._lock:
                    if not self._pending:
                        return
                    batch = self._pending.popleft()
                if batch.future.done():
                    continue
                if self._dispatch_to(worker, batch, now):
                    break
                if worker.state != "live":
                    return  # the send killed the worker; batch was requeued

    def _dispatch_to(self, worker: _Worker, batch: _Batch, now: float) -> bool:
        """Send ``batch`` to ``worker``; True when the worker now owns it."""
        fingerprint = batch.snapshot.fingerprint
        with self._images_lock:
            image = self._images.get(fingerprint)
        if image is None or image.pack.closed:
            try:
                image = self._ensure_image(batch.snapshot)
            except WorkerPoolUnavailableError:
                self._retry_or_fail(batch, "image republish failed")
                return True  # consumed (requeued or failed), worker stays idle
        marker: Optional[Dict[str, Any]] = None
        spec = faults.decide("serving.worker.kill")
        if spec is not None:
            marker = {"mode": "kill"}
        else:
            spec = faults.decide("serving.worker.hang")
            if spec is not None:
                marker = {"mode": "hang", "delay_s": spec.delay_s}
        batch.deadline = now + self.batch_timeout_s
        worker.busy = batch
        try:
            worker.conn.send(
                (
                    "batch",
                    batch.batch_id,
                    fingerprint,
                    image.meta,
                    image.pack.handle,
                    batch.dcs,
                    batch.tie_break,
                    marker,
                )
            )
        except (OSError, BrokenPipeError, ValueError):
            self._worker_died(worker, "pipe closed")  # requeues via failover
            return False
        return True

    # -- future resolution (supervisor thread) --------------------------------

    def _resolve(self, batch: _Batch, payload: List[Any]) -> None:
        if batch.span:
            batch.span.set("outcome", "ok")
            batch.span.set("attempts", batch.attempts + 1)
            batch.span.finish()
        if not batch.future.done():
            batch.future.set_result(list(payload))

    def _fail(self, batch: _Batch, exc: BaseException, outcome: str) -> None:
        if batch.span:
            batch.span.set("outcome", outcome)
            batch.span.finish()
        if not batch.future.done():
            batch.future.set_exception(exc)
