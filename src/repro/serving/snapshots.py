"""Named, fingerprinted, hot-swappable fitted-index snapshots.

The paper's workflow is *index once, query many times*; a serving process
extends that across requests and clients: a :class:`SnapshotStore` holds
fitted indexes under stable names, and every publish **atomically** replaces
the previous snapshot for that name.  A :class:`Snapshot` is an immutable
handle — name, the fitted :class:`~repro.indexes.base.DPCIndex`, its content
fingerprint (:func:`repro.indexes.persist.index_fingerprint`) and a
monotonically increasing version — so a request that resolved a snapshot
keeps a consistent view for its whole lifetime even if a newer fit lands
mid-flight.

Subscribers (the serving result cache, metrics) are notified of every swap
with both the new and the replaced snapshot, *after* the store switched —
by the time a subscriber runs, no new reader can resolve the old snapshot,
which is what makes "invalidate on swap" race-free (see
:meth:`repro.serving.cache.ResultCache.put`'s guard for the other half).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.indexes.base import DPCIndex
from repro.indexes.registry import make_index
from repro.obs import metrics as obs_metrics

__all__ = ["Snapshot", "SnapshotStore"]


@dataclass(frozen=True)
class Snapshot:
    """An immutable handle on one published fitted index.

    ``fingerprint`` identifies the *content* (family + params + points):
    re-publishing the same data under the same config yields a new version
    but the same fingerprint, so caches keyed on it stay warm across
    no-op republishes.
    """

    name: str
    index: DPCIndex
    fingerprint: str
    version: int
    published_at: float = field(compare=False)

    @property
    def n(self) -> int:
        return self.index.n

    def info(self) -> Dict[str, Any]:
        """JSON-friendly summary (the ``GET /v1/snapshots`` row)."""
        return {
            "name": self.name,
            "index": self.index.name,
            "fingerprint": self.fingerprint,
            "version": self.version,
            "n": self.index.n,
            "dims": int(self.index.points.shape[1]),
            "metric": self.index.metric.name,
            "exact": self.index.exact,
            "published_at": self.published_at,
        }


#: ``callback(name, new_snapshot, old_snapshot_or_None)`` fired on publish/drop
#: (``new_snapshot`` is None for a drop).
SwapCallback = Callable[[str, Optional[Snapshot], Optional[Snapshot]], None]

#: ``callback(name, new_snapshot, old_snapshot_or_None, new_points_or_None)``
#: fired on :meth:`SnapshotStore.publish_delta` — a publish whose index
#: differs from the previous snapshot by an ingested delta batch only.
DeltaCallback = Callable[
    [str, Snapshot, Optional[Snapshot], Optional[np.ndarray]], None
]


class SnapshotStore:
    """Thread-safe registry of named snapshots with atomic hot-swap.

    All mutation happens under one lock; readers (:meth:`get`) take the
    same lock only for the dict lookup and then work with the immutable
    :class:`Snapshot`, so a swap can never hand out a half-replaced view.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._snapshots: Dict[str, Snapshot] = {}
        self._subscribers: List[SwapCallback] = []
        self._delta_subscribers: List[DeltaCallback] = []
        self._version = 0
        #: Swap/delta callbacks that raised (swallowed; the swap itself is
        #: already durable by the time subscribers run).
        self.subscriber_errors = 0
        self.last_subscriber_error: Optional[str] = None

    # -- publishing -----------------------------------------------------------

    def _swap(self, name: str, index: DPCIndex):
        """The shared atomic-swap body of :meth:`publish` and
        :meth:`publish_delta`: fingerprint outside the lock, swap under it,
        hand back everything the caller needs to notify after."""
        if not isinstance(index, DPCIndex):
            raise TypeError(f"expected a DPCIndex, got {type(index).__name__}")
        if not index.is_fitted:
            raise ValueError("cannot publish an unfitted index; call fit(points) first")
        fingerprint = index.fingerprint()
        # Chaos point: a publish that fails *here* fails before the swap —
        # the store still serves the last good snapshot, nothing is torn.
        faults.trip("snapshots.publish")
        obs_metrics.counter(
            "repro_snapshot_swaps_total", "Snapshot publishes (atomic name swaps)"
        ).inc()
        with self._lock:
            previous = self._snapshots.get(name)
            self._version += 1
            snapshot = Snapshot(
                name=name,
                index=index,
                fingerprint=fingerprint,
                version=self._version,
                published_at=time.time(),
            )
            self._snapshots[name] = snapshot
            subscribers = tuple(self._subscribers)
            delta_subscribers = tuple(self._delta_subscribers)
        return snapshot, previous, subscribers, delta_subscribers

    def publish(self, name: str, index: DPCIndex) -> Snapshot:
        """Atomically (re)bind ``name`` to a fitted ``index``.

        The fingerprint is computed *before* the swap (it hashes the point
        bytes); subscribers run after the swap, outside no lock — they see
        a store in which the new snapshot is already the only resolvable
        one for ``name``.
        """
        snapshot, previous, subscribers, _ = self._swap(name, index)
        self._notify(subscribers, name, snapshot, previous)
        return snapshot

    def _notify(self, callbacks: Tuple[Callable, ...], *args: Any) -> None:
        """Run subscriber callbacks; a raising subscriber is recorded, not
        propagated — by the time callbacks run the swap is already durable,
        and one broken metrics hook must not fail the publish (or starve
        the remaining subscribers, e.g. the cache invalidator)."""
        for callback in callbacks:
            try:
                callback(*args)
            except Exception as exc:
                with self._lock:
                    self.subscriber_errors += 1
                    self.last_subscriber_error = f"{type(exc).__name__}: {exc}"

    def publish_delta(
        self,
        name: str,
        index: DPCIndex,
        new_points: "Optional[np.ndarray]" = None,
    ) -> Snapshot:
        """Publish an index that extends the previous snapshot by a delta.

        The swap itself is exactly :meth:`publish` — a full, atomic,
        point-in-time-consistent snapshot (the index carries its delta
        segment internally and answers exactly over base ⊕ delta).  On top
        of it, delta subscribers (:meth:`subscribe_deltas`) are told which
        batch arrived, so incremental consumers can forward just the new
        points instead of re-reading the whole image; compactions and
        refits go through plain :meth:`publish` and reach only the swap
        subscribers, signalling "re-read the full image".
        """
        snapshot, previous, subscribers, delta_subscribers = self._swap(name, index)
        self._notify(subscribers, name, snapshot, previous)
        self._notify(delta_subscribers, name, snapshot, previous, new_points)
        return snapshot

    def fit(
        self,
        name: str,
        points: np.ndarray,
        index: "str | DPCIndex" = "ch",
        **index_params: Any,
    ) -> Snapshot:
        """Fit a fresh index over ``points`` and publish it under ``name``."""
        built = index if isinstance(index, DPCIndex) else make_index(index, **index_params)
        built.fit(np.ascontiguousarray(points, dtype=np.float64))
        return self.publish(name, built)

    def load(self, name: str, path: str) -> Snapshot:
        """Load a persisted index (:func:`repro.indexes.persist.load_index`)
        and publish it under ``name``; the on-disk fingerprint is verified
        during the load, so a corrupt payload never reaches the store."""
        from repro.indexes.persist import load_index

        return self.publish(name, load_index(path))

    def drop(self, name: str) -> None:
        """Remove ``name``; subscribers are told so caches can purge."""
        with self._lock:
            previous = self._snapshots.pop(name, None)
            subscribers = tuple(self._subscribers)
        if previous is not None:
            for callback in subscribers:
                callback(name, None, previous)

    # -- reading --------------------------------------------------------------

    def get(self, name: str) -> Snapshot:
        with self._lock:
            try:
                return self._snapshots[name]
            except KeyError:
                raise KeyError(
                    f"no snapshot named {name!r}; available: {sorted(self._snapshots)}"
                ) from None

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._snapshots))

    def is_current(self, snapshot: Snapshot) -> bool:
        """Is this exact snapshot object still the live one for its name?

        The serving cache calls this under its own lock right before
        inserting a computed result: a snapshot replaced mid-computation
        fails the check, so a slow in-flight batch can never re-populate
        entries that the swap just invalidated.
        """
        with self._lock:
            return self._snapshots.get(snapshot.name) is snapshot

    def holds_fingerprint(self, fingerprint: str) -> bool:
        """Does any live snapshot (under any name) serve this content?

        Cache invalidation consults this on swap: entries are keyed by
        fingerprint, so they stay valid as long as *some* snapshot still
        serves that exact content, even if it was another name's swap.
        """
        with self._lock:
            return any(s.fingerprint == fingerprint for s in self._snapshots.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._snapshots

    # -- subscriptions --------------------------------------------------------

    def subscribe(self, callback: SwapCallback) -> Callable[[], None]:
        """Register a swap/drop observer; returns an unsubscribe function."""
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return unsubscribe

    def subscribe_deltas(self, callback: DeltaCallback) -> Callable[[], None]:
        """Register a delta-publish observer; returns an unsubscribe function.

        Delta subscribers fire *after* the regular swap subscribers of the
        same :meth:`publish_delta` call, with the ingested batch attached
        (``None`` when the publisher did not say which points are new).
        """
        with self._lock:
            self._delta_subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._delta_subscribers:
                    self._delta_subscribers.remove(callback)

        return unsubscribe

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            snapshots = list(self._snapshots.values())
        return [snapshot.info() for snapshot in sorted(snapshots, key=lambda s: s.name)]
