"""Thin stdlib HTTP/JSON front-end over :class:`ClusteringService`.

No framework, no third-party deps: a ``ThreadingHTTPServer`` whose handler
translates JSON requests into service calls.  Numeric fidelity note: arrays
go out via :mod:`json`, whose float encoding is ``repr``-based shortest
round-trip — a float64 parsed back with ``json.loads`` is *bit-identical*
to the served value (``±Infinity`` included, via Python's permissive JSON
dialect), so even HTTP clients keep the exactness contract.

Overload and failure are part of the contract, not exceptions to it: a
query that is shed at admission or misses its deadline gets ``503`` with a
``Retry-After`` header and a typed JSON error body (``{"error": …,
"type": "LoadShedError"|"DeadlineExceededError", "retry_after_s": …}``); a
dispatcher crash (restarted underneath, request safe to retry) gets
``500`` with ``"type": "DispatcherCrashError"``.  ``/healthz`` reports the
service health state (``healthy``/``degraded``/``shedding``) with
per-snapshot detail.

Routes
------
* ``GET  /healthz`` — liveness + snapshot count + health states.
* ``GET  /v1/snapshots`` — published snapshots (name, fingerprint, version…).
* ``POST /v1/snapshots/<name>`` — publish: body ``{"points": [[…]…],
  "index": "ch", "params": {…}}`` fits in-process; ``{"path": "…"}`` loads
  a persisted index (fingerprint-verified) instead.
* ``DELETE /v1/snapshots/<name>`` — drop a snapshot (and its cache entries).
* ``POST /v1/query`` — body ``{"snapshot": …, "op": "quantities"|"cluster",
  "dc": …, "tie_break"?, "n_centers"?, "rho_min"?, "delta_min"?, "halo"?,
  "use_cache"?}``; responds with the arrays plus the serving ``meta``
  (fingerprint, cache_hit, batch_size, trace_id, …) and, when tracing is
  on, an ``X-Trace-Id`` header naming the request's span tree.
* ``GET  /v1/stats`` — store / cache / coalescer counters.
* ``GET  /metrics`` — Prometheus text exposition of the obs registry.
* ``GET  /trace/<id>`` — one finished span tree from the trace ring buffer.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.quantities import DPCQuantities, DPCResult
from repro.obs import trace as obs_trace
from repro.obs.export import render_prometheus
from repro.serving.errors import (
    DeadlineExceededError,
    DispatcherCrashError,
    LoadShedError,
    ServiceDrainingError,
    ServingError,
)
from repro.serving.service import ClusteringService

__all__ = ["ClusteringServer", "make_server", "serialize_value"]

_MAX_BODY_BYTES = 256 * 1024 * 1024  # refuse absurd uploads outright


def serialize_value(value: Any) -> Dict[str, Any]:
    """JSON-friendly payload for a served DPCQuantities / DPCResult."""
    if isinstance(value, DPCResult):
        payload = serialize_value(value.quantities)
        payload.update(
            centers=value.centers.tolist(),
            labels=value.labels.tolist(),
            n_clusters=int(value.n_clusters),
            halo=None if value.halo is None else value.halo.tolist(),
        )
        return payload
    if isinstance(value, DPCQuantities):
        return {
            "dc": float(value.dc),
            "rho": value.rho.tolist(),
            "delta": value.delta.tolist(),
            "mu": value.mu.tolist(),
        }
    raise TypeError(f"cannot serialise {type(value).__name__}")


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    @property
    def service(self) -> ClusteringService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover - opt-in
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        close: bool = False,
        retry_after: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        if retry_after is not None:
            # Retry-After is integer seconds per RFC 9110; round up so a
            # compliant client never retries before the hint.
            self.send_header("Retry-After", str(max(1, int(-(-retry_after // 1)))))
        if close:
            # Sets self.close_connection too (stdlib special-cases this
            # header), ending the keep-alive session after the response.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, close: bool = False) -> None:
        self._send_json(status, {"error": message}, close=close)

    def _serving_error(self, exc: ServingError) -> None:
        """Typed overload/failure → status code + Retry-After + JSON body."""
        transient = isinstance(exc, (LoadShedError, DeadlineExceededError))
        status = 503 if transient else 500
        self._send_json(
            status,
            {
                "error": str(exc),
                "type": type(exc).__name__,
                "retry_after_s": exc.retry_after_s,
            },
            retry_after=exc.retry_after_s,
        )

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0 or length > _MAX_BODY_BYTES:
            # The body (absent, chunked, or refused-oversized) was never
            # consumed — under HTTP/1.1 keep-alive its bytes would be parsed
            # as the next request line, so this connection must die with the
            # error instead of desyncing.
            self._error(400, "a JSON body with Content-Length is required", close=True)
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "the JSON body must be an object")
            return None
        return payload

    # -- routes ---------------------------------------------------------------

    def _guarded(self, inner) -> None:
        """Drain refusal + in-flight tracking around one request.

        While the server drains, every route except ``GET /healthz`` and
        ``GET /metrics`` (operators still need eyes) gets ``503`` +
        ``Retry-After`` so clients fail over; the refusal closes the
        connection because a refused POST's body was never consumed and
        keep-alive would desync.  Admitted requests are counted so
        :meth:`ClusteringServer.drain` can wait for them to flush.
        """
        server = self.server
        if getattr(server, "draining", False) and not (
            self.command == "GET" and self.path in ("/healthz", "/metrics")
        ):
            exc = ServiceDrainingError()
            self._send_json(
                503,
                {
                    "error": str(exc),
                    "type": type(exc).__name__,
                    "retry_after_s": exc.retry_after_s,
                },
                close=True,
                retry_after=exc.retry_after_s,
            )
            return
        with server.track_request():  # type: ignore[attr-defined]
            inner()

    def do_GET(self) -> None:  # noqa: N802 - stdlib contract
        self._guarded(self._do_get)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib contract
        self._guarded(self._do_delete)

    def do_POST(self) -> None:  # noqa: N802 - stdlib contract
        self._guarded(self._do_post)

    def _do_get(self) -> None:
        if self.path == "/healthz":
            health = self.service.health()
            if getattr(self.server, "draining", False):
                health["state"] = "draining"
                health["draining"] = True
            self._send_json(
                200,
                {
                    # "ok" when healthy keeps the liveness contract of plain
                    # probes; degraded/shedding states ride in verbatim.
                    "status": "ok" if health["state"] == "healthy" else health["state"],
                    "snapshots": len(self.service.store),
                    "health": health,
                },
            )
        elif self.path == "/v1/snapshots":
            self._send_json(200, {"snapshots": self.service.store.describe()})
        elif self.path == "/v1/stats":
            self._send_json(200, self.service.stats())
        elif self.path == "/metrics":
            body = render_prometheus().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.startswith("/trace/"):
            trace_id = self.path[len("/trace/"):]
            tree = obs_trace.get_trace(trace_id) if trace_id else None
            if tree is None:
                self._send_json(
                    404,
                    {
                        "error": f"no trace {trace_id!r} in the ring buffer",
                        "recent": list(obs_trace.recent_trace_ids()),
                    },
                )
            else:
                self._send_json(200, {"trace": tree})
        else:
            self._error(404, f"no route GET {self.path}")

    def _do_delete(self) -> None:
        name = self._snapshot_name()
        if name is None:
            return
        if name not in self.service.store:
            self._error(404, f"no snapshot named {name!r}")
            return
        self.service.drop_snapshot(name)
        self._send_json(200, {"dropped": name})

    def _do_post(self) -> None:
        if self.path == "/v1/query":
            self._handle_query()
            return
        name = self._snapshot_name()
        if name is None:
            return
        self._handle_publish(name)

    def _snapshot_name(self) -> Optional[str]:
        prefix = "/v1/snapshots/"
        if not self.path.startswith(prefix) or not self.path[len(prefix):]:
            self._error(404, f"no route {self.command} {self.path}")
            return None
        return self.path[len(prefix):]

    def _handle_publish(self, name: str) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            if "path" in body:
                snapshot = self.service.load_snapshot(name, str(body["path"]))
            elif "points" in body:
                points = np.asarray(body["points"], dtype=np.float64)
                snapshot = self.service.fit_snapshot(
                    name,
                    points,
                    index=str(body.get("index", "ch")),
                    **dict(body.get("params") or {}),
                )
            else:
                self._error(400, 'publish needs "points" (fit) or "path" (load)')
                return
        except (ValueError, TypeError, KeyError, OSError) as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:  # never drop the socket without a status
            self._error(500, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(200, {"published": snapshot.info()})

    def _handle_query(self) -> None:
        body = self._read_body()
        if body is None:
            return
        name = body.get("snapshot")
        if not isinstance(name, str):
            self._error(400, 'the query body needs a "snapshot" name')
            return
        if "dc" not in body:
            self._error(400, 'the query body needs a "dc" cut-off')
            return
        try:
            result = self.service.submit(
                name,
                op=str(body.get("op", "cluster")),
                dc=body["dc"],
                tie_break=body.get("tie_break", "id"),
                n_centers=body.get("n_centers"),
                rho_min=body.get("rho_min"),
                delta_min=body.get("delta_min"),
                halo=bool(body.get("halo", False)),
                use_cache=bool(body.get("use_cache", True)),
                timeout_s=body.get("timeout_s"),
            ).result()
        except KeyError as exc:
            self._error(404, str(exc.args[0]) if exc.args else str(exc))
            return
        except ServingError as exc:
            # Shed/deadline → 503 + Retry-After, dispatcher crash → 500;
            # all retryable overload, never a client mistake (400).
            self._serving_error(exc)
            return
        except (ValueError, TypeError) as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:  # e.g. coalescer closed mid-shutdown -> 500
            self._error(500, f"{type(exc).__name__}: {exc}")
            return
        payload = serialize_value(result.value)
        payload["op"] = result.meta["op"]
        payload["meta"] = result.meta
        trace_id = result.meta.get("trace_id")
        payload["trace_id"] = trace_id
        self._send_json(
            200,
            payload,
            extra_headers={"X-Trace-Id": trace_id} if trace_id else None,
        )


class ClusteringServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ClusteringService`.

    Observability (:mod:`repro.obs`) is switched on for the whole process by
    default — a server exists to be watched, and ``/metrics`` / ``/trace``
    would otherwise serve empty registries.  Pass ``observability=False`` to
    keep instrumentation on its no-op path (e.g. overhead benchmarks).
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: ClusteringService,
        verbose: bool = False,
        observability: bool = True,
    ):
        # Set before super().__init__: a failed bind calls server_close().
        self._obs_enabled_here = False
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.draining = False
        self._serving = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._obs_enabled_here = observability and not obs.enabled()
        if observability:
            obs.enable()

    @contextlib.contextmanager
    def track_request(self) -> Iterator[None]:
        """Count one admitted request so :meth:`drain` can wait it out."""
        with self._inflight_cond:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    def inflight(self) -> int:
        return self._inflight

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Graceful drain: stop accepting, flush in-flight, report clean.

        Sets :attr:`draining` (new requests get ``503`` immediately), stops
        the accept loop, then waits up to ``timeout_s`` for every admitted
        request to finish.  Returns ``True`` when the flush completed inside
        the deadline (a *clean* drain), ``False`` when requests were still
        running when time ran out (callers should exit non-zero).  Does not
        close the socket — call :meth:`server_close` after, as usual.
        """
        self.draining = True
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        if self._serving:
            # Stops serve_forever's accept loop; safe here because drain()
            # is called from a different thread (e.g. the CLI signal path).
            self.shutdown()
        clean = True
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    clean = False
                    break
                self._inflight_cond.wait(remaining)
        return clean

    def server_close(self) -> None:
        super().server_close()
        # Only undo an enable *this* server performed — a process that was
        # already observing (CLI flag, another live server) keeps observing.
        if self._obs_enabled_here:
            obs.disable()
            self._obs_enabled_here = False


def make_server(
    service: ClusteringService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    observability: bool = True,
) -> ClusteringServer:
    """Bind (``port=0`` picks a free one; read ``server.server_address``)."""
    return ClusteringServer((host, port), service, verbose=verbose, observability=observability)
