"""Typed serving errors: every failure mode a client can observe.

The fail-fast contract of the serving layer is that a request either
completes bit-identical to a direct engine call or fails *promptly* with
one of these types — never a hang, never an anonymous ``RuntimeError`` the
front-end cannot translate into a status code.  The HTTP layer maps
:class:`LoadShedError` and :class:`DeadlineExceededError` to ``503`` with a
``Retry-After`` header; :class:`DispatcherCrashError` (a supervised
dispatcher restart failed the in-flight batch) maps to ``500`` and is safe
to retry.
"""

from __future__ import annotations

__all__ = [
    "DeadlineExceededError",
    "DispatcherCrashError",
    "LoadShedError",
    "ServiceDrainingError",
    "ServingError",
    "WorkerBatchError",
    "WorkerPoolUnavailableError",
]


class ServingError(RuntimeError):
    """Base of all typed serving failures."""

    #: Hint for the HTTP ``Retry-After`` header (seconds); subclasses that
    #: represent transient overload set it.
    retry_after_s: float = 1.0


class LoadShedError(ServingError):
    """Admission control refused the request: the dispatch queue is full.

    Raised at submit time, before the request ever queues — shedding at the
    door keeps queued latencies bounded for the requests already admitted.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DeadlineExceededError(ServingError, TimeoutError):
    """The request's deadline passed before the engine could serve it.

    The dispatcher checks deadlines when it drains a batch: an expired
    request is failed immediately instead of riding (and slowing) the
    coalesced engine call its batch-mates are waiting on.
    """


class DispatcherCrashError(ServingError):
    """The dispatcher thread crashed while this request was in flight.

    The supervisor restarts the dispatcher and fails the in-flight batch
    with this error — futures are never left hanging.  The request itself
    was not the cause (engine errors propagate with their own types), so
    retrying it is safe.
    """


class ServiceDrainingError(LoadShedError):
    """The server is draining: it stopped accepting new requests.

    Raised at admission once a graceful drain (SIGTERM) began — in-flight
    requests are still flushed to completion, but new work is refused with
    a ``Retry-After`` hint so clients fail over to a healthy replica.
    A :class:`LoadShedError` subclass: the HTTP layers map it to ``503``
    exactly like overload shedding.
    """

    def __init__(
        self, message: str = "service is draining; retry elsewhere",
        retry_after_s: float = 1.0,
    ) -> None:
        super().__init__(message, retry_after_s=retry_after_s)


class WorkerPoolUnavailableError(ServingError):
    """The replicated worker pool could not take (or finish) this batch.

    Internal to the serving tier — **never client-visible**: the coalescer
    catches it and degrades to in-process dispatch (the pre-replication
    code path), so the response is still produced, bit-identical, on the
    serving process itself.  Raised when the pool is draining or closed,
    when no live worker exists, or when a batch exhausted its failover
    attempts.
    """


class WorkerBatchError(ServingError):
    """A serving worker failed a batch deterministically (an engine error).

    Workers report engine failures as ``(type name, message)`` — the
    original exception object does not cross the process boundary.  The
    coalescer treats this like pool unavailability and recomputes the
    batch in-process, where the *real* typed exception is raised and
    propagated to the waiting clients, so error behaviour stays exactly
    that of a direct engine call.
    """
