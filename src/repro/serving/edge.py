"""Asyncio HTTP/JSON edge: admission control and deadlines at the door.

The threading front-end (:mod:`repro.serving.http`) spends one OS thread
per connection — fine for a handful of clients, wrong for the ROADMAP's
"millions of users" shape where most connections are idle keep-alives.
:class:`EdgeServer` is the asyncio replacement: one event loop (on a
background thread, so the rest of the process stays synchronous) multiplexes
every connection, parses a deliberately minimal HTTP/1.1 dialect (request
line, headers, ``Content-Length`` bodies, keep-alive), and applies the
serving tier's *edge policies* before any work is admitted:

* **Admission control** — at most ``max_inflight`` queries are in flight;
  excess gets ``503`` + ``Retry-After`` immediately, without touching the
  dispatch queue.  ``/healthz`` and ``/metrics`` are exempt: operators must
  be able to see a saturated server.
* **Per-request deadlines** — a query without its own ``timeout_s`` gets
  the edge default, and the edge additionally bounds the await itself, so a
  client never waits unboundedly on a wedged backend.
* **Graceful drain** — :meth:`drain` stops accepting, refuses new queries
  with ``503`` (clients fail over to a replica), flushes in-flight ones
  under a deadline, then closes.  SIGTERM handling in ``python -m repro
  serve`` is built on this.

Responses are byte-identical in content to the threading front-end — both
serialise through :func:`repro.serving.http.serialize_value`, so the
shortest-round-trip float encoding (and with it the exactness contract)
is shared, not duplicated.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.obs.export import render_prometheus
from repro.serving.errors import (
    DeadlineExceededError,
    LoadShedError,
    ServiceDrainingError,
    ServingError,
)
from repro.serving.http import serialize_value
from repro.serving.service import ClusteringService

__all__ = ["EdgeServer", "make_edge_server"]

_MAX_BODY_BYTES = 256 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """A malformed request the connection cannot recover from."""


class EdgeServer:
    """Asyncio front-end over one :class:`ClusteringService`.

    The event loop runs on a dedicated background thread (:meth:`start`
    blocks until the socket is bound), so the edge composes with the
    synchronous service, CLI and tests exactly like the threading server.
    Routes match :mod:`repro.serving.http`; ``/v1/query`` awaits the
    service future without holding a thread.
    """

    def __init__(
        self,
        service: ClusteringService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: Optional[int] = None,
        default_timeout_s: Optional[float] = None,
        observability: bool = True,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.service = service
        self._host = host
        self._port = int(port)
        self.max_inflight = max_inflight
        self.default_timeout_s = default_timeout_s
        self.address: Tuple[str, int] = (host, int(port))
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._inflight = 0  # queries being served (loop thread only)
        self._draining = False
        self._closed = False
        self._conn_tasks: "set[asyncio.Task]" = set()
        self.stats: Dict[str, int] = {"requests": 0, "queries": 0, "shed": 0}
        self._obs_enabled_here = observability and not obs.enabled()
        if observability:
            obs.enable()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "EdgeServer":
        """Bind and serve on a background event-loop thread (idempotent)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-edge", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):  # pragma: no cover
            raise RuntimeError("edge server failed to start within 10s")
        if self._start_error is not None:
            self._thread.join(timeout=1.0)
            raise self._start_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._serve_connection, self._host, self._port)
            )
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self.address = self._server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            try:
                self._server.close()
                for task in list(self._conn_tasks):
                    task.cancel()
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            loop.close()

    @property
    def draining(self) -> bool:
        return self._draining

    def inflight(self) -> int:
        """Queries currently being served (approximate cross-thread read)."""
        return self._inflight

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Stop accepting, flush in-flight queries, close.  True = clean.

        New queries are refused with ``503`` (``ServiceDrainingError``) the
        moment this is called; the listening socket closes, so clients'
        connection attempts fail over to a replica; queries already being
        awaited run to completion within the deadline.
        """
        self._draining = True
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():
            loop.call_soon_threadsafe(server.close)
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        clean = True
        while self._inflight > 0:
            if time.monotonic() >= deadline:
                clean = False
                break
            time.sleep(0.01)
        self.close()
        return clean

    def close(self) -> None:
        """Tear the loop and thread down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self._obs_enabled_here:
            obs.disable()
            self._obs_enabled_here = False

    @property
    def server_address(self) -> Tuple[str, int]:
        """Alias so the CLI treats both front-ends uniformly."""
        return self.address

    def server_close(self) -> None:
        """Alias so the CLI treats both front-ends uniformly."""
        self.close()

    def __enter__(self) -> "EdgeServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- connection handling (loop thread) ------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    break
                if request is None:
                    break  # EOF between requests: clean keep-alive close
                method, path, headers, body = request
                self.stats["requests"] += 1
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    await self._dispatch(writer, method, path, body)
                except _BadRequest as exc:
                    # A malformed *body* is the client's bug, not ours; the
                    # connection itself is still in sync (the body was fully
                    # read), so keep-alive may continue.
                    await self._respond(writer, 400, {"error": str(exc)})
                    if not keep_alive:
                        break
                    continue
                except ConnectionError:  # pragma: no cover - client went away
                    break
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:
                    # Never drop the socket without a status.
                    try:
                        await self._respond(
                            writer,
                            500,
                            {"error": f"{type(exc).__name__}: {exc}"},
                            close=True,
                        )
                    except ConnectionError:  # pragma: no cover
                        pass
                    break
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if b":" in raw:
                key, value = raw.decode("latin-1").split(":", 1)
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadRequest("invalid Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _BadRequest("Content-Length out of bounds")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        content_type: str = "application/json",
        retry_after: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for key, value in (extra_headers or {}).items():
            head.append(f"{key}: {value}")
        if retry_after is not None:
            # Integer seconds per RFC 9110; round up so a compliant client
            # never retries before the hint.
            head.append(f"Retry-After: {max(1, int(-(-retry_after // 1)))}")
        if close:
            head.append("Connection: close")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body)
        await writer.drain()

    # -- routing --------------------------------------------------------------

    def _parse_body(self, body: bytes) -> Dict[str, Any]:
        if not body:
            raise _BadRequest("a JSON body with Content-Length is required")
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("the JSON body must be an object")
        return payload

    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        if method == "GET":
            await self._handle_get(writer, path)
            return
        if method == "POST" and path == "/v1/query":
            await self._handle_query(writer, body)
            return
        prefix = "/v1/snapshots/"
        if path.startswith(prefix) and path[len(prefix):]:
            name = path[len(prefix):]
            if method == "POST":
                await self._handle_publish(writer, name, body)
                return
            if method == "DELETE":
                if name not in self.service.store:
                    await self._respond(
                        writer, 404, {"error": f"no snapshot named {name!r}"}
                    )
                    return
                self.service.drop_snapshot(name)
                await self._respond(writer, 200, {"dropped": name})
                return
        await self._respond(writer, 404, {"error": f"no route {method} {path}"})

    async def _handle_get(self, writer: asyncio.StreamWriter, path: str) -> None:
        # Liveness and metrics serve even while draining or saturated —
        # exactly then is when operators need them.
        if path == "/healthz":
            health = self.service.health()
            if self._draining:
                health["state"] = "draining"
                health["draining"] = True
            health["edge"] = {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "draining": self._draining,
            }
            await self._respond(
                writer,
                200,
                {
                    "status": "ok" if health["state"] == "healthy" else health["state"],
                    "snapshots": len(self.service.store),
                    "health": health,
                },
            )
        elif path == "/metrics":
            await self._respond(
                writer,
                200,
                render_prometheus().encode(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/v1/snapshots":
            await self._respond(
                writer, 200, {"snapshots": self.service.store.describe()}
            )
        elif path == "/v1/stats":
            await self._respond(writer, 200, self.service.stats())
        elif path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            tree = obs_trace.get_trace(trace_id) if trace_id else None
            if tree is None:
                await self._respond(
                    writer,
                    404,
                    {
                        "error": f"no trace {trace_id!r} in the ring buffer",
                        "recent": list(obs_trace.recent_trace_ids()),
                    },
                )
            else:
                await self._respond(writer, 200, {"trace": tree})
        else:
            await self._respond(writer, 404, {"error": f"no route GET {path}"})

    async def _handle_publish(
        self, writer: asyncio.StreamWriter, name: str, raw: bytes
    ) -> None:
        if self._draining:
            await self._serving_error(writer, ServiceDrainingError())
            return
        body = self._parse_body(raw)

        def publish():
            if "path" in body:
                return self.service.load_snapshot(name, str(body["path"]))
            if "points" in body:
                points = np.asarray(body["points"], dtype=np.float64)
                return self.service.fit_snapshot(
                    name,
                    points,
                    index=str(body.get("index", "ch")),
                    **dict(body.get("params") or {}),
                )
            raise _BadRequest('publish needs "points" (fit) or "path" (load)')

        try:
            # A fit can take a while; run it off the loop so health checks
            # and other connections keep being served meanwhile.
            snapshot = await asyncio.get_running_loop().run_in_executor(
                None, publish
            )
        except _BadRequest:
            raise
        except (ValueError, TypeError, KeyError, OSError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        except Exception as exc:
            await self._respond(
                writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        await self._respond(writer, 200, {"published": snapshot.info()})

    async def _serving_error(
        self, writer: asyncio.StreamWriter, exc: ServingError
    ) -> None:
        transient = isinstance(exc, (LoadShedError, DeadlineExceededError))
        await self._respond(
            writer,
            503 if transient else 500,
            {
                "error": str(exc),
                "type": type(exc).__name__,
                "retry_after_s": exc.retry_after_s,
            },
            retry_after=exc.retry_after_s,
        )

    async def _handle_query(self, writer: asyncio.StreamWriter, raw: bytes) -> None:
        # Edge policies first: drain refusal, then bounded in-flight.
        if self._draining:
            await self._serving_error(writer, ServiceDrainingError())
            return
        if self.max_inflight is not None and self._inflight >= self.max_inflight:
            self.stats["shed"] += 1
            if obs_runtime._ENABLED:
                obs_metrics.counter(
                    "repro_edge_shed_total",
                    "Queries refused by edge admission control (inflight cap)",
                ).inc()
            await self._serving_error(
                writer,
                LoadShedError(
                    f"edge at capacity ({self._inflight} in flight, "
                    f"max_inflight={self.max_inflight}); retry later",
                    retry_after_s=0.2,
                ),
            )
            return
        body = self._parse_body(raw)
        name = body.get("snapshot")
        if not isinstance(name, str):
            await self._respond(
                writer, 400, {"error": 'the query body needs a "snapshot" name'}
            )
            return
        if "dc" not in body:
            await self._respond(
                writer, 400, {"error": 'the query body needs a "dc" cut-off'}
            )
            return
        timeout_s = body.get("timeout_s", self.default_timeout_s)
        self._inflight += 1
        self.stats["queries"] += 1
        if obs_runtime._ENABLED:
            obs_metrics.gauge(
                "repro_edge_inflight", "Queries in flight at the asyncio edge"
            ).set(self._inflight)
        try:
            try:
                future = self.service.submit(
                    name,
                    op=str(body.get("op", "cluster")),
                    dc=body["dc"],
                    tie_break=body.get("tie_break", "id"),
                    n_centers=body.get("n_centers"),
                    rho_min=body.get("rho_min"),
                    delta_min=body.get("delta_min"),
                    halo=bool(body.get("halo", False)),
                    use_cache=bool(body.get("use_cache", True)),
                    timeout_s=timeout_s,
                )
                awaitable = asyncio.wrap_future(future)
                if timeout_s is not None:
                    # The dispatcher enforces the deadline while queued; this
                    # edge bound also covers a wedged engine call, so the
                    # client's wait is limited no matter where time is lost.
                    result = await asyncio.wait_for(
                        awaitable, timeout=float(timeout_s) + 1.0
                    )
                else:
                    result = await awaitable
            except KeyError as exc:
                await self._respond(
                    writer,
                    404,
                    {"error": str(exc.args[0]) if exc.args else str(exc)},
                )
                return
            except asyncio.TimeoutError:
                await self._serving_error(
                    writer,
                    DeadlineExceededError(
                        f"deadline exceeded at the edge (timeout_s={timeout_s})"
                    ),
                )
                return
            except ServingError as exc:
                await self._serving_error(writer, exc)
                return
            except (ValueError, TypeError) as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            except Exception as exc:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
                return
        finally:
            self._inflight -= 1
            if obs_runtime._ENABLED:
                obs_metrics.gauge(
                    "repro_edge_inflight", "Queries in flight at the asyncio edge"
                ).set(self._inflight)
        payload = serialize_value(result.value)
        payload["op"] = result.meta["op"]
        payload["meta"] = result.meta
        trace_id = result.meta.get("trace_id")
        payload["trace_id"] = trace_id
        await self._respond(
            writer,
            200,
            payload,
            extra_headers={"X-Trace-Id": trace_id} if trace_id else None,
        )


def make_edge_server(
    service: ClusteringService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_inflight: Optional[int] = None,
    default_timeout_s: Optional[float] = None,
    observability: bool = True,
) -> EdgeServer:
    """Bind and start an :class:`EdgeServer` (``port=0`` picks a free one;
    read ``server.address``)."""
    return EdgeServer(
        service,
        host=host,
        port=port,
        max_inflight=max_inflight,
        default_timeout_s=default_timeout_s,
        observability=observability,
    ).start()
