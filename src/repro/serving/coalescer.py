"""Coalesce concurrent requests into the batched multi-``dc`` kernels.

A naive server answers each request with one ``index.cluster(dc)`` call; N
concurrent clients cost N full engine runs.  But PR 1–3 made the engine
*batch-shaped*: ``quantities_multi`` answers a whole grid of cut-offs
against one fitted structure far cheaper than per-``dc`` serial calls (one
flattened-tree image, one all-orders annotation pass, one sharded task
wave).  The :class:`RequestCoalescer` exploits that: requests queue up, a
single dispatcher thread drains them in small time windows (``linger_ms``),
groups them by (snapshot, tie-break), deduplicates the cut-offs and runs
**one** ``quantities_multi`` per group.  ``cluster`` requests then finish
with :meth:`~repro.indexes.base.DPCIndex.cluster_from_quantities` — the
exact tail of ``cluster()`` — so every response is bit-identical to the
direct per-request call, which is the serving contract
(``tests/properties/test_prop_serving.py``).

A single dispatcher thread is also what makes the engine safe to share:
index probe counters and lazy per-fit caches are only ever touched from one
thread, regardless of how many clients are blocked on futures.

Fault tolerance
---------------
The dispatcher is *supervised*: an exception escaping a dispatch cycle
(including injected chaos faults at the ``coalescer.dispatch`` point) fails
every unresolved future of the in-flight batch with a typed
:class:`~repro.serving.errors.DispatcherCrashError` — futures are never
left hanging — and the loop restarts for the next batch; a hard thread
death is additionally healed by :meth:`RequestCoalescer.submit`, which
respawns a dead dispatcher.  Admission is bounded (``max_queue``): when the
backlog is full, :meth:`submit` sheds with a
:class:`~repro.serving.errors.LoadShedError` instead of growing queue
latency without bound.  Requests carry optional deadlines
(``timeout_s``): a request whose deadline passed while it queued is failed
fast with :class:`~repro.serving.errors.DeadlineExceededError` instead of
riding (and slowing) the coalesced engine call of its batch-mates.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import faults
from repro.core.quantities import TieBreak
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.serving.errors import (
    DeadlineExceededError,
    DispatcherCrashError,
    LoadShedError,
    ServiceDrainingError,
    ServingError,
    WorkerBatchError,
    WorkerPoolUnavailableError,
)
from repro.serving.snapshots import Snapshot

__all__ = ["ServeRequest", "RequestCoalescer"]

#: Request operations the engine knows how to batch.
OPS = ("quantities", "cluster")


@dataclass
class ServeRequest:
    """One in-flight request, resolved against a specific snapshot.

    The snapshot handle (not its name) rides along: whatever the store does
    while this request queues, it is answered from the index it resolved —
    point-in-time consistency, no torn reads across a hot swap.
    """

    snapshot: Snapshot
    op: str
    dc: float
    tie_break: TieBreak = TieBreak.ID
    n_centers: Optional[int] = None
    rho_min: Optional[float] = None
    delta_min: Optional[float] = None
    halo: bool = False
    #: Optional per-request deadline: ``timeout_s`` seconds from admission.
    #: The dispatcher fails an expired request fast instead of dispatching.
    timeout_s: Optional[float] = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    deadline: Optional[float] = field(default=None, init=False)
    #: Root trace span of the request (set by the service).  The dispatcher
    #: runs on its own thread, so contextvars cannot carry the trace across;
    #: the span rides the request instead and is re-established with
    #: ``obs.trace.use_span`` at dispatch.
    span: Any = field(default=None, init=False, repr=False)
    #: Set once the request was handed to the replicated executor: its
    #: future is now owned by the worker pool (resolved from the supervisor
    #: thread), so the dispatcher's end-of-cycle safety net must not fail
    #: it as "unresolved".
    detached: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {self.op!r}")
        self.dc = float(self.dc)
        # Validate at admission: the engine would reject a bad dc too, but
        # only after the whole coalesced batch reached quantities_multi —
        # one malformed request must never fail its batch-mates.
        if not self.dc > 0:  # "not >" also catches NaN
            raise ValueError(f"dc must be positive, got {self.dc}")
        self.tie_break = TieBreak.coerce(self.tie_break)
        if self.timeout_s is not None:
            self.timeout_s = float(self.timeout_s)
            if not self.timeout_s > 0:  # "not >" also catches NaN
                raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
            self.deadline = self.enqueued_at + self.timeout_s

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.perf_counter() if now is None else now) >= self.deadline

    def group_key(self) -> Tuple:
        """Requests sharing this key can ride one ``quantities_multi`` call."""
        return (id(self.snapshot), self.tie_break.value)


class RequestCoalescer:
    """Single-threaded batching dispatcher over the multi-``dc`` engine.

    Parameters
    ----------
    max_batch:
        Upper bound on requests drained per dispatch cycle.  ``1`` degrades
        to per-request serial dispatch — same thread, same queue overhead,
        no batching — which is exactly the honest baseline the load
        benchmark compares against.
    linger_ms:
        After the first request of a cycle arrives, how long to keep the
        window open for more.  ``0`` only picks up requests that are
        *already* queued (pure backlog coalescing, no added latency).
    max_queue:
        Admission bound: when this many requests are already queued but
        undispatched, :meth:`submit` sheds with a
        :class:`~repro.serving.errors.LoadShedError` instead of enqueueing.
        ``0`` sheds everything (drain mode); ``None`` (default) admits
        unboundedly, the pre-robustness behaviour.
    executor:
        Optional replicated-execution hook: ``executor(snapshot, dcs,
        tie_break) -> Future`` resolving to the ``quantities_multi``
        payload (the :class:`~repro.serving.workers.WorkerPool`'s
        ``submit``).  When set, coalesced groups are handed to it and the
        dispatcher moves straight on to the next batch — groups compute
        concurrently across worker replicas.  A synchronous
        :class:`~repro.serving.errors.ServingError` from the hook, or a
        future failing with
        :class:`~repro.serving.errors.WorkerPoolUnavailableError` /
        :class:`~repro.serving.errors.WorkerBatchError`, degrades that
        group to the in-process engine call (the pre-replication path) —
        bit-identical either way, so pool trouble is never client-visible.
    """

    def __init__(
        self,
        max_batch: int = 64,
        linger_ms: float = 2.0,
        max_queue: Optional[int] = None,
        executor: Optional[Any] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if linger_ms < 0:
            raise ValueError(f"linger_ms must be >= 0, got {linger_ms}")
        if max_queue is not None and max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_batch = int(max_batch)
        self.linger_ms = float(linger_ms)
        self.max_queue = None if max_queue is None else int(max_queue)
        self.executor = executor
        self._queue: "queue.SimpleQueue[Optional[ServeRequest]]" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._draining = False
        self._depth = 0  # queued-but-undispatched requests (under _lock)
        self._outstanding = 0  # admitted requests whose futures are unresolved
        # Serialises in-process engine calls on the shared index: with an
        # executor, the dispatcher thread (sync fallback) and short-lived
        # fallback threads (async fallback) may otherwise race the index's
        # probe counters and lazy per-fit caches.
        self._inline_lock = threading.Lock()
        # observability ("shed" is written under _lock by submitters, the
        # rest only by the dispatcher thread)
        self.stats: Dict[str, int] = {
            "requests": 0,
            "batches": 0,
            "engine_calls": 0,
            "coalesced_requests": 0,
            "deduped_dcs": 0,
            "largest_batch": 0,
            "shed": 0,
            "expired": 0,
            "dispatcher_restarts": 0,
            "executor_batches": 0,
            "executor_fallbacks": 0,
        }

    def stats_snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of the counters, safe against concurrent
        dispatcher mutation (scrapers must never hold the live dict)."""
        with self._lock:
            return dict(self.stats)

    def _depth_gauge(self, depth: int) -> None:
        if obs_runtime._ENABLED:
            obs_metrics.gauge(
                "repro_serving_queue_depth",
                "Requests admitted but not yet picked up by the dispatcher",
            ).set(depth)

    # -- client side ----------------------------------------------------------

    def queue_depth(self) -> int:
        """Requests admitted but not yet picked up by the dispatcher."""
        with self._lock:
            return self._depth

    @property
    def shedding(self) -> bool:
        """Is admission control currently refusing new requests?"""
        with self._lock:
            return self.max_queue is not None and self._depth >= self.max_queue

    def submit(self, request: ServeRequest) -> Future:
        """Enqueue; the returned future resolves to ``(value, meta)``.

        ``value`` is a :class:`~repro.core.quantities.DPCQuantities` or
        :class:`~repro.core.quantities.DPCResult`; ``meta`` records the
        batch this request rode in.  Raises
        :class:`~repro.serving.errors.LoadShedError` when the admission
        queue is full — fail at the door, with a retry hint, rather than
        grow unbounded latency for everyone already queued.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            if self._draining:
                self.stats["shed"] += 1
                if obs_runtime._ENABLED:
                    obs_metrics.counter(
                        "repro_serving_shed_total",
                        "Requests refused at admission (queue full)",
                    ).inc()
                raise ServiceDrainingError()
            if self.max_queue is not None and self._depth >= self.max_queue:
                self.stats["shed"] += 1
                if obs_runtime._ENABLED:
                    obs_metrics.counter(
                        "repro_serving_shed_total",
                        "Requests refused at admission (queue full)",
                    ).inc()
                raise LoadShedError(
                    f"dispatch queue is full ({self._depth} queued, "
                    f"max_queue={self.max_queue}); retry later",
                    retry_after_s=max(0.05, self.linger_ms / 1000.0 * 4),
                )
            # Supervision, half two: a dispatcher thread killed by a hard
            # failure (the supervised loop catches ordinary exceptions) is
            # respawned on the next submit, so one crash never turns every
            # later request into a hang.
            if self._thread is None or not self._thread.is_alive():
                if self._thread is not None:
                    self.stats["dispatcher_restarts"] += 1
                self._thread = threading.Thread(
                    target=self._run, name="repro-serve-dispatch", daemon=True
                )
                self._thread.start()
            # Enqueue under the lock: close() also holds it to set _closed
            # and append the shutdown sentinel, so a request can never land
            # behind the sentinel in a dead queue (its future would hang).
            self._depth += 1
            self._depth_gauge(self._depth)
            self._outstanding += 1
            self._queue.put(request)
        # Outside the lock: a done callback may fire immediately (it takes
        # the lock itself to decrement the outstanding counter).
        request.future.add_done_callback(self._note_done)
        return request.future

    def _note_done(self, _future: Future) -> None:
        with self._lock:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._cond.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Stop admitting, wait for every in-flight future, then close.

        New submits fail with
        :class:`~repro.serving.errors.ServiceDrainingError` (a 503 with
        ``Retry-After`` at the HTTP layer) the moment this is called;
        already-admitted requests are flushed to completion.  Returns
        ``True`` when everything resolved within ``timeout_s`` (a clean
        drain), ``False`` when the deadline forced the close with futures
        still unresolved (those fail with ``"coalescer closed"``).
        """
        with self._lock:
            if self._closed:
                return True
            self._draining = True
        deadline = time.perf_counter() + max(0.0, float(timeout_s))
        clean = True
        with self._lock:
            while self._outstanding > 0:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    clean = False
                    break
                self._cond.wait(remaining)
        self.close()
        return clean

    def close(self) -> None:
        """Stop the dispatcher; queued-but-unprocessed requests error out."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._queue.put(None)
        if thread is not None:
            thread.join(timeout=10.0)

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- dispatcher side ------------------------------------------------------

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is None:
                self._drain_after_close()
                return
            batch = [first]
            deadline = time.perf_counter() + self.linger_ms / 1000.0
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    item = (
                        self._queue.get_nowait()
                        if remaining <= 0
                        else self._queue.get(timeout=remaining)
                    )
                except queue.Empty:
                    break
                if item is None:
                    stop = True
                    break
                batch.append(item)
            with self._lock:
                self._depth -= len(batch)
                self._depth_gauge(self._depth)
            # Supervision, half one: a dispatch cycle that dies (engine bug,
            # injected chaos fault, anything) must not kill the loop with
            # futures in hand.  Fail the whole in-flight batch fast with a
            # typed, retryable error and keep dispatching.
            try:
                self._dispatch(batch)
            except BaseException as exc:
                if isinstance(exc, (SystemExit, KeyboardInterrupt)):
                    raise
                self.stats["dispatcher_restarts"] += 1
                self._fail_unresolved(batch, exc)
            else:
                # Safety net: _dispatch resolves every future on all paths
                # today, but "never hang" is a contract, not a hope.
                self._fail_unresolved(batch, None)
            if stop:
                self._drain_after_close()
                return

    @staticmethod
    def _fail_unresolved(
        batch: List[ServeRequest], cause: Optional[BaseException]
    ) -> None:
        for request in batch:
            future = request.future
            if request.detached or future.done() or future.cancelled():
                continue
            error = DispatcherCrashError(
                "dispatcher crashed mid-batch; request failed fast and is "
                "safe to retry"
            )
            if cause is not None:
                error.__cause__ = cause
            future.set_exception(error)

    def _drain_after_close(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is None:
                continue
            with self._lock:
                self._depth -= 1
                self._depth_gauge(self._depth)
            if not item.future.cancelled():
                item.future.set_exception(RuntimeError("coalescer closed"))

    def _dispatch(self, batch: List[ServeRequest]) -> None:
        # Chaos point: an exception here is exactly a dispatcher crash, so
        # it rides the supervised path in _run (fail batch fast, restart).
        faults.trip("coalescer.dispatch")
        self.stats["requests"] += len(batch)
        self.stats["batches"] += 1
        self.stats["largest_batch"] = max(self.stats["largest_batch"], len(batch))
        if len(batch) > 1:
            self.stats["coalesced_requests"] += len(batch)
        record = obs_runtime._ENABLED
        if record:
            obs_metrics.counter(
                "repro_coalescer_batches_total", "Dispatch cycles executed"
            ).inc()
            obs_metrics.histogram(
                "repro_coalescer_batch_size",
                "Requests drained per dispatch cycle",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            ).observe(len(batch))
        # Deadline check at dispatch time: an expired request is failed fast
        # instead of riding (and slowing) its batch-mates' engine call.
        now = time.perf_counter()
        live: List[ServeRequest] = []
        for request in batch:
            if record:
                obs_metrics.histogram(
                    "repro_serving_queue_wait_seconds",
                    "Time a request spent queued before dispatch",
                ).observe(max(0.0, now - request.enqueued_at))
            if request.expired(now):
                self.stats["expired"] += 1
                if record:
                    obs_metrics.counter(
                        "repro_serving_expired_total",
                        "Requests whose deadline passed while queued",
                    ).inc()
                if not request.future.cancelled():
                    request.future.set_exception(
                        DeadlineExceededError(
                            f"deadline exceeded before dispatch "
                            f"(timeout_s={request.timeout_s})"
                        )
                    )
            else:
                live.append(request)
        batch = live
        if not batch:
            return
        groups: "Dict[Tuple, List[ServeRequest]]" = {}
        for request in batch:
            groups.setdefault(request.group_key(), []).append(request)
        for group in groups.values():
            self._dispatch_group(group)

    def _dispatch_group(self, group: List[ServeRequest]) -> None:
        """One engine call for every distinct ``dc`` in the group."""
        index = group[0].snapshot.index
        tie_break = group[0].tie_break
        dcs = list(dict.fromkeys(request.dc for request in group))
        self.stats["engine_calls"] += 1
        self.stats["deduped_dcs"] += len(group) - len(dcs)
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                "repro_coalescer_engine_calls_total", "quantities_multi engine calls"
            ).inc()
            if len(group) - len(dcs):
                obs_metrics.counter(
                    "repro_coalescer_deduped_dcs_total",
                    "Requests answered from a batch-mate's identical dc",
                ).inc(len(group) - len(dcs))
        # The group's one engine call is traced under the *lead* request
        # (the first with a root span), so its trace shows the full
        # coalescer -> quantities -> (partition|parallel) tree; batch-mates
        # get a "coalescer.ride" marker pointing at the lead trace.
        lead = next((r.span for r in group if r.span is not None), None)
        dispatch_span = obs_trace.begin_span(
            "coalescer.dispatch",
            parent=lead,
            batch_size=len(group),
            batch_dcs=len(dcs),
        )
        ride_spans = []
        for request in group:
            if request.span is not None and request.span is not lead:
                ride_spans.append(
                    obs_trace.begin_span(
                        "coalescer.ride",
                        parent=request.span,
                        lead_trace=dispatch_span.trace_id,
                        batch_size=len(group),
                    )
                )
        def finish_spans() -> None:
            dispatch_span.finish()
            for ride in ride_spans:
                ride.finish()

        if self.executor is not None:
            for request in group:
                request.detached = True
            try:
                with obs_trace.use_span(dispatch_span):
                    pool_future = self.executor(
                        group[0].snapshot, list(dcs), tie_break
                    )
            except ServingError:
                # Pool can't take the batch right now (draining, no live
                # workers): degrade to the in-process path, immediately.
                self._note_fallback()
                self._run_group_inline(group, dcs, tie_break, dispatch_span, finish_spans)
            else:
                with self._lock:
                    self.stats["executor_batches"] += 1
                pool_future.add_done_callback(
                    lambda f: self._executor_done(
                        group, dcs, tie_break, dispatch_span, finish_spans, f
                    )
                )
            return
        self._run_group_inline(group, dcs, tie_break, dispatch_span, finish_spans)

    def _note_fallback(self) -> None:
        with self._lock:
            self.stats["executor_fallbacks"] += 1
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                "repro_serving_pool_fallbacks_total",
                "Coalesced groups degraded from the worker pool to "
                "in-process dispatch",
            ).inc()

    def _executor_done(
        self,
        group: List[ServeRequest],
        dcs: List[float],
        tie_break: TieBreak,
        dispatch_span: Any,
        finish_spans: Any,
        pool_future: Future,
    ) -> None:
        """Completion of a pool-dispatched group (pool supervisor thread)."""
        exc = pool_future.exception()
        if exc is None:
            finish_spans()
            self._complete_group(group, dcs, pool_future.result())
            return
        if isinstance(exc, (WorkerPoolUnavailableError, WorkerBatchError)):
            # Degrade: recompute in-process, on a short-lived thread — this
            # callback runs on the pool's supervisor thread, which must stay
            # responsive to heartbeats while the engine call runs.
            self._note_fallback()
            threading.Thread(
                target=self._run_group_inline,
                args=(group, dcs, tie_break, dispatch_span, finish_spans),
                name="repro-serve-fallback",
                daemon=True,
            ).start()
            return
        finish_spans()
        for request in group:  # pragma: no cover - pool raises typed errors
            if not request.future.cancelled():
                request.future.set_exception(exc)

    def _run_group_inline(
        self,
        group: List[ServeRequest],
        dcs: List[float],
        tie_break: TieBreak,
        dispatch_span: Any,
        finish_spans: Any,
    ) -> None:
        """The pre-replication path: one engine call on this process."""
        index = group[0].snapshot.index
        try:
            with obs_trace.use_span(dispatch_span):
                with self._inline_lock:
                    quantities = index.quantities_multi(dcs, tie_break)
        except BaseException as exc:  # propagate engine errors to every waiter
            finish_spans()
            for request in group:
                if not request.future.cancelled():
                    request.future.set_exception(exc)
            return
        finish_spans()
        self._complete_group(group, dcs, quantities)

    def _complete_group(
        self, group: List[ServeRequest], dcs: List[float], quantities: List[Any]
    ) -> None:
        """Distribute a group's ``quantities_multi`` payload to its waiters
        (including the per-request ``cluster`` tail) — bit-identical no
        matter which thread or process produced the payload."""
        index = group[0].snapshot.index
        by_dc = dict(zip(dcs, quantities))
        meta = {
            "batch_size": len(group),
            "batch_dcs": len(dcs),
            "coalesced": len(group) > 1,
        }
        for request in group:
            if request.future.cancelled():
                continue
            try:
                q = by_dc[request.dc]
                if request.op == "cluster":
                    # The selection/assignment tail runs under the request's
                    # own root, so engine.assign lands in the right trace.
                    with obs_trace.use_span(request.span):
                        with self._inline_lock:
                            value: Any = index.cluster_from_quantities(
                                q,
                                n_centers=request.n_centers,
                                rho_min=request.rho_min,
                                delta_min=request.delta_min,
                                halo=request.halo,
                            )
                else:
                    value = q
            except BaseException as exc:  # bad per-request selection params
                request.future.set_exception(exc)
            else:
                request.future.set_result((value, dict(meta)))
