"""Serving layer: hot snapshots, request coalescing, exact result caching.

The paper makes one fitted index cheap to query for many ``dc``; this
package makes that amortisation *multi-tenant*: a
:class:`~repro.serving.snapshots.SnapshotStore` keeps named fitted indexes
hot (fit in-process, loaded via :mod:`repro.indexes.persist`, or published
by a :class:`~repro.extras.streaming.StreamingDPC` on every amortised
rebuild), a :class:`~repro.serving.coalescer.RequestCoalescer` batches
concurrent requests through the multi-``dc`` kernels, and a
:class:`~repro.serving.cache.ResultCache` memoises exact results keyed on
content fingerprints.  :class:`~repro.serving.service.ClusteringService`
ties them together; :mod:`repro.serving.http` puts a stdlib HTTP/JSON
front-end on top (``python -m repro serve``).

Contract: every served response — cache hits and coalesced batches
included — is bit-identical to a direct ``quantities()``/``cluster()``
call on the same data, or fails fast with a typed
:class:`~repro.serving.errors.ServingError` (shed, deadline, dispatcher
crash) — never a hang.
"""

from repro.serving.cache import CacheStats, ResultCache, result_key
from repro.serving.coalescer import RequestCoalescer, ServeRequest
from repro.serving.errors import (
    DeadlineExceededError,
    DispatcherCrashError,
    LoadShedError,
    ServingError,
)
from repro.serving.http import ClusteringServer, make_server
from repro.serving.loadgen import LoadReport, run_load
from repro.serving.service import ClusteringService, ServeResult
from repro.serving.snapshots import Snapshot, SnapshotStore

__all__ = [
    "CacheStats",
    "ClusteringServer",
    "ClusteringService",
    "DeadlineExceededError",
    "DispatcherCrashError",
    "LoadReport",
    "LoadShedError",
    "RequestCoalescer",
    "ResultCache",
    "ServeRequest",
    "ServeResult",
    "ServingError",
    "Snapshot",
    "SnapshotStore",
    "make_server",
    "result_key",
    "run_load",
]
