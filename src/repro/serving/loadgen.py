"""Load generators for the serving layer: closed-loop and open-loop.

Shared by ``benchmarks/bench_serving_load.py`` and the harness ``serving``
experiment so both report from one measurement path.  Two arrival models:

* **Closed-loop** (:func:`run_load`, the default) — each simulated client
  issues its next request only after the previous one returned; throughput
  and latency respond to the service, never to an arrival schedule
  outrunning it.  Right for comparing dispatch modes on identical request
  sequences.
* **Open-loop** (:func:`run_open_loop`, :func:`sweep_open_loop`) — requests
  arrive on a seeded Poisson schedule at ``--offered-rps`` regardless of
  completions, the way independent users actually behave.  Latency is
  measured from the *scheduled* arrival (no coordinated omission: a stalled
  server cannot slow the clock that judges it), so sweeping the offered
  rate exposes the latency knee and the saturation throughput that
  closed-loop runs structurally hide.

Both draw cut-offs from the same ``dcs`` grid with deterministic RNGs, so
runs are reproducible, and both report typed overload components (shed,
expired) plus the replicated worker pool's failover counters when the
service runs one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.obs import trace as obs_trace
from repro.obs.export import phase_totals
from repro.serving.errors import DeadlineExceededError, LoadShedError
from repro.serving.service import ClusteringService

__all__ = ["LoadReport", "OpenLoopReport", "run_load", "run_open_loop", "sweep_open_loop"]


def _pool_stats(service: ClusteringService) -> Dict[str, int]:
    pool = getattr(service, "pool", None)
    if pool is None:
        return {}
    return {
        key: int(value)
        for key, value in pool.stats_snapshot().items()
        if isinstance(value, (int, np.integer))
    }


def _pool_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    return {key: after[key] - before.get(key, 0) for key in after}


@dataclass
class LoadReport:
    """Aggregate of one closed-loop run (latencies in milliseconds).

    ``requests`` counts every request issued; ``errors`` the failed subset,
    of which ``shed`` (admission refused) and ``expired`` (per-request
    deadline passed) are the typed overload components — the rates make
    them comparable across runs of different sizes.  ``throughput_rps``
    and ``latency_ms`` cover **successful** requests only — a run where
    half the requests error instantly must not report doubled throughput
    and flattering percentiles.
    """

    dispatch: str
    op: str
    clients: int
    requests: int
    errors: int
    shed: int
    expired: int
    elapsed_seconds: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    cache_hits: int
    coalescer: Dict[str, int] = field(default_factory=dict)
    #: Up to ``trace_sample`` sampled request traces, each
    #: ``{"trace_id": …, "phase_ms": {span name: total ms}}`` — empty when
    #: sampling was off or tracing disabled.
    trace_samples: List[Dict[str, Any]] = field(default_factory=list)
    #: Worker-pool failovers that happened *during this run* (0 without a
    #: replicated pool) — batches re-dispatched to a warm replica after a
    #: worker died; the clients above never saw them.
    failovers: int = 0
    #: Delta of the worker pool's counters over the run (empty without one).
    pool: Dict[str, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def as_record(self) -> Dict[str, Any]:
        return {
            "dispatch": self.dispatch,
            "op": self.op,
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "expired": self.expired,
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "cache_hits": self.cache_hits,
            "coalescer": dict(self.coalescer),
            "trace_samples": list(self.trace_samples),
            "failovers": self.failovers,
            "pool": dict(self.pool),
        }


def _percentiles(latencies_ms: np.ndarray) -> Dict[str, float]:
    p50, p95, p99 = np.percentile(latencies_ms, (50, 95, 99))
    return {
        "mean": float(latencies_ms.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "max": float(latencies_ms.max()),
    }


def run_load(
    service: ClusteringService,
    snapshot: str,
    dcs: Sequence[float],
    clients: int = 8,
    requests_per_client: int = 24,
    op: str = "cluster",
    use_cache: bool = False,
    cluster_params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    timeout_s: Optional[float] = None,
    trace_sample: int = 0,
) -> LoadReport:
    """Drive ``clients`` closed-loop threads against one snapshot.

    ``use_cache=False`` (the default) measures *dispatch*: every request
    reaches the engine, which is the serial-vs-coalesced comparison the
    benchmark is after.  ``use_cache=True`` measures the full service
    including memoisation.  ``timeout_s`` rides every request as its
    per-request deadline; shed and expired requests are counted separately
    from other errors in the report.

    ``trace_sample > 0`` keeps the trace ids of the first N successful
    requests per the whole run and resolves their span trees into per-phase
    millisecond totals after the run (requires :mod:`repro.obs` tracing to
    be enabled, otherwise ``trace_samples`` stays empty).
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    dcs = [float(dc) for dc in dcs]
    if not dcs:
        raise ValueError("dcs must be non-empty")
    params = dict(cluster_params or {})
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    shed = [0] * clients
    expired = [0] * clients
    cache_hits = [0] * clients
    sampled_ids: List[str] = []
    sample_lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)
    pool_before = _pool_stats(service)

    def client(slot: int) -> None:
        rng = np.random.default_rng(seed * 10_007 + slot)
        draws = rng.integers(0, len(dcs), size=requests_per_client)
        barrier.wait()
        for draw in draws:
            started = time.perf_counter()
            try:
                result = service.submit(
                    snapshot, op, dcs[int(draw)], use_cache=use_cache,
                    timeout_s=timeout_s, **params
                ).result()
            except LoadShedError:
                errors[slot] += 1
                shed[slot] += 1
            except DeadlineExceededError:
                errors[slot] += 1
                expired[slot] += 1
            except Exception:
                errors[slot] += 1
            else:
                if result.meta.get("cache_hit"):
                    cache_hits[slot] += 1
                latencies[slot].append((time.perf_counter() - started) * 1e3)
                trace_id = result.meta.get("trace_id")
                if trace_id and trace_sample > 0 and len(sampled_ids) < trace_sample:
                    with sample_lock:
                        if len(sampled_ids) < trace_sample:
                            sampled_ids.append(trace_id)

    threads = [
        threading.Thread(target=client, args=(slot,), name=f"loadgen-{slot}")
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    flat = np.asarray([value for bucket in latencies for value in bucket])
    succeeded = int(flat.size)
    failed = int(sum(errors))
    pool_delta = _pool_delta(pool_before, _pool_stats(service))
    trace_samples: List[Dict[str, Any]] = []
    for trace_id in sampled_ids:
        # Resolved after the run: by now every sampled request has finished,
        # so its root span is in the ring buffer (unless later traffic
        # already evicted it — then the sample is silently dropped).
        tree = obs_trace.get_trace(trace_id)
        if tree is not None:
            trace_samples.append({"trace_id": trace_id, "phase_ms": phase_totals(tree)})
    return LoadReport(
        dispatch=service.dispatch,
        op=op,
        clients=clients,
        requests=succeeded + failed,
        errors=failed,
        shed=int(sum(shed)),
        expired=int(sum(expired)),
        elapsed_seconds=float(elapsed),
        throughput_rps=float(succeeded / elapsed) if elapsed > 0 else float("inf"),
        latency_ms=_percentiles(flat) if succeeded else {
            "mean": float("nan"), "p50": float("nan"), "p95": float("nan"),
            "p99": float("nan"), "max": float("nan"),
        },
        cache_hits=int(sum(cache_hits)),
        coalescer=service.coalescer.stats_snapshot(),
        trace_samples=trace_samples,
        failovers=pool_delta.get("failovers", 0),
        pool=pool_delta,
    )


@dataclass
class OpenLoopReport:
    """Aggregate of one open-loop run at a fixed offered rate.

    ``achieved_rps`` is the arrival rate actually generated (a starved
    generator box can undershoot the schedule); ``goodput_rps`` counts
    successful completions only.  ``latency_ms`` is measured from each
    request's *scheduled* arrival time, so queueing delay under overload is
    included — the honest open-loop number.  ``unresolved`` requests (still
    pending when the settle timeout expired) are counted in ``errors``.
    """

    op: str
    offered_rps: float
    duration_s: float
    requests: int
    completed: int
    errors: int
    shed: int
    expired: int
    unresolved: int
    elapsed_seconds: float
    achieved_rps: float
    goodput_rps: float
    latency_ms: Dict[str, float]
    failovers: int = 0
    pool: Dict[str, int] = field(default_factory=dict)
    coalescer: Dict[str, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def as_record(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "shed": self.shed,
            "expired": self.expired,
            "unresolved": self.unresolved,
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
            "elapsed_seconds": self.elapsed_seconds,
            "achieved_rps": self.achieved_rps,
            "goodput_rps": self.goodput_rps,
            "latency_ms": dict(self.latency_ms),
            "failovers": self.failovers,
            "pool": dict(self.pool),
            "coalescer": dict(self.coalescer),
        }


def run_open_loop(
    service: ClusteringService,
    snapshot: str,
    dcs: Sequence[float],
    offered_rps: float,
    duration_s: float = 2.0,
    op: str = "cluster",
    use_cache: bool = False,
    cluster_params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    timeout_s: Optional[float] = None,
    settle_timeout_s: float = 30.0,
) -> OpenLoopReport:
    """Offer Poisson arrivals at ``offered_rps`` for ``duration_s`` seconds.

    One scheduler thread (this one) sleeps between seeded exponential
    inter-arrival gaps and submits without waiting for completions —
    futures resolve via callbacks.  If the scheduler falls behind (service
    backpressure cannot slow an open loop, but a starved box can slow the
    generator), requests are issued immediately and the achieved rate is
    reported.  After the offered window, outstanding futures get
    ``settle_timeout_s`` to flush; stragglers count as errors.
    """
    if offered_rps <= 0:
        raise ValueError(f"offered_rps must be > 0, got {offered_rps}")
    dcs = [float(dc) for dc in dcs]
    if not dcs:
        raise ValueError("dcs must be non-empty")
    params = dict(cluster_params or {})
    rng = np.random.default_rng(seed * 10_007 + 1)
    cond = threading.Condition()
    latencies: List[float] = []
    counts = {"errors": 0, "shed": 0, "expired": 0}
    pending = [0]
    pool_before = _pool_stats(service)

    start = time.perf_counter()
    horizon = start + float(duration_s)
    next_at = start
    issued = 0
    while next_at < horizon:
        now = time.perf_counter()
        if next_at > now:
            time.sleep(next_at - now)
        scheduled = next_at
        dc = dcs[int(rng.integers(0, len(dcs)))]
        issued += 1

        def _done(future, scheduled=scheduled):
            error = future.exception()
            with cond:
                if error is None:
                    latencies.append((time.perf_counter() - scheduled) * 1e3)
                else:
                    counts["errors"] += 1
                    if isinstance(error, LoadShedError):
                        counts["shed"] += 1
                    elif isinstance(error, DeadlineExceededError):
                        counts["expired"] += 1
                pending[0] -= 1
                cond.notify_all()

        try:
            future = service.submit(
                snapshot, op, dc, use_cache=use_cache, timeout_s=timeout_s, **params
            )
        except LoadShedError:
            with cond:
                counts["errors"] += 1
                counts["shed"] += 1
        except DeadlineExceededError:
            with cond:
                counts["errors"] += 1
                counts["expired"] += 1
        except Exception:
            with cond:
                counts["errors"] += 1
        else:
            with cond:
                pending[0] += 1
            future.add_done_callback(_done)
        next_at += float(rng.exponential(1.0 / float(offered_rps)))

    settle_deadline = time.perf_counter() + max(0.0, float(settle_timeout_s))
    with cond:
        while pending[0] > 0:
            remaining = settle_deadline - time.perf_counter()
            if remaining <= 0:
                break
            cond.wait(remaining)
        unresolved = pending[0]
        flat = np.asarray(latencies, dtype=np.float64)
        errors = counts["errors"] + unresolved
        shed, expired = counts["shed"], counts["expired"]
    elapsed = time.perf_counter() - start
    pool_delta = _pool_delta(pool_before, _pool_stats(service))
    completed = int(flat.size)
    return OpenLoopReport(
        op=op,
        offered_rps=float(offered_rps),
        duration_s=float(duration_s),
        requests=issued,
        completed=completed,
        errors=errors,
        shed=shed,
        expired=expired,
        unresolved=unresolved,
        elapsed_seconds=float(elapsed),
        achieved_rps=float(issued / elapsed) if elapsed > 0 else float("inf"),
        goodput_rps=float(completed / elapsed) if elapsed > 0 else float("inf"),
        latency_ms=_percentiles(flat) if completed else {
            "mean": float("nan"), "p50": float("nan"), "p95": float("nan"),
            "p99": float("nan"), "max": float("nan"),
        },
        failovers=pool_delta.get("failovers", 0),
        pool=pool_delta,
        coalescer=service.coalescer.stats_snapshot(),
    )


def sweep_open_loop(
    service: ClusteringService,
    snapshot: str,
    dcs: Sequence[float],
    offered_rps: Sequence[float],
    duration_s: float = 2.0,
    **kwargs: Any,
) -> Dict[str, Any]:
    """Sweep offered rates (ascending) and report the latency-vs-load curve.

    Returns ``{"mode": "open-loop", "sweep": [per-rate records…],
    "saturation_rps": max goodput observed}`` — the saturation number is
    the open-loop throughput ceiling: offering more than it only grows the
    queue (and the measured-from-schedule latencies show exactly that).
    """
    rates = sorted(float(rate) for rate in offered_rps)
    if not rates:
        raise ValueError("offered_rps must be non-empty")
    sweep = [
        run_open_loop(
            service, snapshot, dcs, rate, duration_s=duration_s, **kwargs
        ).as_record()
        for rate in rates
    ]
    return {
        "mode": "open-loop",
        "offered_rps": rates,
        "sweep": sweep,
        "saturation_rps": float(max(record["goodput_rps"] for record in sweep)),
    }
