"""Closed-loop load generator for the serving layer.

Shared by ``benchmarks/bench_serving_load.py`` and the harness ``serving``
experiment so both report from one measurement path.  *Closed-loop* means
each simulated client issues its next request only after the previous one
returned — throughput and latency respond to the service, never to an
open-loop arrival schedule outrunning it.

Each client draws its cut-offs from the same ``dcs`` grid with a
deterministic per-client RNG, so runs are reproducible and the dispatch
modes are compared on identical request sequences.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.obs import trace as obs_trace
from repro.obs.export import phase_totals
from repro.serving.errors import DeadlineExceededError, LoadShedError
from repro.serving.service import ClusteringService

__all__ = ["LoadReport", "run_load"]


@dataclass
class LoadReport:
    """Aggregate of one closed-loop run (latencies in milliseconds).

    ``requests`` counts every request issued; ``errors`` the failed subset,
    of which ``shed`` (admission refused) and ``expired`` (per-request
    deadline passed) are the typed overload components — the rates make
    them comparable across runs of different sizes.  ``throughput_rps``
    and ``latency_ms`` cover **successful** requests only — a run where
    half the requests error instantly must not report doubled throughput
    and flattering percentiles.
    """

    dispatch: str
    op: str
    clients: int
    requests: int
    errors: int
    shed: int
    expired: int
    elapsed_seconds: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    cache_hits: int
    coalescer: Dict[str, int] = field(default_factory=dict)
    #: Up to ``trace_sample`` sampled request traces, each
    #: ``{"trace_id": …, "phase_ms": {span name: total ms}}`` — empty when
    #: sampling was off or tracing disabled.
    trace_samples: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def as_record(self) -> Dict[str, Any]:
        return {
            "dispatch": self.dispatch,
            "op": self.op,
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "expired": self.expired,
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "cache_hits": self.cache_hits,
            "coalescer": dict(self.coalescer),
            "trace_samples": list(self.trace_samples),
        }


def _percentiles(latencies_ms: np.ndarray) -> Dict[str, float]:
    p50, p95, p99 = np.percentile(latencies_ms, (50, 95, 99))
    return {
        "mean": float(latencies_ms.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "max": float(latencies_ms.max()),
    }


def run_load(
    service: ClusteringService,
    snapshot: str,
    dcs: Sequence[float],
    clients: int = 8,
    requests_per_client: int = 24,
    op: str = "cluster",
    use_cache: bool = False,
    cluster_params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    timeout_s: Optional[float] = None,
    trace_sample: int = 0,
) -> LoadReport:
    """Drive ``clients`` closed-loop threads against one snapshot.

    ``use_cache=False`` (the default) measures *dispatch*: every request
    reaches the engine, which is the serial-vs-coalesced comparison the
    benchmark is after.  ``use_cache=True`` measures the full service
    including memoisation.  ``timeout_s`` rides every request as its
    per-request deadline; shed and expired requests are counted separately
    from other errors in the report.

    ``trace_sample > 0`` keeps the trace ids of the first N successful
    requests per the whole run and resolves their span trees into per-phase
    millisecond totals after the run (requires :mod:`repro.obs` tracing to
    be enabled, otherwise ``trace_samples`` stays empty).
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    dcs = [float(dc) for dc in dcs]
    if not dcs:
        raise ValueError("dcs must be non-empty")
    params = dict(cluster_params or {})
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    shed = [0] * clients
    expired = [0] * clients
    cache_hits = [0] * clients
    sampled_ids: List[str] = []
    sample_lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(slot: int) -> None:
        rng = np.random.default_rng(seed * 10_007 + slot)
        draws = rng.integers(0, len(dcs), size=requests_per_client)
        barrier.wait()
        for draw in draws:
            started = time.perf_counter()
            try:
                result = service.submit(
                    snapshot, op, dcs[int(draw)], use_cache=use_cache,
                    timeout_s=timeout_s, **params
                ).result()
            except LoadShedError:
                errors[slot] += 1
                shed[slot] += 1
            except DeadlineExceededError:
                errors[slot] += 1
                expired[slot] += 1
            except Exception:
                errors[slot] += 1
            else:
                if result.meta.get("cache_hit"):
                    cache_hits[slot] += 1
                latencies[slot].append((time.perf_counter() - started) * 1e3)
                trace_id = result.meta.get("trace_id")
                if trace_id and trace_sample > 0 and len(sampled_ids) < trace_sample:
                    with sample_lock:
                        if len(sampled_ids) < trace_sample:
                            sampled_ids.append(trace_id)

    threads = [
        threading.Thread(target=client, args=(slot,), name=f"loadgen-{slot}")
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    flat = np.asarray([value for bucket in latencies for value in bucket])
    succeeded = int(flat.size)
    failed = int(sum(errors))
    trace_samples: List[Dict[str, Any]] = []
    for trace_id in sampled_ids:
        # Resolved after the run: by now every sampled request has finished,
        # so its root span is in the ring buffer (unless later traffic
        # already evicted it — then the sample is silently dropped).
        tree = obs_trace.get_trace(trace_id)
        if tree is not None:
            trace_samples.append({"trace_id": trace_id, "phase_ms": phase_totals(tree)})
    return LoadReport(
        dispatch=service.dispatch,
        op=op,
        clients=clients,
        requests=succeeded + failed,
        errors=failed,
        shed=int(sum(shed)),
        expired=int(sum(expired)),
        elapsed_seconds=float(elapsed),
        throughput_rps=float(succeeded / elapsed) if elapsed > 0 else float("inf"),
        latency_ms=_percentiles(flat) if succeeded else {
            "mean": float("nan"), "p50": float("nan"), "p95": float("nan"),
            "p99": float("nan"), "max": float("nan"),
        },
        cache_hits=int(sum(cache_hits)),
        coalescer=service.coalescer.stats_snapshot(),
        trace_samples=trace_samples,
    )
