"""The clustering service: snapshots + coalescing dispatch + result cache.

:class:`ClusteringService` is the one object a front-end (HTTP, CLI, a
benchmark harness) talks to.  Its contract, property-tested in
``tests/properties/test_prop_serving.py``:

* **Exactness** — every response (cache hit, coalesced batch, serial
  dispatch alike) is bit-identical to a direct ``index.quantities(dc)`` /
  ``index.cluster(dc, ...)`` call on the snapshot's data.
* **Point-in-time consistency** — a request is answered entirely from the
  snapshot it resolved at admission; a hot swap mid-flight never mixes old
  and new data in one response.
* **No stale serving** — after a snapshot swap (refit, streaming rebuild),
  no response derived from the replaced data is served to *new* requests:
  they resolve the new snapshot, whose fingerprint keys different cache
  entries; the old fingerprint's entries are purged on swap, and in-flight
  computations for the old snapshot are barred from re-inserting them
  (the ``guard`` handshake with :meth:`ResultCache.put`).
* **Fail fast, never hang** — a request either completes (bit-identical)
  or its future fails promptly with a typed
  :class:`~repro.serving.errors.ServingError`: shed at admission when the
  dispatch queue is full (``max_queue``), expired when its per-request
  deadline (``timeout_s``) passes before dispatch, failed fast when the
  dispatcher crashes (and is restarted) underneath it.  Cache hits bypass
  the queue entirely, so exact cached results keep flowing even while the
  service sheds; a failed stream publish rolls back its ordering token and
  keeps the last good snapshot serving.  :meth:`health` summarises all of
  it as ``healthy`` / ``degraded`` / ``shedding``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.core.quantities import TieBreak
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.serving.cache import ResultCache, result_key
from repro.serving.coalescer import OPS, RequestCoalescer, ServeRequest
from repro.serving.errors import (
    DeadlineExceededError,
    LoadShedError,
    ServingError,
)
from repro.serving.snapshots import Snapshot, SnapshotStore

__all__ = ["ServeResult", "ClusteringService"]

#: Dispatch policies: "serial" = one engine call per request (max_batch=1),
#: "coalesce" = batch concurrent requests through the multi-dc kernels.
DISPATCH_MODES = ("serial", "coalesce")


@dataclass
class ServeResult:
    """A served value plus how it was produced.

    ``value`` is a :class:`~repro.core.quantities.DPCQuantities` (op
    ``"quantities"``) or :class:`~repro.core.quantities.DPCResult` (op
    ``"cluster"``); ``meta`` holds ``fingerprint``, ``snapshot_version``,
    ``cache_hit``, ``batch_size``/``batch_dcs``/``coalesced`` (engine
    dispatches only) and ``elapsed_ms``.
    """

    value: Any
    meta: Dict[str, Any]


class ClusteringService:
    """Keeps fitted indexes hot and serves exact DPC queries against them."""

    def __init__(
        self,
        store: Optional[SnapshotStore] = None,
        cache: Optional[ResultCache] = None,
        coalescer: Optional[RequestCoalescer] = None,
        dispatch: str = "coalesce",
        cache_entries: int = 256,
        cache_ttl: Optional[float] = None,
        max_batch: int = 64,
        linger_ms: float = 2.0,
        max_queue: Optional[int] = None,
        default_timeout_s: Optional[float] = None,
        workers: int = 0,
        heartbeat_s: float = 0.25,
        batch_timeout_s: float = 30.0,
    ) -> None:
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}")
        if default_timeout_s is not None and not default_timeout_s > 0:
            raise ValueError(
                f"default_timeout_s must be positive, got {default_timeout_s}"
            )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.dispatch = dispatch
        self.default_timeout_s = default_timeout_s
        self.store = store if store is not None else SnapshotStore()
        self.cache = cache if cache is not None else ResultCache(cache_entries, cache_ttl)
        # The replicated tier: N supervised worker processes sharing
        # snapshot images over shared memory.  ``workers=0`` (default)
        # keeps the single-process behaviour; the pool degrades to it
        # anyway whenever it cannot serve, so exactness never depends on
        # worker health.
        self.pool = None
        if workers > 0:
            from repro.serving.workers import WorkerPool

            self.pool = WorkerPool(
                self.store,
                workers=workers,
                heartbeat_s=heartbeat_s,
                batch_timeout_s=batch_timeout_s,
            )
        executor = self.pool.submit if self.pool is not None else None
        if coalescer is not None:
            self.coalescer = coalescer
            if executor is not None and self.coalescer.executor is None:
                self.coalescer.executor = executor
        elif dispatch == "serial":
            self.coalescer = RequestCoalescer(
                max_batch=1, linger_ms=0.0, max_queue=max_queue, executor=executor
            )
        else:
            self.coalescer = RequestCoalescer(
                max_batch=max_batch,
                linger_ms=linger_ms,
                max_queue=max_queue,
                executor=executor,
            )
        self._draining = False
        self._unsubscribe = self.store.subscribe(self._on_swap)
        self._streams: Dict[str, Any] = {}
        # Last publish failure per snapshot name (streams swallow callback
        # publish errors after rolling back — record them for health()).
        self._publish_errors: Dict[str, str] = {}
        self._publish_errors_lock = threading.Lock()

    # -- snapshot lifecycle ---------------------------------------------------

    def fit_snapshot(
        self, name: str, points: np.ndarray, index: str = "ch", **index_params: Any
    ) -> Snapshot:
        """Fit an index over ``points`` in-process and publish it."""
        return self.store.fit(name, points, index=index, **index_params)

    def load_snapshot(self, name: str, path: str) -> Snapshot:
        """Load a persisted index from ``path`` and publish it."""
        return self.store.load(name, path)

    def drop_snapshot(self, name: str) -> None:
        """Remove a snapshot; a stream attached under ``name`` is detached
        first, so a later rebuild cannot resurrect the dropped name."""
        self.detach_stream(name)
        self.store.drop(name)

    def attach_stream(self, name: str, stream: Any) -> Snapshot:
        """Serve a :class:`~repro.extras.streaming.StreamingDPC` under ``name``.

        Every stream event atomically publishes a fresh frozen snapshot
        (and, through the swap subscription, invalidates the replaced
        fingerprint's cache entries): delta ingests arrive through
        :meth:`SnapshotStore.publish_delta` carrying the new batch, while
        the initial fit and every compaction publish a full image through
        :meth:`SnapshotStore.publish`.  The served snapshot therefore
        always reflects the *whole* stream — the delta segment answers
        exactly, no staleness window.

        Returns the initially published snapshot; the stream must hold at
        least one point.  Re-attaching a name replaces the previous
        stream; :meth:`drop_snapshot` and :meth:`close` detach.
        """
        if stream.index is None:
            raise ValueError("cannot attach an empty stream; add points first")
        self.detach_stream(name)  # a replaced stream must stop publishing

        # Monotonic, detachable publisher.  The initial publish below and
        # the stream callbacks (which fire on the producer's thread) race;
        # ordering by (points, rebuilds) of the published index guarantees
        # an older snapshot can never overwrite a newer one: every add
        # grows the point count, and the compaction a cluster() forces at
        # constant n bumps the rebuild counter (read AFTER the event, so a
        # later event can only make the token newer than the index it
        # rides with, never older).  The same lock gates detachment: once
        # detach flips `active`, no already-captured callback can
        # republish a name after drop_snapshot removed it.
        guard = threading.Lock()
        latest = (-1, -1)
        active = True

        def publish(
            index: Any,
            token,
            new_points: Optional[np.ndarray] = None,
            reraise: bool = False,
        ) -> Optional[Snapshot]:
            nonlocal latest
            with guard:
                if not active or token <= latest:
                    return None
                previous_token = latest
                latest = token
                try:
                    if new_points is not None:
                        snapshot = self.store.publish_delta(name, index, new_points)
                    else:
                        snapshot = self.store.publish(name, index)
                except BaseException as exc:
                    # Failed before the swap: the last good snapshot still
                    # serves.  Roll the ordering token back so a *later*
                    # stream event (which republishes the whole state) is
                    # not mistaken for stale and retries the publish.
                    latest = previous_token
                    self._record_publish_error(name, exc)
                    if reraise:
                        raise
                    return None
                self._clear_publish_error(name)
                return snapshot

        unsubscribes = [
            stream.subscribe_rebuild(
                lambda rebuilt: publish(rebuilt, (rebuilt.n, stream.rebuild_count))
            )
        ]
        if hasattr(stream, "subscribe_ingest"):
            unsubscribes.append(
                stream.subscribe_ingest(
                    lambda snap, pts: publish(
                        snap, (snap.n, stream.rebuild_count), pts
                    )
                )
            )

        def detach() -> None:
            nonlocal active
            with guard:
                active = False
            for unsubscribe in unsubscribes:
                unsubscribe()

        self._streams[name] = detach
        # The initial publish re-raises: attach is a synchronous API call
        # and the caller must learn the snapshot never went live.  Callback
        # publishes (producer thread, no caller to tell) record instead.
        try:
            snapshot = publish(
                stream.index, (stream.n, stream.rebuild_count), reraise=True
            )
        except BaseException:
            self.detach_stream(name)  # failed attach must not keep publishing
            raise
        return snapshot if snapshot is not None else self.store.get(name)

    def detach_stream(self, name: str) -> None:
        """Stop an attached stream from publishing under ``name`` (no-op if
        none is attached); the current snapshot stays served."""
        unsubscribe = self._streams.pop(name, None)
        if unsubscribe is not None:
            unsubscribe()

    def _record_publish_error(self, name: str, exc: BaseException) -> None:
        with self._publish_errors_lock:
            self._publish_errors[name] = f"{type(exc).__name__}: {exc}"

    def _clear_publish_error(self, name: str) -> None:
        with self._publish_errors_lock:
            self._publish_errors.pop(name, None)

    def _on_swap(self, name: str, new: Optional[Snapshot], old: Optional[Snapshot]) -> None:
        if old is None:
            return
        # Same fingerprint ⇒ same answers ⇒ the warm entries stay valid;
        # likewise when another live snapshot (any name) still serves the
        # replaced content — keys are content-addressed, so those entries
        # remain exactly right for it.
        if new is not None and new.fingerprint == old.fingerprint:
            return
        if self.store.holds_fingerprint(old.fingerprint):
            return
        self.cache.invalidate_fingerprint(old.fingerprint)

    # -- request path ---------------------------------------------------------

    def submit(
        self,
        name: str,
        op: str,
        dc: float,
        tie_break: "str | TieBreak" = TieBreak.ID,
        n_centers: Optional[int] = None,
        rho_min: Optional[float] = None,
        delta_min: Optional[float] = None,
        halo: bool = False,
        use_cache: bool = True,
        timeout_s: Optional[float] = None,
    ) -> "Future[ServeResult]":
        """Admit one request; returns a future resolving to a :class:`ServeResult`.

        The snapshot is resolved *now* — this request is answered from it
        even if a swap lands before the engine runs.

        The returned future never hangs: it resolves with the result or
        fails with a typed error — a
        :class:`~repro.serving.errors.LoadShedError` when admission is
        refused (queue full), a
        :class:`~repro.serving.errors.DeadlineExceededError` when
        ``timeout_s`` (default :attr:`default_timeout_s`) expires before
        dispatch, a :class:`~repro.serving.errors.DispatcherCrashError`
        when the dispatcher died mid-batch.  Cache hits resolve before
        admission, so they are served even while shedding.
        """
        if op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {op!r}")
        snapshot = self.store.get(name)
        tie_break = TieBreak.coerce(tie_break)
        started = time.perf_counter()
        key = result_key(
            snapshot.fingerprint, op, dc, tie_break.value,
            n_centers=n_centers, rho_min=rho_min, delta_min=delta_min, halo=halo,
        )
        outer: "Future[ServeResult]" = Future()
        root_span = obs_trace.begin_span(
            "serve.request", snapshot=name, op=op, dc=float(dc)
        )
        base_meta = {
            "snapshot": name,
            "fingerprint": snapshot.fingerprint,
            "snapshot_version": snapshot.version,
            "op": op,
        }
        if root_span.trace_id is not None:
            base_meta["trace_id"] = root_span.trace_id

        def finalize(outcome: str) -> None:
            """Close the request's root span and record request metrics."""
            root_span.set("outcome", outcome)
            root_span.finish()
            if obs_runtime._ENABLED:
                obs_metrics.counter(
                    "repro_serving_requests_total",
                    "Requests served, by operation and outcome",
                    ("op", "outcome"),
                ).labels(op, outcome).inc()
                obs_metrics.histogram(
                    "repro_serving_request_seconds",
                    "End-to-end request latency (admission to resolution)",
                ).observe(time.perf_counter() - started)

        def outcome_of(exc: BaseException) -> str:
            if isinstance(exc, LoadShedError):
                return "shed"
            if isinstance(exc, DeadlineExceededError):
                return "expired"
            return "error"

        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                finalize("cache_hit")
                outer.set_result(
                    ServeResult(
                        cached,
                        {
                            **base_meta,
                            "cache_hit": True,
                            "elapsed_ms": (time.perf_counter() - started) * 1e3,
                        },
                    )
                )
                return outer
        request = ServeRequest(
            snapshot=snapshot,
            op=op,
            dc=dc,
            tie_break=tie_break,
            n_centers=n_centers,
            rho_min=rho_min,
            delta_min=delta_min,
            halo=halo,
            timeout_s=timeout_s if timeout_s is not None else self.default_timeout_s,
        )
        request.span = root_span if root_span.trace_id is not None else None

        def finish(inner: Future) -> None:
            exc = inner.exception()
            if exc is not None:
                finalize(outcome_of(exc))
                outer.set_exception(exc)
                return
            value, batch_meta = inner.result()
            if use_cache:
                # guard: refuse the insert if the snapshot was swapped while
                # we computed — the invalidation already happened and must win.
                self.cache.put(key, value, guard=lambda: self.store.is_current(snapshot))
            finalize("ok")
            outer.set_result(
                ServeResult(
                    value,
                    {
                        **base_meta,
                        **batch_meta,
                        "cache_hit": False,
                        "elapsed_ms": (time.perf_counter() - started) * 1e3,
                    },
                )
            )

        try:
            self.coalescer.submit(request).add_done_callback(finish)
        except ServingError as exc:
            # Admission refused (load shed).  Surface it through the future
            # so every caller path — blocking helpers, HTTP front-end, load
            # generator — observes one uniform contract.
            finalize(outcome_of(exc))
            outer.set_exception(exc)
        return outer

    def quantities(self, name: str, dc: float, **kwargs: Any) -> ServeResult:
        """Blocking ``quantities`` request (see :meth:`submit`)."""
        return self.submit(name, "quantities", dc, **kwargs).result()

    def cluster(self, name: str, dc: float, **kwargs: Any) -> ServeResult:
        """Blocking ``cluster`` request (see :meth:`submit`)."""
        return self.submit(name, "cluster", dc, **kwargs).result()

    # -- observability / lifecycle --------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A point-in-time copy throughout — callers may mutate or serialise
        it freely while the dispatcher keeps counting."""
        return {
            "dispatch": self.dispatch,
            "snapshots": self.store.describe(),
            "cache": self.cache.describe(),
            "coalescer": self.coalescer.stats_snapshot(),
            "health": self.health(),
        }

    def health(self) -> Dict[str, Any]:
        """Service health: ``healthy`` / ``degraded`` / ``shedding`` /
        ``draining``.

        ``draining`` — a graceful shutdown is flushing in-flight requests;
        new admissions are refused.  ``shedding`` — admission control is
        refusing new requests right now (cache hits still serve).
        ``degraded`` — everything is being served exactly, but not on the
        happy path: an execution backend fell down its degradation ladder
        (process → threads → serial), the worker pool fell back to
        in-process dispatch (or has a worker down), or a stream's snapshot
        publish failed and the last good snapshot is serving.  Per-snapshot
        and per-worker detail rides along for ``healthz``.
        """
        with self._publish_errors_lock:
            publish_errors = dict(self._publish_errors)
        snapshots: Dict[str, Any] = {}
        any_degraded = False
        for name in self.store.names():
            try:
                snapshot = self.store.get(name)
            except KeyError:  # dropped while we iterate
                continue
            execution = snapshot.index.execution_health()
            publish_error = publish_errors.get(name)
            degraded = bool(publish_error) or bool(execution and execution["degraded"])
            any_degraded = any_degraded or degraded
            snapshots[name] = {
                "state": "degraded" if degraded else "healthy",
                "version": snapshot.version,
                "n": snapshot.n,
                "execution": execution,
                "publish_error": publish_error,
            }
        shedding = self.coalescer.shedding
        coalescer_stats = self.coalescer.stats_snapshot()
        pool_health = self.pool.health() if self.pool is not None else None
        if pool_health is not None and pool_health["state"] == "degraded":
            any_degraded = True
        draining = self._draining or (
            pool_health is not None and pool_health["state"] == "draining"
        )
        health = {
            "state": (
                "draining"
                if draining
                else "shedding"
                if shedding
                else "degraded"
                if any_degraded
                else "healthy"
            ),
            "shedding": shedding,
            "draining": draining,
            "queue_depth": self.coalescer.queue_depth(),
            "dispatcher_restarts": coalescer_stats["dispatcher_restarts"],
            "shed": coalescer_stats["shed"],
            "expired": coalescer_stats["expired"],
            "subscriber_errors": self.store.subscriber_errors,
            "snapshots": snapshots,
        }
        if pool_health is not None:
            health["workers"] = pool_health
        return health

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Gracefully wind the service down: refuse new requests, flush
        everything in flight, stop the worker pool, detach streams.

        Returns ``True`` for a clean drain (all in-flight requests resolved
        within ``timeout_s``); ``False`` when the deadline forced shutdown.
        Idempotent with :meth:`close` — drain ends in a closed service.
        """
        self._draining = True
        deadline = time.perf_counter() + max(0.0, float(timeout_s))
        clean = self.coalescer.drain(timeout_s=timeout_s)
        if self.pool is not None:
            remaining = max(0.0, deadline - time.perf_counter())
            clean = self.pool.drain(timeout_s=remaining) and clean
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                "repro_serving_drains_total",
                "Graceful drains completed, by outcome",
                ("outcome",),
            ).labels("clean" if clean else "forced").inc()
        self.close()
        return clean

    def close(self) -> None:
        """Stop the dispatcher and the worker pool, detach streams and
        store hooks (idempotent)."""
        self.coalescer.close()
        if self.pool is not None:
            self.pool.close()
        for name in list(self._streams):
            self.detach_stream(name)
        self._unsubscribe()

    def __enter__(self) -> "ClusteringService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
