"""LRU + TTL cache for exact served results, keyed on snapshot fingerprints.

Because every index is *exact* and deterministic, a result computed once for
``(fingerprint, dc, density-order params, selection params)`` is the answer
forever — the only thing that can invalidate it is the snapshot being
replaced.  So the cache policy is simple: bounded LRU for capacity, optional
TTL for operators who want bounded staleness even against their own bugs,
and **mandatory** fingerprint invalidation wired to
:meth:`repro.serving.snapshots.SnapshotStore.subscribe`.

The subtle part is the *swap race*: a batch computed against snapshot v1 may
still be in flight when v2 is published and v1's entries are purged.  If
that batch inserted its results afterwards, stale data would outlive the
invalidation.  :meth:`put` therefore takes a ``guard`` callable that is
evaluated **under the cache lock**, after the insert would otherwise happen;
the serving layer passes ``lambda: store.is_current(snapshot)``, closing the
window (unit-tested in ``tests/unit/test_serving_snapshots.py``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime

__all__ = ["CacheStats", "ResultCache", "result_key"]


def _cache_event(event: str, count: int = 1) -> None:
    if obs_runtime._ENABLED:
        obs_metrics.counter(
            "repro_cache_ops_total",
            "Result-cache events (hit/miss/eviction/expiration/invalidation/rejected_put)",
            ("event",),
        ).labels(event).inc(count)


def result_key(
    fingerprint: str,
    op: str,
    dc: float,
    tie_break: str,
    n_centers: Optional[int] = None,
    rho_min: Optional[float] = None,
    delta_min: Optional[float] = None,
    halo: bool = False,
) -> Tuple:
    """The canonical cache key for a served request.

    The fingerprint pins the data + index config; ``op`` separates
    ``quantities`` from ``cluster``; the remaining fields are exactly the
    arguments that can change the answer.  ``dc`` is coerced to float so
    ``1`` and ``1.0`` share an entry (they produce bit-identical results),
    and the selection/halo params are normalised away for ``quantities``
    (they don't affect the answer, so stray values must not fragment the
    cache into duplicate entries).
    """
    if op == "quantities":
        n_centers = rho_min = delta_min = None
        halo = False
    return (
        fingerprint,
        op,
        float(dc),
        str(tie_break),
        None if n_centers is None else int(n_centers),
        None if rho_min is None else float(rho_min),
        None if delta_min is None else float(delta_min),
        bool(halo),
    )


class CacheStats:
    """Monotonic counters (read without the lock; written under it)."""

    __slots__ = ("hits", "misses", "evictions", "expirations", "invalidations", "rejected_puts")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.rejected_puts = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class ResultCache:
    """Thread-safe LRU+TTL store mapping :func:`result_key` → result object.

    ``max_entries <= 0`` disables caching entirely (every get misses, every
    put is dropped) — handy for benchmarks that must measure dispatch, not
    memoisation.  ``ttl_seconds=None`` means entries never age out.
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive or None, got {ttl_seconds}")
        self.max_entries = int(max_entries)
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, freshened to most-recently-used; None on miss.

        Expired entries are dropped on touch (and only count as
        ``expirations``, not ``evictions``).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _cache_event("miss")
                return None
            inserted_at, value = entry
            if self.ttl_seconds is not None and self._clock() - inserted_at > self.ttl_seconds:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                _cache_event("expiration")
                _cache_event("miss")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _cache_event("hit")
            return value

    def put(self, key: Hashable, value: Any, guard: Optional[Callable[[], bool]] = None) -> bool:
        """Insert ``value``; returns False if rejected.

        ``guard`` is evaluated under the cache lock immediately before the
        insert; a False return (e.g. "the snapshot this was computed for is
        no longer live") drops the value, keeping swap-invalidation airtight
        against slow in-flight computations.
        """
        if self.max_entries <= 0:
            return False
        with self._lock:
            if guard is not None and not guard():
                self.stats.rejected_puts += 1
                _cache_event("rejected_put")
                return False
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                _cache_event("eviction")
            return True

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry keyed on ``fingerprint``; returns the count."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == fingerprint]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            if doomed:
                _cache_event("invalidation", len(doomed))
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            size = len(self._entries)
        return {
            "entries": size,
            "max_entries": self.max_entries,
            "ttl_seconds": self.ttl_seconds,
            **self.stats.as_dict(),
        }
