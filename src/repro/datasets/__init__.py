"""Datasets: simulated stand-ins for the paper's six evaluation datasets.

The paper evaluates on S1, Query, Birch, Range (synthetic / UCI) and
Brightkite, Gowalla (SNAP check-ins).  None of the originals ship with this
repository (offline build), so each loader synthesises a distribution with
the same *structure* and — importantly — the same coordinate scale, which
keeps every ``dc`` / ``w`` / ``τ`` grid from the paper's figures meaningful.
See DESIGN.md §4 for the substitution rationale.
"""

from repro.datasets.base import Dataset, ExperimentParams, PROFILES, profile_size
from repro.datasets.synthetic import (
    gaussian_blobs,
    uniform_square,
    science_toy,
    s1,
    birch,
    query_workload,
    range_workload,
)
from repro.datasets.checkins import brightkite, gowalla, simulate_checkin_stream
from repro.datasets.loaders import available_datasets, load_dataset, PAPER_DATASETS

__all__ = [
    "Dataset",
    "ExperimentParams",
    "PROFILES",
    "profile_size",
    "gaussian_blobs",
    "uniform_square",
    "science_toy",
    "s1",
    "birch",
    "query_workload",
    "range_workload",
    "brightkite",
    "gowalla",
    "simulate_checkin_stream",
    "available_datasets",
    "load_dataset",
    "PAPER_DATASETS",
]
