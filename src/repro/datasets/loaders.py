"""Name → dataset loader registry (the paper's Table 2 line-up)."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.datasets.base import Dataset
from repro.datasets.checkins import brightkite, gowalla
from repro.datasets.synthetic import birch, query_workload, range_workload, s1, science_toy

__all__ = ["PAPER_DATASETS", "available_datasets", "load_dataset"]

#: The six evaluation datasets, in the paper's non-decreasing size order.
PAPER_DATASETS: Tuple[str, ...] = (
    "s1",
    "query",
    "birch",
    "range",
    "brightkite",
    "gowalla",
)

_LOADERS: Dict[str, Callable[..., Dataset]] = {
    "s1": s1,
    "query": query_workload,
    "birch": birch,
    "range": range_workload,
    "brightkite": brightkite,
    "gowalla": gowalla,
    "science-toy": lambda n=None, profile="bench", seed=0: science_toy(),
}


def available_datasets() -> Tuple[str, ...]:
    return tuple(sorted(_LOADERS))


def load_dataset(
    name: str,
    n: Optional[int] = None,
    profile: str = "bench",
    seed: int = 0,
) -> Dataset:
    """Load ``name`` at ``profile`` scale (or explicit ``n``), seeded."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    return loader(n=n, profile=profile, seed=seed)
