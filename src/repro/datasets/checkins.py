"""Simulated location-based-social-network check-ins (Brightkite, Gowalla).

The paper's two real datasets are SNAP check-in logs: coordinates cluster
heavily around cities whose popularity is extremely skewed, separated by
wide, nearly empty regions, plus diffuse travel noise.  That skew is what
stresses the indexes (deep quadtrees, effective τ-truncation), so the
simulator reproduces it directly:

* city centres drawn uniformly over a lat/lon box (Brightkite: continental
  US; Gowalla: US + Caribbean, the region of the paper's Figure 1);
* city popularity Zipf-distributed (``s ≈ 1.1``), so a few metros dominate;
* within-city spread log-normal between dense cores and sprawling suburbs;
* a uniform "travelling" background over the whole box.

Coordinates are (longitude, latitude) degrees, matching the scale of the
paper's dc values (0.001°–1.0°).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.base import Dataset, ExperimentParams, profile_size

__all__ = ["simulate_checkins", "simulate_checkin_stream", "brightkite", "gowalla"]


def simulate_checkins(
    n: int,
    n_cities: int,
    bbox: Tuple[float, float, float, float],
    zipf_s: float = 1.1,
    spread_range: Tuple[float, float] = (0.02, 0.4),
    noise_fraction: float = 0.08,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``n`` check-ins from a Zipf-weighted mixture of city Gaussians.

    Parameters
    ----------
    bbox:
        ``(lon_min, lat_min, lon_max, lat_max)``.
    zipf_s:
        Popularity exponent: weight of city ``r`` ∝ ``1 / r^s``.
    spread_range:
        Log-uniform range (degrees) of per-city standard deviation.
    noise_fraction:
        Fraction of uniform background check-ins (label ``-1``).

    Returns
    -------
    ``(points, city_labels)``.
    """
    if n_cities < 1:
        raise ValueError(f"n_cities must be >= 1, got {n_cities}")
    rng = np.random.default_rng(seed)
    lon_min, lat_min, lon_max, lat_max = bbox
    centers = np.column_stack(
        [
            rng.uniform(lon_min, lon_max, size=n_cities),
            rng.uniform(lat_min, lat_max, size=n_cities),
        ]
    )
    ranks = np.arange(1, n_cities + 1, dtype=np.float64)
    weights = 1.0 / ranks**zipf_s
    weights /= weights.sum()
    lo, hi = spread_range
    sigmas = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_cities))

    n_noise = int(round(n * noise_fraction))
    n_city = n - n_noise
    assignment = rng.choice(n_cities, size=n_city, p=weights)
    points = centers[assignment] + rng.standard_normal((n_city, 2)) * sigmas[
        assignment
    ][:, None]
    # Keep check-ins inside the box (coastal cities clip at the boundary).
    points[:, 0] = np.clip(points[:, 0], lon_min, lon_max)
    points[:, 1] = np.clip(points[:, 1], lat_min, lat_max)
    labels = assignment.astype(np.int64)

    if n_noise:
        noise = np.column_stack(
            [
                rng.uniform(lon_min, lon_max, size=n_noise),
                rng.uniform(lat_min, lat_max, size=n_noise),
            ]
        )
        points = np.concatenate([points, noise])
        labels = np.concatenate([labels, np.full(n_noise, -1, dtype=np.int64)])
    shuffle = rng.permutation(len(points))
    return points[shuffle], labels[shuffle]


def simulate_checkin_stream(
    n_batches: int,
    batch_size: int,
    n_cities: int = 30,
    bbox: Tuple[float, float, float, float] = (-125.0, 25.0, -66.0, 50.0),
    zipf_s: float = 1.1,
    spread_range: Tuple[float, float] = (0.04, 0.3),
    noise_fraction: float = 0.08,
    seed: int = 0,
) -> Tuple[list, np.ndarray]:
    """A batched check-in stream whose hotspot ranking *drifts*.

    Real LBSN streams are non-stationary: which metro dominates the
    check-in volume changes over time (festivals, seasons, product
    launches).  The simulator keeps the city geometry fixed but linearly
    interpolates the Zipf popularity vector from its initial ranking to a
    random re-ranking of the same weights — the early dominant city fades
    while another rises, which is exactly the scenario the streaming
    recency views (:meth:`repro.extras.StreamingDPC.windowed_quantities` /
    :meth:`~repro.extras.StreamingDPC.decayed_quantities`) are for.

    Returns
    -------
    ``(batches, centers)`` where ``batches`` is a list of ``(points,
    city_labels)`` arrays (labels ``-1`` for background noise) and
    ``centers`` the fixed ``(n_cities, 2)`` city centres, so callers can
    map density peaks back to cities.
    """
    if n_batches < 1:
        raise ValueError(f"n_batches must be >= 1, got {n_batches}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if n_cities < 1:
        raise ValueError(f"n_cities must be >= 1, got {n_cities}")
    rng = np.random.default_rng(seed)
    lon_min, lat_min, lon_max, lat_max = bbox
    centers = np.column_stack(
        [
            rng.uniform(lon_min, lon_max, size=n_cities),
            rng.uniform(lat_min, lat_max, size=n_cities),
        ]
    )
    lo, hi = spread_range
    sigmas = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_cities))
    ranks = np.arange(1, n_cities + 1, dtype=np.float64)
    start = 1.0 / ranks**zipf_s
    start /= start.sum()
    end = start[rng.permutation(n_cities)]

    batches = []
    n_noise = int(round(batch_size * noise_fraction))
    n_city = batch_size - n_noise
    for b in range(n_batches):
        t = b / max(n_batches - 1, 1)
        weights = (1.0 - t) * start + t * end
        weights /= weights.sum()
        assignment = rng.choice(n_cities, size=n_city, p=weights)
        points = centers[assignment] + rng.standard_normal((n_city, 2)) * sigmas[
            assignment
        ][:, None]
        points[:, 0] = np.clip(points[:, 0], lon_min, lon_max)
        points[:, 1] = np.clip(points[:, 1], lat_min, lat_max)
        labels = assignment.astype(np.int64)
        if n_noise:
            noise = np.column_stack(
                [
                    rng.uniform(lon_min, lon_max, size=n_noise),
                    rng.uniform(lat_min, lat_max, size=n_noise),
                ]
            )
            points = np.concatenate([points, noise])
            labels = np.concatenate([labels, np.full(n_noise, -1, dtype=np.int64)])
        shuffle = rng.permutation(len(points))
        batches.append((points[shuffle], labels[shuffle]))
    return batches, centers


def brightkite(n: Optional[int] = None, profile: str = "bench", seed: int = 0) -> Dataset:
    """Brightkite stand-in: continental-US check-ins, 45 Zipf-weighted cities."""
    if n is None:
        n = profile_size("brightkite", profile)
    points, labels = simulate_checkins(
        n,
        n_cities=45,
        bbox=(-125.0, 25.0, -66.0, 50.0),
        zipf_s=1.1,
        spread_range=(0.03, 0.5),
        noise_fraction=0.08,
        seed=seed + 10,
    )
    params = ExperimentParams(
        # Figure 6e x-axis.
        dc_grid=(0.001, 0.005, 0.010, 0.050, 0.100),
        dc_default=0.5,  # §5.4 fixed dc for the τ studies
        w_grid=(0.02, 0.06, 0.12, 0.18),  # Figure 7c
        w_default=0.02,  # Table 3/4 note
        tau_grid=(0.10, 0.50, 1.00),  # Figure 8c
        tau_star=1.0,  # Tables 3/4 '*'
        quality_tau_grid=(0.01, 0.05, 0.10, 0.50, 1.00),  # Fig 10c
        fig7_dc=(0.01, 0.05, 0.10),  # Figure 7c legend
    )
    return Dataset("brightkite", points, params, labels=labels, meta={"cities": 45})


def gowalla(n: Optional[int] = None, profile: str = "bench", seed: int = 0) -> Dataset:
    """Gowalla stand-in: US + Caribbean check-ins (the paper's Figure 1 area),
    90 cities with a heavier popularity tail than Brightkite."""
    if n is None:
        n = profile_size("gowalla", profile)
    points, labels = simulate_checkins(
        n,
        n_cities=90,
        bbox=(-130.0, 10.0, -55.0, 55.0),
        zipf_s=1.05,
        spread_range=(0.02, 0.6),
        noise_fraction=0.10,
        seed=seed + 20,
    )
    params = ExperimentParams(
        # Figure 6f x-axis.
        dc_grid=(0.005, 0.010, 0.030, 0.050, 1.000),
        dc_default=0.001,  # §5.4 fixed dc for the τ studies
        w_grid=(0.005, 0.015, 0.025, 0.040),  # Figure 7d
        w_default=0.015,  # Table 3/4 note
        tau_grid=(0.01, 0.03, 0.05),  # Figure 8d
        tau_star=0.05,  # Tables 3/4 '*'
        quality_tau_grid=(0.001, 0.007, 0.010, 0.030, 0.050),  # Fig 10d
        fig7_dc=(0.005, 0.010, 0.030),  # Figure 7d legend
    )
    return Dataset("gowalla", points, params, labels=labels, meta={"cities": 90})
