"""Synthetic generators: S1, Birch, Query, Range, and small toys.

Coordinate scales follow the original datasets so the paper's dc/w/τ grids
apply verbatim:

* **S1** (Fränti & Virmajoki) — 15 Gaussian clusters in ``[0, 10⁶]²``;
* **Birch** (Zhang et al.) — 10×10 grid of Gaussian clusters in ``[0, 10⁶]²``;
* **Query / Range** (UCI query-analytics workloads) — spatial query centres:
  Gaussian hot-spots plus a uniform background, in ``[0, 1]²`` and
  ``[0, 10⁵]²`` respectively.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.base import Dataset, ExperimentParams, profile_size

__all__ = [
    "gaussian_blobs",
    "uniform_square",
    "science_toy",
    "s1",
    "birch",
    "query_workload",
    "range_workload",
]


def gaussian_blobs(
    n: int,
    centers: np.ndarray,
    sigma: "float | np.ndarray",
    weights: Optional[np.ndarray] = None,
    background_fraction: float = 0.0,
    bbox: Optional[Tuple[float, float, float, float]] = None,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a Gaussian mixture (+ optional uniform background).

    Parameters
    ----------
    n:
        Total sample size (background included).
    centers:
        ``(k, d)`` component means.
    sigma:
        Scalar, per-component ``(k,)``, or per-component-per-axis ``(k, d)``
        standard deviation.
    weights:
        Component mixing weights (uniform when omitted).
    background_fraction:
        Fraction of points drawn uniformly over ``bbox`` and labelled ``-1``.
    bbox:
        ``(x0, y0, x1, y1)`` for the background (defaults to the centre
        bounding box inflated by 3σ).

    Returns
    -------
    ``(points, labels)`` — labels are component ids, ``-1`` for background.
    """
    if not (0.0 <= background_fraction < 1.0):
        raise ValueError(f"background_fraction must be in [0, 1), got {background_fraction}")
    rng = np.random.default_rng(seed)
    centers = np.asarray(centers, dtype=np.float64)
    k, d = centers.shape
    sigma = np.broadcast_to(np.asarray(sigma, dtype=np.float64), (k, d)) \
        if np.ndim(sigma) else np.full((k, d), float(sigma))
    if weights is None:
        weights = np.full(k, 1.0 / k)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights / weights.sum()

    n_background = int(round(n * background_fraction))
    n_clustered = n - n_background
    assignment = rng.choice(k, size=n_clustered, p=weights)
    points = centers[assignment] + rng.standard_normal((n_clustered, d)) * sigma[assignment]
    labels = assignment.astype(np.int64)

    if n_background:
        if bbox is None:
            lo = centers.min(axis=0) - 3.0 * sigma.max()
            hi = centers.max(axis=0) + 3.0 * sigma.max()
        else:
            lo = np.array(bbox[:d], dtype=np.float64)
            hi = np.array(bbox[d:], dtype=np.float64)
        noise = rng.uniform(lo, hi, size=(n_background, d))
        points = np.concatenate([points, noise])
        labels = np.concatenate([labels, np.full(n_background, -1, dtype=np.int64)])

    shuffle = rng.permutation(len(points))
    return points[shuffle], labels[shuffle]


def uniform_square(n: int, side: float = 1.0, seed: int = 0) -> np.ndarray:
    """``n`` points uniform over ``[0, side]²`` (worst case for DPC: no
    density structure, maximal density ties)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, side, size=(n, 2))


def science_toy() -> Dataset:
    """A 28-point layout in the spirit of Rodriguez & Laio's Figure 1.

    Two dense groups plus three isolated outliers (ids 25–27), so the
    decision graph shows exactly two high-ρ/high-δ centres and three
    low-ρ/high-δ outliers.  Deterministic — used by the decision-graph
    example and by tests.
    """
    group_a = np.array(
        [
            [1.0, 1.0], [1.2, 1.1], [0.9, 1.2], [1.1, 0.9], [1.3, 1.0],
            [1.0, 1.3], [0.8, 1.0], [1.15, 1.25], [0.95, 0.85], [1.25, 0.8],
            [0.7, 1.2], [1.4, 1.2], [1.05, 1.1],
        ]
    )
    group_b = np.array(
        [
            [3.0, 2.6], [3.2, 2.7], [2.9, 2.8], [3.1, 2.5], [3.3, 2.6],
            [3.0, 2.9], [2.8, 2.6], [3.15, 2.85], [2.95, 2.45], [3.25, 2.4],
            [3.05, 2.7], [2.85, 2.95],
        ]
    )
    outliers = np.array([[0.5, 3.4], [4.2, 0.6], [4.4, 3.6]])
    points = np.concatenate([group_a, group_b, outliers])
    labels = np.concatenate(
        [np.zeros(len(group_a)), np.ones(len(group_b)), np.full(3, -1)]
    ).astype(np.int64)
    params = ExperimentParams(
        dc_grid=(0.2, 0.3, 0.5, 1.0, 2.0),
        dc_default=0.5,
        w_grid=(0.1, 0.2, 0.5, 1.0),
        w_default=0.2,
    )
    return Dataset("science-toy", points, params, labels=labels, meta={"source": "handmade"})


# Fifteen S1-style cluster centres in [0, 1e6]^2: well separated (min gap
# ≈ 1.6e5) with mild irregularity, matching the published S1 layout's
# character.  Fixed, so every run and every test sees the same geometry.
_S1_CENTERS = np.array(
    [
        [166000, 845000], [398000, 862000], [640000, 905000], [880000, 830000],
        [110000, 605000], [356000, 570000], [602000, 635000], [858000, 588000],
        [162000, 352000], [420000, 315000], [660000, 378000], [912000, 340000],
        [255000, 110000], [535000, 92000], [800000, 125000],
    ],
    dtype=np.float64,
)


def s1(n: Optional[int] = None, profile: str = "bench", seed: int = 0) -> Dataset:
    """S1 stand-in: 15 Gaussian clusters in ``[0, 10⁶]²`` (paper Table 2).

    The original S1 has 5000 points and ~9% cluster overlap; σ = 28000 gives
    a comparable overlap at this layout's spacing.
    """
    if n is None:
        n = profile_size("s1", profile)
    points, labels = gaussian_blobs(n, _S1_CENTERS, sigma=28000.0, seed=seed)
    params = ExperimentParams(
        # Figure 6a x-axis.
        dc_grid=(5_000, 10_000, 30_000, 200_000, 500_000),
        dc_default=30_000,
        w_grid=(1_000, 2_000, 8_000, 30_000),
        w_default=2_000,  # Table 3/4 note: "2000" for S1
    )
    return Dataset("s1", points, params, labels=labels, meta={"clusters": 15})


def birch(n: Optional[int] = None, profile: str = "bench", seed: int = 0) -> Dataset:
    """Birch1 stand-in: 100 Gaussian clusters on a 10×10 grid in ``[0, 10⁶]²``."""
    if n is None:
        n = profile_size("birch", profile)
    grid = (np.arange(10) + 0.5) * 100_000.0
    centers = np.array([(x, y) for x in grid for y in grid])
    points, labels = gaussian_blobs(n, centers, sigma=16_000.0, seed=seed)
    params = ExperimentParams(
        # Figure 6c x-axis.
        dc_grid=(30_000, 150_000, 220_000, 500_000, 800_000),
        dc_default=100_000,  # §5.4 fixed dc
        w_grid=(3_000, 8_000, 30_000, 100_000),  # Figure 7a
        w_default=8_000,  # Table 3/4 note
        tau_grid=(100_000, 200_000, 250_000),  # Figure 8a
        tau_star=250_000,  # Tables 3/4 '*'
        quality_tau_grid=(10_000, 50_000, 80_000, 100_000, 250_000),  # Fig 10a
        fig7_dc=(10_000, 50_000, 220_000),  # Figure 7a legend
    )
    return Dataset("birch", points, params, labels=labels, meta={"clusters": 100})


def query_workload(n: Optional[int] = None, profile: str = "bench", seed: int = 0) -> Dataset:
    """Query-analytics stand-in: query hot-spots over ``[0, 1]²``.

    Eight Gaussian hot-spots of unequal weight plus 20% uniform background —
    a mildly clustered spatial workload, like the UCI original.
    """
    if n is None:
        n = profile_size("query", profile)
    rng = np.random.default_rng(seed + 1)
    centers = rng.uniform(0.12, 0.88, size=(8, 2))
    weights = rng.uniform(0.5, 2.0, size=8)
    points, labels = gaussian_blobs(
        n,
        centers,
        sigma=0.035,
        weights=weights,
        background_fraction=0.20,
        bbox=(0.0, 0.0, 1.0, 1.0),
        seed=seed,
    )
    params = ExperimentParams(
        # Figure 6b x-axis.
        dc_grid=(0.001, 0.005, 0.010, 0.050, 0.100),
        dc_default=0.010,
        w_grid=(0.0002, 0.0006, 0.002, 0.006),
        w_default=0.0006,  # Table 3/4 note
    )
    return Dataset("query", points, params, labels=labels, meta={"hotspots": 8})


def range_workload(n: Optional[int] = None, profile: str = "bench", seed: int = 0) -> Dataset:
    """Range-analytics stand-in: 12 hot-spots over ``[0, 10⁵]²`` + background."""
    if n is None:
        n = profile_size("range", profile)
    rng = np.random.default_rng(seed + 2)
    centers = rng.uniform(8_000.0, 92_000.0, size=(12, 2))
    weights = rng.uniform(0.5, 2.5, size=12)
    points, labels = gaussian_blobs(
        n,
        centers,
        sigma=2_600.0,
        weights=weights,
        background_fraction=0.25,
        bbox=(0.0, 0.0, 100_000.0, 100_000.0),
        seed=seed,
    )
    params = ExperimentParams(
        # Figure 6d x-axis.
        dc_grid=(300, 1_200, 2_200, 5_000, 10_000),
        dc_default=1_500,  # §5.4 fixed dc
        w_grid=(200, 600, 1_500, 2_500),  # Figure 7b
        w_default=600,  # Table 3/4 note
        tau_grid=(500, 2_000, 2_500),  # Figure 8b
        tau_star=2_500,  # Tables 3/4 '*'
        quality_tau_grid=(200, 500, 800, 1_500, 2_500),  # Fig 10b
        fig7_dc=(150, 1_200, 2_200),  # Figure 7b legend
    )
    return Dataset("range", points, params, labels=labels, meta={"hotspots": 12})
