"""Dataset containers and the paper's per-dataset experiment parameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dataset", "ExperimentParams", "PROFILES", "profile_size"]


#: Scale profiles.  The paper runs C++ at up to 1.256M points; this pure
#: Python reproduction scales each dataset down while preserving the size
#: *ordering* (S1 < Query < Birch < Range < Brightkite < Gowalla) so results
#: like "list-based indexes stop fitting in memory after Query" still emerge.
PROFILES: Dict[str, Dict[str, int]] = {
    "test": {
        "s1": 500,
        "query": 700,
        "birch": 900,
        "range": 1100,
        "brightkite": 1300,
        "gowalla": 1600,
    },
    "bench": {
        "s1": 2000,
        "query": 4000,
        "birch": 6000,
        "range": 8000,
        "brightkite": 10000,
        "gowalla": 14000,
    },
    "large": {
        "s1": 5000,
        "query": 12000,
        "birch": 20000,
        "range": 28000,
        "brightkite": 36000,
        "gowalla": 48000,
    },
}


def profile_size(dataset: str, profile: str) -> int:
    """Point count for ``dataset`` under ``profile`` (see :data:`PROFILES`)."""
    try:
        sizes = PROFILES[profile]
    except KeyError:
        raise KeyError(
            f"unknown profile {profile!r}; available: {sorted(PROFILES)}"
        ) from None
    try:
        return sizes[dataset]
    except KeyError:
        raise KeyError(
            f"unknown dataset {dataset!r}; available: {sorted(sizes)}"
        ) from None


@dataclass(frozen=True)
class ExperimentParams:
    """Per-dataset knobs mirroring the paper's evaluation section.

    The grids repeat the *x-axes of the paper's figures* (Figs 6–10) in the
    original coordinate units; loaders keep those units, so these values can
    be used verbatim.

    Attributes
    ----------
    dc_grid:
        The five dc values of the dataset's Figure 6 panel ("L", the largest
        distance, is added by the harness at run time).
    dc_default:
        The fixed dc used in Fig 5 and the τ studies (paper §5.4).
    w_grid / w_default:
        CH bin widths of Figure 7 / the Table 3–4 setting.
    tau_grid:
        τ values of Figure 8 (``None``: the full index fits in memory, as
        for S1 and Query in the paper).
    tau_star:
        The "largest τ" marked ``*`` in Tables 3–4.
    quality_tau_grid:
        τ values of the Figure 10 quality sweep.
    fig7_dc:
        The three dc values of the dataset's Figure 7 panel (bin-width
        sweep); ``None`` for datasets the paper does not sweep.
    """

    dc_grid: Tuple[float, ...]
    dc_default: float
    w_grid: Tuple[float, ...]
    w_default: float
    tau_grid: Optional[Tuple[float, ...]] = None
    tau_star: Optional[float] = None
    quality_tau_grid: Optional[Tuple[float, ...]] = None
    fig7_dc: Optional[Tuple[float, float, float]] = None


@dataclass
class Dataset:
    """A named point set plus its experiment parameters.

    ``labels`` carries generator ground truth when the distribution has one
    (the Gaussian mixtures); check-in simulations leave it ``None`` — the
    paper's quality metrics compare against *exact DPC*, not ground truth.
    """

    name: str
    points: np.ndarray
    params: ExperimentParams
    labels: Optional[np.ndarray] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = np.ascontiguousarray(self.points, dtype=np.float64)
        if self.points.ndim != 2 or len(self.points) == 0:
            raise ValueError(
                f"points must be a non-empty (n, d) array, got {self.points.shape}"
            )
        if self.labels is not None and len(self.labels) != len(self.points):
            raise ValueError("labels length must match points")

    @property
    def n(self) -> int:
        return len(self.points)

    @property
    def ndim(self) -> int:
        return self.points.shape[1]

    def diameter_upper_bound(self) -> float:
        """Cheap upper bound on the largest pairwise distance (the paper's
        "L" setting in Figure 6): the bounding-box diagonal."""
        lo = self.points.min(axis=0)
        hi = self.points.max(axis=0)
        return float(np.sqrt(((hi - lo) ** 2).sum()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset({self.name!r}, n={self.n}, d={self.ndim})"
