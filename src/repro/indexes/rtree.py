"""R-tree index for DPC — paper Section 4.2.

Two construction modes, matching the paper's discussion:

* ``packing="str"`` (default) — Sort-Tile-Recursive bulk loading
  (Leutenegger et al., reference [12] of the paper): recursively sort by one
  dimension, tile into slabs, and pack full leaves; upper levels repack the
  leaf MBR centres the same way.  Produces a balanced tree with near-minimal
  overlap — "the packing algorithm often results in better structure".
* ``packing="dynamic"`` — Guttman's original insertion (reference [10]):
  ChooseLeaf by least area enlargement, quadratic split on overflow.  Kept
  as the ablation baseline for the packing-vs-dynamic benchmark.

Nodes carry tight MBRs of their contents (unlike the quadtree's fixed space
decomposition), ``nc``, and per-run ``maxrho``; queries come from
:mod:`repro.indexes.treebase` unchanged — the paper makes the same point by
omitting the R-tree query pseudo-code entirely.
"""

from __future__ import annotations

import math
from typing import ClassVar, List

import numpy as np

from repro.geometry.distance import Metric
from repro.indexes.build import _str_order, bulk_build_str
from repro.indexes.treebase import TreeIndexBase, TreeNode

__all__ = ["RTreeIndex"]


def _mbr_of(points: np.ndarray) -> tuple:
    return points.min(axis=0), points.max(axis=0)


def _union(lo1, hi1, lo2, hi2):
    return np.minimum(lo1, lo2), np.maximum(hi1, hi2)


def _area(lo, hi) -> float:
    return float(np.prod(hi - lo))


class RTreeIndex(TreeIndexBase):
    """R-tree with STR packing (default) or dynamic Guttman insertion.

    Parameters
    ----------
    max_entries:
        Node capacity M (both leaf objects and internal fan-out).
    min_entries:
        Minimum fill m for the dynamic quadratic split (ignored by STR);
        defaults to ``⌈M/2⌉`` per Guttman's recommendation.
    packing:
        ``"str"`` or ``"dynamic"`` (see module docstring).
    build:
        ``"bulk"`` (default) — STR packing runs as the vectorised
        level-synchronous builder (:func:`repro.indexes.build.bulk_build_str`),
        producing a flat image node-for-node identical to the object-graph
        STR build.  Dynamic packing has no bulk path and always uses the
        object-graph insertion, whatever ``build`` says (``build_`` records
        the resolved path).
    """

    name: ClassVar[str] = "rtree"

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        max_entries: int = 16,
        min_entries: int | None = None,
        packing: str = "str",
        density_pruning: bool = True,
        distance_pruning: bool = True,
        frontier: str = "batched",
        build: str = "bulk",
        backend: str = "serial",
        n_jobs: int | None = None,
        chunk_size: int | None = None,
    ):
        super().__init__(
            metric, density_pruning, distance_pruning, frontier, build,
            backend=backend, n_jobs=n_jobs, chunk_size=chunk_size,
        )
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        if packing not in ("str", "dynamic"):
            raise ValueError(f"packing must be 'str' or 'dynamic', got {packing!r}")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(1, max_entries // 2)
        )
        if not (1 <= self.min_entries <= self.max_entries // 2):
            raise ValueError(
                f"min_entries must be in [1, {max_entries // 2}], got {self.min_entries}"
            )
        self.packing = packing

    def _bulk_build(self):
        if self.packing != "str":
            return None  # dynamic insertion is inherently per-object
        return bulk_build_str(self.points, self.max_entries)

    def _delta_image(self, pts):
        # The side image never affects results, so STR packs it even though
        # the base may be dynamic (a dynamic base resolves build_="objects"
        # and takes the refit fallback before this hook is consulted).
        return bulk_build_str(pts, self.max_entries)

    # Compaction keeps the default fresh-fit path: STR's slab arithmetic is
    # global in n, so there is no sorted-run merge that reproduces it.

    def _build_objects(self) -> TreeNode:
        if self.packing == "str":
            return self._build_str()
        return self._build_dynamic()

    # -- STR bulk loading ------------------------------------------------------

    def _build_str(self) -> TreeNode:
        points = self.points
        ids = np.arange(len(points), dtype=np.int64)
        leaves = self._str_tile_points(ids)
        return self._pack_upward(leaves)

    def _str_tile_points(self, ids: np.ndarray) -> List[TreeNode]:
        """Recursively sort-tile ``ids`` into full leaves of M points."""
        points = self.points
        d = points.shape[1]

        def tile(sub: np.ndarray, dim: int) -> List[TreeNode]:
            if len(sub) <= self.max_entries:
                pts = points[sub]
                lo, hi = _mbr_of(pts)
                return [TreeNode(lo, hi, ids=sub)]
            if dim == d - 1:
                # Last dimension: chop the sorted run into consecutive leaves.
                order = sub[np.argsort(points[sub, dim], kind="stable")]
                out = []
                for start in range(0, len(order), self.max_entries):
                    chunk = order[start : start + self.max_entries]
                    lo, hi = _mbr_of(points[chunk])
                    out.append(TreeNode(lo, hi, ids=chunk))
                return out
            # Tile into s slabs along this dimension, recurse on the rest.
            n_leaves = math.ceil(len(sub) / self.max_entries)
            s = math.ceil(n_leaves ** (1.0 / (d - dim)))
            slab_size = math.ceil(len(sub) / s)
            order = sub[np.argsort(points[sub, dim], kind="stable")]
            out = []
            for start in range(0, len(order), slab_size):
                out.extend(tile(order[start : start + slab_size], dim + 1))
            return out

        return tile(ids, 0)

    def _pack_upward(self, level: List[TreeNode]) -> TreeNode:
        """Repack node MBR centres with STR until a single root remains."""
        d = self.points.shape[1]
        while len(level) > 1:
            centers = np.array([(n.lo + n.hi) / 2.0 for n in level])
            order = self._str_order(centers, d)
            next_level: List[TreeNode] = []
            for start in range(0, len(level), self.max_entries):
                group = [level[order[i]] for i in range(start, min(start + self.max_entries, len(level)))]
                lo, hi = group[0].lo, group[0].hi
                for child in group[1:]:
                    lo, hi = _union(lo, hi, child.lo, child.hi)
                next_level.append(TreeNode(lo, hi, children=group))
            level = next_level
        return level[0]

    def _str_order(self, centers: np.ndarray, d: int) -> np.ndarray:
        """STR ordering of node centres (sort-tile on successive dimensions).

        One authoritative implementation, shared with the bulk builder —
        the node-for-node STR identity contract depends on both paths
        grouping through the exact same slab arithmetic.
        """
        return _str_order(centers, self.max_entries)

    # -- dynamic Guttman insertion ------------------------------------------------

    def _build_dynamic(self) -> TreeNode:
        points = self.points
        first = points[0]
        root = TreeNode(first.copy(), first.copy(), ids=None)
        root.ids = np.empty(0, dtype=np.int64)
        self._leaf_buffers = {id(root): [0]}
        root.lo = first.copy()
        root.hi = first.copy()
        for p in range(1, len(points)):
            root = self._insert(root, p)
        self._flush_leaf_buffers(root)
        del self._leaf_buffers
        return root

    def _insert(self, root: TreeNode, p: int) -> TreeNode:
        q = self.points[p]
        path: List[TreeNode] = []
        node = root
        while not node.is_leaf:
            path.append(node)
            node = self._choose_child(node, q)
        self._leaf_buffers[id(node)].append(p)
        node.lo = np.minimum(node.lo, q)
        node.hi = np.maximum(node.hi, q)
        # Overflow handling, propagating splits upward.
        split = None
        if len(self._leaf_buffers[id(node)]) > self.max_entries:
            split = self._split_leaf(node)
        child = node
        while path:
            parent = path.pop()
            parent.lo = np.minimum(parent.lo, q)
            parent.hi = np.maximum(parent.hi, q)
            if split is not None:
                parent.children.append(split)
                split = None
                if len(parent.children) > self.max_entries:
                    split = self._split_internal(parent)
            child = parent
        if split is not None:
            # Root overflowed: grow the tree by one level.
            lo, hi = _union(child.lo, child.hi, split.lo, split.hi)
            return TreeNode(lo, hi, children=[child, split])
        return child

    def _choose_child(self, node: TreeNode, q: np.ndarray) -> TreeNode:
        """Guttman ChooseLeaf: least enlargement, ties by smallest area."""
        best, best_key = None, None
        for child in node.children:
            lo, hi = np.minimum(child.lo, q), np.maximum(child.hi, q)
            area = _area(child.lo, child.hi)
            key = (_area(lo, hi) - area, area)
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _entry_boxes(self, node: TreeNode):
        """(lo, hi, payload) triples of a node's entries, leaf or internal."""
        if node.is_leaf:
            ids = self._leaf_buffers[id(node)]
            return [(self.points[i], self.points[i], i) for i in ids]
        return [(c.lo, c.hi, c) for c in node.children]

    def _quadratic_split(self, entries):
        """Guttman's quadratic PickSeeds / PickNext distribution."""
        n = len(entries)
        worst, seeds = -np.inf, (0, 1)
        for i in range(n):
            for j in range(i + 1, n):
                lo, hi = _union(entries[i][0], entries[i][1], entries[j][0], entries[j][1])
                waste = _area(lo, hi) - _area(entries[i][0], entries[i][1]) - _area(
                    entries[j][0], entries[j][1]
                )
                if waste > worst:
                    worst, seeds = waste, (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        box_a = (entries[seeds[0]][0].copy(), entries[seeds[0]][1].copy())
        box_b = (entries[seeds[1]][0].copy(), entries[seeds[1]][1].copy())
        rest = [entries[k] for k in range(n) if k not in seeds]
        while rest:
            # Honour the minimum fill requirement.
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                for e in rest:
                    box_a = _union(box_a[0], box_a[1], e[0], e[1])
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                for e in rest:
                    box_b = _union(box_b[0], box_b[1], e[0], e[1])
                break
            # PickNext: entry with the greatest preference difference.
            best_k, best_diff, best_growth = 0, -np.inf, (0.0, 0.0)
            for k, e in enumerate(rest):
                ga = _area(*_union(box_a[0], box_a[1], e[0], e[1])) - _area(*box_a)
                gb = _area(*_union(box_b[0], box_b[1], e[0], e[1])) - _area(*box_b)
                diff = abs(ga - gb)
                if diff > best_diff:
                    best_k, best_diff, best_growth = k, diff, (ga, gb)
            e = rest.pop(best_k)
            ga, gb = best_growth
            pick_a = ga < gb or (ga == gb and _area(*box_a) <= _area(*box_b))
            if pick_a:
                group_a.append(e)
                box_a = _union(box_a[0], box_a[1], e[0], e[1])
            else:
                group_b.append(e)
                box_b = _union(box_b[0], box_b[1], e[0], e[1])
        return (group_a, box_a), (group_b, box_b)

    def _split_leaf(self, node: TreeNode) -> TreeNode:
        entries = self._entry_boxes(node)
        (group_a, box_a), (group_b, box_b) = self._quadratic_split(entries)
        self._leaf_buffers[id(node)] = [e[2] for e in group_a]
        node.lo, node.hi = box_a[0].copy(), box_a[1].copy()
        sibling = TreeNode(box_b[0].copy(), box_b[1].copy(), ids=None)
        sibling.ids = np.empty(0, dtype=np.int64)
        self._leaf_buffers[id(sibling)] = [e[2] for e in group_b]
        return sibling

    def _split_internal(self, node: TreeNode) -> TreeNode:
        entries = self._entry_boxes(node)
        (group_a, box_a), (group_b, box_b) = self._quadratic_split(entries)
        node.children = [e[2] for e in group_a]
        node.lo, node.hi = box_a[0].copy(), box_a[1].copy()
        sibling = TreeNode(
            box_b[0].copy(), box_b[1].copy(), children=[e[2] for e in group_b]
        )
        return sibling

    def _flush_leaf_buffers(self, root: TreeNode) -> None:
        for node in root.iter_nodes():
            if node.is_leaf:
                node.ids = np.asarray(
                    sorted(self._leaf_buffers[id(node)]), dtype=np.int64
                )
