"""Shared query machinery for the tree-based indexes (paper Section 4).

The paper develops one pruning framework and applies it to both Quadtree and
R-tree ("the pruning techniques are still valid for R-tree ... we omit the
discussions", Section 4.2.2).  We follow the same factoring: any tree whose
nodes expose a bounding box, a child list / leaf id array, an object count
``nc`` and a per-run ``maxrho`` gets

* the ρ query of Algorithm 5 — classify each node against the query circle
  as *discarded* (``dmin ≥ dc``), *fully contained* (``dmax < dc``, add
  ``nc`` wholesale) or *intersected* (recurse) — Observation 1.  The
  traversal is *batched* level-synchronously over the flattened tree
  (:func:`repro.indexes.kernels.tree_rho_batched`): all surviving
  ``(query, node)`` pairs of a level classify in single vectorised passes,
  and each point follows exactly the per-point classification of the
  scalar algorithm (results and probe counters are identical — the
  per-object Python loop is gone);
* the δ query of Algorithm 6 — best-first search with **density pruning**
  (Lemma 1: skip nodes with ``maxrho < ρ(p)``; equality is kept so id
  tie-breaking stays exact) and **distance pruning** (Lemma 2: skip nodes
  with ``dmin`` beyond the candidate δ).  The default ``frontier="batched"``
  runs it through the frontier-batched engine of
  :func:`repro.indexes.kernels.tree_delta_batched` — whole blocks of
  unresolved query points advance through the tree per Python step, and a
  multi-``dc`` sweep (``delta_all_multi``) shares one maxrho annotation and
  one traversal schedule across all of its density orders.

Ablation knobs (DESIGN.md §3): both prunings can be disabled and the
best-first frontier can be the batched engine (default), a per-object heap
(the paper's "a priority queue can be used to replace the stack") or the
paper's original per-object ordered stack.  ``"heap"``/``"stack"`` are the
verbatim per-object reference paths the batched engine is property-tested
against.

Construction mirrors the same batched-vs-reference split: ``build="bulk"``
(default) constructs the flattened query image directly from the point
array (:mod:`repro.indexes.build` — no ``TreeNode`` graph on the hot path),
``build="objects"`` keeps the original per-node builders; the object graph
materialises lazily from the flat image when the reference frontiers or
structure introspection need it.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder
from repro.geometry.distance import Metric
from repro.geometry.rect import Rect
from repro.indexes import parallel
from repro.indexes.base import DPCIndex
from repro.indexes.kernels import (
    delta_multi_from_orders,
    flat_tree_maxrho,
    flatten_tree,
    merge_delta_candidates,
    peak_delta_sweep,
    tree_delta_batched,
    tree_rho_batched,
)

__all__ = ["TreeNode", "TreeIndexBase"]


class TreeNode:
    """One node of a spatial tree: a box, plus children or leaf ids.

    ``lo``/``hi`` are the box corners (kept as raw arrays — hot query paths
    bypass :class:`~repro.geometry.rect.Rect` to avoid per-visit wrapper
    costs).  ``lo_t``/``hi_t`` are plain-float tuples of the same corners,
    filled by :meth:`finalize_counts`, for the scalar fast path of the 2-D
    Euclidean traversals.  ``nc`` is the number of objects below the node
    (paper Table 1); ``maxrho`` is (re)annotated per clustering run since it
    depends on ``dc``.
    """

    __slots__ = ("lo", "hi", "lo_t", "hi_t", "children", "ids", "nc", "maxrho")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        children: Optional[List["TreeNode"]] = None,
        ids: Optional[np.ndarray] = None,
    ):
        self.lo = lo
        self.hi = hi
        self.lo_t = None
        self.hi_t = None
        self.children = children
        self.ids = ids
        self.nc = int(len(ids)) if ids is not None else 0
        self.maxrho = -1

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def rect(self) -> Rect:
        return Rect(self.lo, self.hi)

    def finalize_counts(self) -> int:
        """Fill ``nc`` bottom-up and cache tuple boxes; returns the count.

        Iterative (explicit post-order stack): dynamic-insertion orders can
        produce trees whose depth exceeds the Python recursion limit, and
        finalisation must never be the thing that dies on them.
        """
        stack: List[Tuple["TreeNode", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                node.nc = sum(child.nc for child in node.children)
                continue
            node.lo_t = tuple(float(v) for v in node.lo)
            node.hi_t = tuple(float(v) for v in node.hi)
            if node.children is not None:
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
            else:
                # Leaf ids may have been assigned after construction (the
                # dynamic R-tree buffers them); recompute rather than
                # trusting __init__.
                node.nc = int(len(node.ids)) if node.ids is not None else 0
        return self.nc

    def iter_nodes(self):
        """Pre-order iteration over the subtree (tests, memory accounting)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.children is not None:
                stack.extend(node.children)

    def height(self) -> int:
        """Leaf = 1.  Iterative (level frontier) — recursion-limit safe."""
        height = 0
        frontier: List["TreeNode"] = [self]
        while frontier:
            height += 1
            frontier = [
                child
                for node in frontier
                if node.children is not None
                for child in node.children
            ]
        return height


class TreeIndexBase(DPCIndex):
    """Query algorithms shared by Quadtree / R-tree / kd-tree.

    Subclasses build ``self._root`` in ``_build`` and may override
    ``memory_bytes``.  Query-behaviour knobs:

    Parameters
    ----------
    density_pruning, distance_pruning:
        Enable Lemma 1 / Lemma 2 in the δ query (both on by default; exposed
        for the ablation benchmarks — disabling them changes *work*, never
        *results*).
    frontier:
        ``"batched"`` (default) — the frontier-batched engine of
        :func:`repro.indexes.kernels.tree_delta_batched`; ``"heap"`` —
        per-object best-first via priority queue; ``"stack"`` — the paper's
        Algorithm 6 ordered stack (children pushed best-last so the nearest
        is popped first).  All three produce bit-identical (δ, μ).
    build:
        ``"bulk"`` (default) — construct the flattened
        :class:`~repro.indexes.kernels.FlatTree` image directly from the
        point array with the vectorised builders of
        :mod:`repro.indexes.build`; no ``TreeNode`` graph is materialised
        unless something asks for it (``root``, the per-object reference
        frontiers).  ``"objects"`` — the original per-node Python
        construction, kept as the property-tested reference.  ρ/δ/μ/labels/
        halo are bit-identical across both; probe counters agree wherever
        the tree shape does (always for STR, which is node-for-node
        identical).  ``build`` is a runtime knob like ``backend`` — it is
        never serialised and does not enter the content fingerprint.  The
        fit-resolved path lives in ``build_`` (a config may fall back, e.g.
        a dynamic-packing R-tree has no bulk path).
    backend, n_jobs, chunk_size:
        Query-execution policy (:mod:`repro.indexes.parallel`).  The ρ
        query and the batched δ frontier shard over query chunks against
        the shared flattened tree image; the per-object reference frontiers
        always run serially.  Results are bit-identical across backends.
    """

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        density_pruning: bool = True,
        distance_pruning: bool = True,
        frontier: str = "batched",
        build: str = "bulk",
        backend: "str" = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        super().__init__(metric, backend=backend, n_jobs=n_jobs, chunk_size=chunk_size)
        if not self.metric.supports_rect_bounds:
            raise ValueError(
                f"metric {self.metric.name!r} has no exact rectangle bounds; "
                "tree indexes cannot prune with it (use a list-based index)"
            )
        if frontier not in ("batched", "heap", "stack"):
            raise ValueError(
                f"frontier must be 'batched', 'heap' or 'stack', got {frontier!r}"
            )
        if build not in ("bulk", "objects"):
            raise ValueError(f"build must be 'bulk' or 'objects', got {build!r}")
        self.density_pruning = density_pruning
        self.distance_pruning = distance_pruning
        self.frontier = frontier
        self.build = build
        self.build_: Optional[str] = None  # resolved per fit (or on load)
        self._root: Optional[TreeNode] = None
        self._flat = None  # FlatTree image (built at fit in bulk mode)
        self._root_views_flat = False  # nodes borrow the flat arrays
        self._delta_flat = None  # LSM-style side image over appended points
        self._base_n = 0  # points covered by the base image

    # -- construction routing ----------------------------------------------------

    def _build(self) -> None:
        """Template: bulk image by default, object graph as reference.

        Subclasses provide ``_build_objects()`` (the verbatim per-node
        construction, returning the root) and ``_bulk_build()`` (a
        :class:`~repro.indexes.kernels.FlatTree`, or ``None`` when the
        family/configuration has no bulk path — e.g. dynamic R-tree
        packing, quadtrees deeper than a Morton key can encode).
        """
        # Drop the previous tree's structures only now — after fit()'s
        # validation has accepted the new points (a rejected refit must
        # leave the old fitted state queryable) — but before the new build
        # allocates, so two trees are never pinned at once.
        self._flat = None
        self._root = None
        self._root_views_flat = False
        self._delta_flat = None
        flat = self._bulk_build() if self.build == "bulk" else None
        if flat is None:
            root = self._build_objects()
            root.finalize_counts()
            self._root = root
            self.build_ = "objects"
        else:
            self._flat = flat
            self.build_ = "bulk"
        self._base_n = len(self.points)

    def _build_objects(self) -> TreeNode:
        raise NotImplementedError

    def _bulk_build(self):
        return None

    # -- LSM-style delta segment -------------------------------------------------

    def _delta_image(self, pts: np.ndarray):
        """Bulk-build a side :class:`FlatTree` over ``pts`` (``None`` = no path).

        Families override with their bulk builder.  The delta image never
        affects *results* — the ρ/δ engines are exact over any valid tree of
        its member set — so every family uses its cheap bulk construction
        here regardless of the base build's configuration.
        """
        return None

    def _append(self, new_points: np.ndarray) -> None:
        """Ingest a batch as a rebuilt delta side-image over all delta points.

        The base image and ``self.points`` prefix stay frozen (attributes
        are rebound, arrays never mutated in place, so snapshot copies keep
        answering for their content).  Configurations without a flat image
        (``build_ == "objects"``) fall back to a full refit.
        """
        if self.build_ != "bulk" or self._flat is None:
            super()._append(new_points)
            return
        base_n = self._base_n
        combined = np.concatenate([self.points, new_points])
        dflat = self._delta_image(combined[base_n:])
        if dflat is None:
            super()._append(new_points)
            return
        dflat.leaf_ids = dflat.leaf_ids + base_n  # ids global, leaf_node_of local
        self.points = combined
        self._delta_flat = dflat

    @property
    def delta_size(self) -> int:
        if self._delta_flat is None or not self.is_fitted:
            return 0
        return len(self.points) - self._base_n

    def _merge_delta_image(self):
        """Family hook: merged base+delta image, or ``None`` for a fresh fit."""
        return None

    def _compact(self) -> None:
        flat = self._merge_delta_image() if self.build_ == "bulk" else None
        if flat is None:
            self.fit(self.points)
            return
        self._delta_flat = None
        self._flat = flat
        self._root = None
        self._root_views_flat = False
        self._base_n = len(self.points)

    # -- bound-function selection -------------------------------------------------

    def _bound_fns(self):
        """Pick (mindist, maxdist, q_of) node-bound callables for queries.

        For the ubiquitous 2-D Euclidean case a scalar ``math``-based fast
        path avoids per-visit numpy temporaries (~6x less traversal
        overhead); any other metric/dimension falls back to the generic
        rectangle bounds.  Both paths compute the exact same values, so
        pruning decisions are identical.
        """
        if self.metric.name == "euclidean" and self.points.shape[1] == 2:
            sqrt = math.sqrt

            def mindist(q, node) -> float:
                qx, qy = q
                lo = node.lo_t
                hi = node.hi_t
                dx = lo[0] - qx
                if dx < 0.0:
                    dx = qx - hi[0]
                    if dx < 0.0:
                        dx = 0.0
                dy = lo[1] - qy
                if dy < 0.0:
                    dy = qy - hi[1]
                    if dy < 0.0:
                        dy = 0.0
                return sqrt(dx * dx + dy * dy)

            def maxdist(q, node) -> float:
                qx, qy = q
                lo = node.lo_t
                hi = node.hi_t
                dx = qx - lo[0]
                dx2 = hi[0] - qx
                if dx2 > dx:
                    dx = dx2
                dy = qy - lo[1]
                dy2 = hi[1] - qy
                if dy2 > dy:
                    dy = dy2
                return sqrt(dx * dx + dy * dy)

            def q_of(point: np.ndarray):
                return (float(point[0]), float(point[1]))

        else:
            rect_min = self.metric.rect_mindist
            rect_max = self.metric.rect_maxdist

            def mindist(q, node) -> float:
                return rect_min(q, node.lo, node.hi)

            def maxdist(q, node) -> float:
                return rect_max(q, node.lo, node.hi)

            def q_of(point: np.ndarray):
                return point

        return mindist, maxdist, q_of

    # -- per-run annotation ------------------------------------------------------

    def _annotate_maxrho(self, rho: np.ndarray) -> None:
        """Per-run maxrho fill (the paper's pre-pass before Algorithm 6).

        Runs as a bottom-up level-ordered segment reduction over the flat
        image (:func:`repro.indexes.kernels.flat_tree_maxrho` — one
        ``reduceat`` per tree level, the same pass the batched engine and
        multi-``dc`` sweeps use), then scatters the per-node values onto the
        ``TreeNode`` graph for the per-object reference frontiers.  The old
        Python ``max(child.maxrho ...)`` walk — one numpy reduction per leaf,
        repeated for every density order — is gone.  Dtype-agnostic:
        integer ρ (Eq. 1 counts) and real-valued ρ (the kernel/kNN variants
        in :mod:`repro.extras.variants`) both work (int64 ρ is exact in
        float64 for any feasible n).
        """
        self.root  # materialises the object graph (and flat.nodes) if needed
        flat = self._flat_tree()
        nodes = flat.nodes
        if nodes is None:  # every producer fills it: flatten_tree/tree_from_flat
            raise RuntimeError("flat image has no node list; tree not materialised")
        vals = flat_tree_maxrho(flat, np.asarray(rho, dtype=np.float64)[None, :])[0]
        for node, v in zip(nodes, vals.tolist()):
            node.maxrho = v

    def _flat_tree(self):
        """The cached :class:`~repro.indexes.kernels.FlatTree` of this fit.

        In bulk mode the image *is* the fit product; in objects mode it is
        flattened lazily on first use.  Re-fits build fresh structures, so a
        stale object-graph flattening is detected by root identity.
        """
        self._require_fitted()
        if self._flat is None:
            self._flat = flatten_tree(self.root)
        elif self._flat.root is not None and self._flat.root is not self._root:
            self._flat = flatten_tree(self.root)
        return self._flat

    # -- sharded-execution image (repro.indexes.parallel) ---------------------------

    def _shard_arrays(self):
        arrays = self._flat_tree().as_arrays()
        arrays["points"] = self.points
        return arrays

    def _shard_meta(self):
        flat = self._flat_tree()
        return {
            "levels": flat.levels,
            "n_nodes": flat.n_nodes,
            "density_pruning": self.density_pruning,
            "distance_pruning": self.distance_pruning,
        }

    # -- ρ query (Algorithm 5 / Observation 1) -------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        # Batched Algorithm 5 over the flattened tree: every (query, node)
        # pair of a level classifies against Observation 1 — discarded /
        # contained / intersected — in single vectorised passes, with the
        # same per-point decisions (hence counts and probe counters) as the
        # per-object formulation.  Sharded over query chunks by the
        # execution backend (bit-identical across backends).
        self._require_fitted()
        self._flat_tree()  # materialise before the shard image is published
        base = self._sharded_rho(parallel.tree_rho_task, [float(dc)])[0]
        return self._rho_add_delta(base, float(dc))

    def rho_all_multi(self, dcs) -> np.ndarray:
        """ρ for a whole cut-off grid as one sharded ``(dc, chunk)`` wave."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        self._flat_tree()
        rows = self._sharded_rho(parallel.tree_rho_task, dcs)
        return np.stack([self._rho_add_delta(row, dc) for row, dc in zip(rows, dcs)])

    def _rho_add_delta(self, base_counts: np.ndarray, dc: float) -> np.ndarray:
        """Fold the delta segment's neighbour counts into the base counts.

        Each image's ρ pass subtracts one self-count uniformly, but every
        query is a member of exactly *one* of the two images, so the union
        count is ``base + delta + 1`` — the same strict ``< dc`` neighbour
        set a single combined image would count.
        """
        if self._delta_flat is None:
            return base_counts
        extra = tree_rho_batched(
            self._delta_flat, self.points, dc, self.metric, self._stats
        )
        return base_counts + extra + 1

    # -- δ query (Algorithm 6) --------------------------------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        if self.frontier == "batched":
            return self.delta_all_multi([order])[0]
        if self._delta_flat is not None:
            raise RuntimeError(
                "the per-object reference frontiers do not traverse the delta "
                "segment; call compact() first (or use frontier='batched')"
            )
        points = self._require_fitted()
        n = len(points)
        if len(order) != n:
            raise ValueError(f"order has {len(order)} objects, index has {n}")
        self._annotate_maxrho(order.rho)
        mindist, _maxdist, q_of = self._bound_fns()
        delta = np.empty(n, dtype=np.float64)
        mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)
        # Paper convention for the densest object(s): δ = max_q dist(p, q);
        # one exact blocked cross over all peak rows.
        peaks = order.global_peaks()
        delta[peaks] = peak_delta_sweep(points, peaks, self.metric, self._stats)
        is_peak = np.zeros(n, dtype=bool)
        is_peak[peaks] = True
        one = self._delta_one_heap if self.frontier == "heap" else self._delta_one_stack
        for p in np.flatnonzero(~is_peak):
            delta[p], mu[p] = one(int(p), order, mindist, q_of)
        return delta, mu

    def delta_all_multi(
        self, orders: "Sequence[DensityOrder]"
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """δ/μ for several density orders over the one built tree.

        With the default batched frontier, the sweep shares the flattened
        tree image, a single vectorised ``maxrho`` annotation pass over all
        orders, and one deduplicated global-peak sweep; each order then
        runs one frontier-batched traversal (measured faster than a single
        interleaved multi-order traversal — smaller pair arrays and the
        single-order gather fast paths win).  Element ``i`` is
        bit-identical to ``delta_all(orders[i])``.
        """
        points = self._require_fitted()
        n = len(points)
        orders = list(orders)
        for order in orders:
            if len(order) != n:
                raise ValueError(f"order has {len(order)} objects, index has {n}")
        if self.frontier != "batched":
            return [self.delta_all(order) for order in orders]
        if not orders:
            return []
        flat = self._flat_tree()
        if self._delta_flat is not None:
            return self._delta_all_multi_segmented(orders, flat)

        def run_engine(qid, qord, rho_rows, key_rows):
            # One vectorised maxrho pass annotates every order of the
            # sweep; the traversal itself runs per (order, chunk) task —
            # single-order engine runs keep the fast gather paths and
            # smaller pair arrays, which measures faster than one
            # interleaved union, and chunks of one order's queries are the
            # unit the execution backend shards over workers.
            maxrho = flat_tree_maxrho(flat, rho_rows)
            return self._sharded_delta_engine(
                parallel.tree_delta_task,
                qid,
                qord,
                len(rho_rows),
                {
                    "qid": qid,
                    "rho_rows": rho_rows,
                    "key_rows": key_rows,
                    "maxrho": maxrho,
                },
            )

        return delta_multi_from_orders(
            points, orders, run_engine, self.metric, self._stats
        )

    def _delta_all_multi_segmented(self, orders, flat):
        """δ sweep over the (base, delta) image pair.

        Each image's engine is exact over its own member set when driven
        with the *global* density rows (leaf ids are global point ids in
        both images); the union's nearest denser neighbour is then the
        lexicographic ``(distance, id)`` minimum of the two per-image
        candidates.  Queries that are members of the other image pass
        ``own_leaf = -1`` — the own-leaf/sibling seeding is pruning-only,
        so skipping it never changes results.  Runs serially on both
        images (the delta segment is small and the sharded engine derives
        member leaves itself); compaction restores the sharded path.
        """
        points = self.points
        dflat = self._delta_flat
        base_n = self._base_n

        def run_engine(qid, qord, rho_rows, key_rows):
            in_base = qid < base_n
            own_b = np.full(len(qid), -1, dtype=np.int64)
            own_b[in_base] = flat.leaf_node_of[qid[in_base]]
            own_d = np.full(len(qid), -1, dtype=np.int64)
            own_d[~in_base] = dflat.leaf_node_of[qid[~in_base] - base_n]
            d_b, m_b = tree_delta_batched(
                flat, points, qid, qord, rho_rows, key_rows,
                self.metric, self._stats,
                self.density_pruning, self.distance_pruning,
                maxrho=flat_tree_maxrho(flat, rho_rows), own_leaf=own_b,
            )
            d_d, m_d = tree_delta_batched(
                dflat, points, qid, qord, rho_rows, key_rows,
                self.metric, self._stats,
                self.density_pruning, self.distance_pruning,
                maxrho=flat_tree_maxrho(dflat, rho_rows), own_leaf=own_d,
            )
            return merge_delta_candidates(d_b, m_b, d_d, m_d)

        return delta_multi_from_orders(
            points, orders, run_engine, self.metric, self._stats
        )

    def _leaf_best(
        self, node: TreeNode, p: int, q: np.ndarray, order: DensityOrder
    ) -> Tuple[float, int]:
        """Best (distance, id) among denser objects in a leaf; (inf, -1) if none.

        Ties on distance prefer the smaller id, matching the baseline's
        first-occurrence ``argmin`` and the List Index's stable ordering.
        """
        ids = node.ids
        denser = order.denser_mask(p, ids)
        self._stats.objects_scanned += len(ids)
        if not denser.any():
            return np.inf, -1
        cand = ids[denser]
        d = self.metric.distances_from(self.points[cand], q)
        self._stats.distance_evals += len(cand)
        best = np.lexsort((cand, d))[0]
        return float(d[best]), int(cand[best])

    def _delta_one_heap(self, p: int, order: DensityOrder, mindist, q_of) -> Tuple[float, int]:
        point = self.points[p]
        q = q_of(point)
        stats = self._stats
        rho_p = order.rho[p]
        best_d, best_id = np.inf, -1
        counter = 0  # heap tie-breaker; TreeNodes are not comparable
        heap = [(0.0, counter, self._root)]
        while heap:
            dmin, _, node = heapq.heappop(heap)
            # Lemma 2: the heap is dmin-ordered, so the first non-improving
            # node ends the search.  '>' (not '>=') keeps equal-distance
            # candidates reachable for exact id tie-breaking.
            if self.distance_pruning and dmin > best_d:
                stats.nodes_pruned_distance += len(heap) + 1
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                d, qid = self._leaf_best(node, p, point, order)
                if d < best_d or (d == best_d and qid != -1 and qid < best_id):
                    best_d, best_id = d, qid
                continue
            for child in node.children:
                if self.density_pruning and child.maxrho < rho_p:
                    stats.nodes_pruned_density += 1
                    continue  # Lemma 1 (equality kept: ties may be denser)
                child_dmin = mindist(q, child)
                if self.distance_pruning and child_dmin > best_d:
                    stats.nodes_pruned_distance += 1
                    continue
                counter += 1
                heapq.heappush(heap, (child_dmin, counter, child))
        return best_d, best_id

    def _delta_one_stack(self, p: int, order: DensityOrder, mindist, q_of) -> Tuple[float, int]:
        """Algorithm 6 verbatim: ordered stack, nearest child pushed last."""
        point = self.points[p]
        q = q_of(point)
        stats = self._stats
        rho_p = order.rho[p]
        best_d, best_id = np.inf, -1
        stack: List[Tuple[float, TreeNode]] = [(0.0, self._root)]
        while stack:
            dmin, node = stack.pop()
            if self.distance_pruning and dmin > best_d:
                stats.nodes_pruned_distance += 1
                continue  # unlike the heap, later stack entries may still win
            stats.nodes_visited += 1
            if node.is_leaf:
                d, qid = self._leaf_best(node, p, point, order)
                if d < best_d or (d == best_d and qid != -1 and qid < best_id):
                    best_d, best_id = d, qid
                continue
            survivors = []
            for child in node.children:
                if self.density_pruning and child.maxrho < rho_p:
                    stats.nodes_pruned_density += 1
                    continue
                child_dmin = mindist(q, child)
                if self.distance_pruning and child_dmin > best_d:
                    stats.nodes_pruned_distance += 1
                    continue
                survivors.append((child_dmin, child))
            # Push farthest first so the best candidate is on top (the
            # paper's lines 13-24 achieve the same with the temp node).
            survivors.sort(key=lambda item: -item[0])
            stack.extend(survivors)
        return best_d, best_id

    # -- bookkeeping -------------------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        """The object-graph root; bulk-built fits materialise it lazily.

        The flat image is the query-serving structure — only the per-object
        reference frontiers and structure introspection need ``TreeNode``
        objects, so a bulk fit defers (and usually never pays) this cost.
        """
        if self._root is None:
            if self._flat is not None:
                from repro.indexes.build import tree_from_flat

                self._root = tree_from_flat(self._flat)
                self._flat.root = self._root
                self._root_views_flat = True  # nodes borrow the flat arrays
            else:
                raise RuntimeError(f"{type(self).__name__} is not fitted")
        return self._root

    def node_count(self) -> int:
        if self._flat is not None:  # O(1) whenever the image exists
            return int(self._flat.n_nodes)
        return sum(1 for _ in self.root.iter_nodes())

    def height(self) -> int:
        if self._flat is not None:
            return len(self._flat.levels)
        return self.root.height()

    def memory_bytes(self) -> int:
        """Flat engine image, plus the object graph where materialised.

        A graph materialised *from* the flat image borrows its arrays
        (``tree_from_flat`` nodes hold views), so only the per-node object
        overhead is added then — the array bytes are already counted once
        in the image.
        """
        total = 0
        if self._flat is not None:
            total += self._flat.nbytes()
        if self._delta_flat is not None:
            total += self._delta_flat.nbytes()
        if self._root is not None:
            owns_arrays = not self._root_views_flat
            for node in self._root.iter_nodes():
                total += 64  # object header + slot pointers (approximation)
                if owns_arrays:
                    total += node.lo.nbytes + node.hi.nbytes
                    if node.ids is not None:
                        total += node.ids.nbytes
                if node.children is not None:
                    total += 8 * len(node.children)
        return total
