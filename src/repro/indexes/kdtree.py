"""kd-tree index for DPC (extension beyond the paper's index set).

The paper studies Quadtree and R-tree; a balanced kd-tree is the natural
third tree (and the structure the calibration notes map most directly onto
scipy/sklearn neighbour machinery — built from scratch here).  It slots into
the identical Observation-1 / Lemma-1 / Lemma-2 query framework from
:mod:`repro.indexes.treebase`:

* construction: median split on the widest dimension (sliding midpoint is
  unnecessary since we split on the median — subtrees differ by at most one
  object, so the height is always ``⌈log2(n / leaf_size)⌉ + 1``);
* nodes carry *tight* bounding boxes of their contents, like the R-tree, so
  pruning quality is comparable while construction is simpler.

Works in any dimension, unlike the paper's 2-D quadtree.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.geometry.distance import Metric
from repro.indexes.build import bulk_build_kdtree, merge_dim_perms
from repro.indexes.treebase import TreeIndexBase, TreeNode

__all__ = ["KDTreeIndex"]


class KDTreeIndex(TreeIndexBase):
    """Balanced kd-tree with tight boxes and the shared pruned DPC queries.

    Parameters
    ----------
    leaf_size:
        Maximum objects per leaf.
    build:
        ``"bulk"`` (default) builds the flat image level-by-level from
        per-dimension presorted permutations
        (:func:`repro.indexes.build.bulk_build_kdtree`); ``"objects"`` is
        the recursive ``argpartition`` reference.  Same split rule, but
        median *ties* may fall on different sides, so the two trees can
        differ in shape on tie-heavy data — results are bit-identical
        either way (the queries are exact over any valid tree).
    """

    name: ClassVar[str] = "kdtree"

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        leaf_size: int = 32,
        density_pruning: bool = True,
        distance_pruning: bool = True,
        frontier: str = "batched",
        build: str = "bulk",
        backend: str = "serial",
        n_jobs: "int | None" = None,
        chunk_size: "int | None" = None,
    ):
        super().__init__(
            metric, density_pruning, distance_pruning, frontier, build,
            backend=backend, n_jobs=n_jobs, chunk_size=chunk_size,
        )
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size

    def _bulk_build(self):
        state: dict = {}
        flat = bulk_build_kdtree(self.points, self.leaf_size, state_out=state)
        self._dim_perms = state["perms"]  # pristine sorted perms, for compaction
        return flat

    def _delta_image(self, pts):
        return bulk_build_kdtree(pts, self.leaf_size)

    def _merge_delta_image(self):
        perms = getattr(self, "_dim_perms", None)
        if perms is None or perms.shape[1] != self._base_n:
            return None  # no fit-time perms (e.g. loaded payload): fresh build
        merged = merge_dim_perms(self.points, perms, self._base_n)
        state: dict = {}
        flat = bulk_build_kdtree(
            self.points, self.leaf_size, perms=merged, state_out=state
        )
        self._dim_perms = state["perms"]
        return flat

    def _build_objects(self) -> TreeNode:
        ids = np.arange(len(self.points), dtype=np.int64)
        return self._build_node(ids)

    def _build_node(self, ids: np.ndarray) -> TreeNode:
        pts = self.points[ids]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        if len(ids) <= self.leaf_size:
            return TreeNode(lo, hi, ids=ids)
        extent = hi - lo
        axis = int(np.argmax(extent))
        if extent[axis] == 0.0:
            # All remaining points coincide; splitting cannot help.
            return TreeNode(lo, hi, ids=ids)
        half = len(ids) // 2
        part = np.argpartition(pts[:, axis], half)
        left = ids[part[:half]]
        right = ids[part[half:]]
        node = TreeNode(lo, hi, children=[self._build_node(left), self._build_node(right)])
        return node
