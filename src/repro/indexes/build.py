"""Vectorized bulk construction of the :class:`~repro.indexes.kernels.FlatTree`
query image, straight from the point array.

PRs 1–4 made every *query* path array-native, but ``fit()`` still built a
recursive Python ``TreeNode`` graph (per-node numpy calls, Python recursion)
and only then flattened it into the structure-of-arrays image the batched
kernels actually consume.  Construction therefore dominated exactly the hot
paths the serving layer cares about — :class:`~repro.extras.streaming.StreamingDPC`
amortised rebuilds and :class:`~repro.serving.snapshots.SnapshotStore`
publishes.  This module builds the flat image *directly*, with level-
synchronous array operations and no intermediate object graph:

* :func:`bulk_build_str` — Sort-Tile-Recursive R-tree packing as argsort-based
  slab tiling plus ``reduceat`` MBR/count reductions.  The produced image is
  **node-for-node identical** to flattening the object-graph STR build (same
  stable sorts, same slab arithmetic, same union order), so probe counters
  match the reference exactly.
* :func:`bulk_build_kdtree` — median-split k-d tree built level-by-level:
  one presorted permutation per dimension, advanced through every level with
  a vectorised stable two-way partition (cumulative-sum ranking, no per-level
  sorts).  Tight per-node boxes fall out of the sorted permutations for free
  (first/last element of each segment per dimension).  The split *rule* is
  the reference's (widest-axis, median-by-rank, ``len // 2`` to the left);
  tie handling at the median differs from ``np.argpartition``, so the tree
  shape — and hence probe counters — may legitimately differ from the object
  build on tie-heavy data while ρ/δ/μ stay bit-identical (the queries are
  exact over any valid tree).
* :func:`bulk_build_quadtree` — PR quadtree via one Morton-key pass: each
  point's full quadrant path is derived from grid arithmetic on exact
  power-of-two cell widths, one sort groups every level at once, and the
  level loop only touches segment *boundaries*.  Cell membership and node
  boxes use one shared corner formula (clamped, monotone, exactly nested),
  so the contained/intersected classifications of the queries stay exact;
  quadrant boundary ulps may differ from the object build's repeated
  midpoint averaging, which is a legitimate shape difference.
* :func:`tree_from_flat` — lazily materialises a ``TreeNode`` graph *from*
  the flat image, for the per-object reference frontiers (``"heap"`` /
  ``"stack"``) and structure introspection; bulk-built indexes only pay this
  cost when something actually asks for the object graph.

Exactness contract (property-tested in ``tests/properties/test_prop_build.py``):
ρ, δ, μ, labels and halo from a bulk-built index are bit-identical to the
``build="objects"`` reference for every tree family, rect-capable metric and
adversarial corpus; the STR image additionally equals the flattened object
tree array-for-array.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.indexes.kernels import FlatTree, _expand_csr

__all__ = [
    "bulk_build_str",
    "bulk_build_kdtree",
    "bulk_build_quadtree",
    "merge_dim_perms",
    "merge_morton_runs",
    "morton_keys",
    "tree_from_flat",
]


# ---------------------------------------------------------------------------
# Shared assembly helpers
# ---------------------------------------------------------------------------


def _expand_segments(
    starts: np.ndarray, sizes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`repro.indexes.kernels._expand_csr`, also returning within-segment positions.

    ``(pos, local, off)``: ``pos`` are the absolute positions, ``local`` the
    position of each element inside its segment, ``off`` the segment starts
    inside the concatenation.
    """
    total = int(sizes.sum())
    off = (np.cumsum(sizes) - sizes).astype(starts.dtype, copy=False)
    local = np.arange(total, dtype=starts.dtype) - np.repeat(off, sizes)
    pos = local + np.repeat(starts, sizes)
    return pos, local, off


def _stable_argsort(values: np.ndarray) -> np.ndarray:
    """``np.argsort(values, kind="stable")``, cheaper on mostly-distinct data.

    Introsort plus a vectorised tie repair: ties of a stable float sort are
    ordered by original position, so only positions inside equal-value runs
    ever need fixing — none at all on typical coordinate data, where this is
    ~30% faster than numpy's stable (merge) sort.  Bit-identical output.
    """
    order = np.argsort(values)
    vs = values[order]
    eq = vs[1:] == vs[:-1]
    if not eq.any():
        return order
    in_tie = np.zeros(len(values), dtype=bool)
    in_tie[1:] = eq
    in_tie[:-1] |= eq
    run = np.cumsum(np.concatenate(([True], ~eq)))  # equal-value run labels
    sub = np.flatnonzero(in_tie)
    take = np.lexsort((order[sub], run[sub]))
    order[sub] = order[sub[take]]
    return order


def _sort_within_segments(
    perm: np.ndarray, starts: np.ndarray, sizes: np.ndarray, vals: np.ndarray
) -> None:
    """Stable-sort ``perm`` inside each segment by ``vals`` (position-keyed).

    ``vals[i]`` is the sort key currently at position ``i``.  All segments
    sort in one rectangular ``argsort(axis=1)`` over a padded ``(rows, W)``
    matrix — pads are ``+inf`` so they land behind every real entry and the
    per-row stable order of the real entries matches a per-segment
    ``np.argsort(kind="stable")`` exactly.
    """
    rows = len(starts)
    if rows == 0:
        return
    W = int(sizes.max())
    pos, local, _ = _expand_segments(starts.astype(np.int64, copy=False), sizes)
    colmask = np.arange(W)[None, :] < sizes[:, None]
    gathered = vals[pos]
    padded = np.full((rows, W), np.inf, dtype=np.float64)
    padded[colmask] = gathered
    loc = np.argsort(padded, axis=1)  # introsort rows; ties repaired below
    vs = np.take_along_axis(padded, loc, axis=1)
    eq = vs[:, 1:] == vs[:, :-1]
    if not np.isposinf(gathered).any():
        # No real +inf anywhere: introsort can only have scrambled ties, and
        # ties purely among the +inf pads need no repair (pads are dropped
        # by the column mask below), so restrict the repair to pairs whose
        # left element is real.
        eq &= np.arange(1, W)[None, :] <= sizes[:, None]
    # With real +inf present the pads join its tie run unmasked: the repair
    # orders the whole run by source column, which puts every real entry
    # (column < size) back ahead of the pads wherever introsort left it.
    if eq.any():
        # Stable repair, batched over all rows: ties (including the +inf
        # pads) order by source column ascending; runs never cross rows
        # because every row starts a fresh run label.
        in_tie = np.zeros((rows, W), dtype=bool)
        in_tie[:, 1:] = eq
        in_tie[:, :-1] |= eq
        runb = np.ones((rows, W), dtype=bool)
        runb[:, 1:] = ~eq
        run = np.cumsum(runb.ravel())
        flat_loc = loc.ravel()
        sub = np.flatnonzero(in_tie.ravel())
        take = np.lexsort((flat_loc[sub], run[sub]))
        flat_loc[sub] = flat_loc[sub[take]]
        loc = flat_loc.reshape(rows, W)
    src = loc[colmask] + (pos - local)
    perm[pos] = perm[src]


def _assemble_flat(levels: "List[dict]", perm: np.ndarray, dim: int) -> FlatTree:
    """Build a :class:`FlatTree` from top-down per-level node arrays.

    Each entry of ``levels`` describes one BFS level with aligned arrays:
    ``lo``/``hi`` ``(L, dim)``, ``nc`` ``(L,)``, ``child_count`` ``(L,)``
    (children must have been appended to the *next* level in parent order),
    and ``leaf_pos``/``leaf_sizes`` ``(L,)`` — position ranges into ``perm``
    holding each leaf's member ids (zero size for internal nodes).  The
    resulting arrays follow exactly the layout of
    :func:`repro.indexes.kernels.flatten_tree`.
    """
    counts = [len(level["nc"]) for level in levels]
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    n_nodes = int(offsets[-1])
    flat = FlatTree()
    flat.root = None
    flat.nodes = None
    flat.n_nodes = n_nodes
    flat.levels = [(int(offsets[i]), int(offsets[i + 1])) for i in range(len(counts))]
    flat.lo = np.concatenate([level["lo"] for level in levels]).reshape(n_nodes, dim)
    flat.hi = np.concatenate([level["hi"] for level in levels]).reshape(n_nodes, dim)
    flat.nc = np.concatenate(
        [np.asarray(level["nc"], dtype=np.int64) for level in levels]
    )
    child_count = np.concatenate(
        [np.asarray(level["child_count"], dtype=np.int64) for level in levels]
    )
    flat.child_count = child_count
    child_start = np.zeros(n_nodes, dtype=np.int64)
    parent = np.zeros(n_nodes, dtype=np.int64)
    for i, level in enumerate(levels):
        cc = np.asarray(level["child_count"], dtype=np.int64)
        if not len(cc) or not cc.any():
            continue
        base = offsets[i + 1]
        excl = np.cumsum(cc) - cc
        lo_i, hi_i = int(offsets[i]), int(offsets[i + 1])
        child_start[lo_i:hi_i] = np.where(cc > 0, base + excl, 0)
        internal = np.flatnonzero(cc > 0)
        parent[base : base + int(cc.sum())] = np.repeat(internal + lo_i, cc[internal])
    flat.child_start = child_start
    flat.parent = parent

    leaf_pos = np.concatenate(
        [np.asarray(level["leaf_pos"], dtype=np.int64) for level in levels]
    )
    leaf_sizes = np.concatenate(
        [np.asarray(level["leaf_sizes"], dtype=np.int64) for level in levels]
    )
    flat.leaf_size = leaf_sizes
    leaf_start = np.zeros(n_nodes, dtype=np.int64)
    nz = leaf_sizes > 0
    leaf_start[nz] = np.cumsum(leaf_sizes[nz]) - leaf_sizes[nz]
    flat.leaf_start = leaf_start
    if nz.any():
        flat_idx, _ = _expand_csr(leaf_pos[nz], leaf_sizes[nz])
        flat.leaf_ids = np.asarray(perm[flat_idx], dtype=np.int64)
    else:
        flat.leaf_ids = np.empty(0, dtype=np.int64)
    flat.leaf_node_of = np.empty(len(flat.leaf_ids), dtype=np.int64)
    leafy = np.flatnonzero(flat.leaf_size > 0)
    flat.leaf_node_of[flat.leaf_ids] = np.repeat(leafy, flat.leaf_size[leafy])
    return flat


# ---------------------------------------------------------------------------
# R-tree: Sort-Tile-Recursive packing (node-for-node identical to the
# object-graph build in repro.indexes.rtree)
# ---------------------------------------------------------------------------


def _str_order(centers: np.ndarray, max_entries: int) -> np.ndarray:
    """STR ordering of node centres — verbatim ``RTreeIndex._str_order``.

    Operates on per-level node counts (hundreds at most), so the recursion
    itself is cheap; keeping it literal guarantees the packed levels group
    exactly like the object build's.
    """
    d = centers.shape[1]
    idx = np.arange(len(centers), dtype=np.int64)

    def tile(sub: np.ndarray, dim: int) -> List[np.ndarray]:
        if len(sub) <= max_entries or dim == d - 1:
            return [sub[_stable_argsort(centers[sub, dim % d])]]
        n_groups = math.ceil(len(sub) / max_entries)
        s = math.ceil(n_groups ** (1.0 / (d - dim)))
        slab = math.ceil(len(sub) / s)
        order = sub[_stable_argsort(centers[sub, dim])]
        out: List[np.ndarray] = []
        for start in range(0, len(order), slab):
            out.extend(tile(order[start : start + slab], dim + 1))
        return out

    return np.concatenate(tile(idx, 0))


def bulk_build_str(points: np.ndarray, max_entries: int) -> FlatTree:
    """STR-packed R-tree image, identical to flattening the object build.

    Phase 1 tiles the point ids into full leaves with the same stable sorts
    and slab arithmetic as ``RTreeIndex._str_tile_points``, advanced one
    sort dimension per pass over *all* surviving slabs; leaf MBRs and counts
    reduce with one ``reduceat`` instead of one numpy call per leaf.  Phase 2
    repacks level MBR centres upward exactly like ``_pack_upward`` (same
    ``_str_order`` grouping, same union order), then a top-down renumbering
    pass emits the levels in the BFS order :func:`flatten_tree` would
    produce.
    """
    n, d = points.shape
    M = int(max_entries)
    perm = np.arange(n, dtype=np.int64)
    leaf_start_parts: List[np.ndarray] = []
    leaf_stop_parts: List[np.ndarray] = []
    active: List[Tuple[int, int]] = [(0, n)]
    for dim in range(d):
        if not active:
            break
        coord = np.ascontiguousarray(points[:, dim])
        # One contiguous snapshot of the sort keys in current perm order;
        # segments are disjoint, so per-segment writes never invalidate it.
        vals = coord if dim == 0 else coord[perm]
        nxt: List[Tuple[int, int]] = []
        sort_starts: List[int] = []
        sort_stops: List[int] = []
        for s, e in active:
            if e - s <= M:
                leaf_start_parts.append(np.array([s], dtype=np.int64))
                leaf_stop_parts.append(np.array([e], dtype=np.int64))
            else:
                sort_starts.append(s)
                sort_stops.append(e)
        if not sort_starts:
            break
        if len(sort_starts) == 1:
            s, e = sort_starts[0], sort_stops[0]
            perm[s:e] = perm[s:e][_stable_argsort(vals[s:e])]
        else:
            seg_s = np.array(sort_starts, dtype=np.int64)
            _sort_within_segments(
                perm, seg_s, np.array(sort_stops, dtype=np.int64) - seg_s, vals
            )
        if dim == d - 1:
            # Last dimension: chop every sorted run into consecutive leaves,
            # all segments in one expansion.
            seg_s = np.array(sort_starts, dtype=np.int64)
            seg_e = np.array(sort_stops, dtype=np.int64)
            counts = -((seg_s - seg_e) // M)  # ceil((e - s) / M)
            pos, local, _ = _expand_segments(seg_s, counts)
            st = (pos - local) + local * M
            leaf_start_parts.append(st)
            leaf_stop_parts.append(np.minimum(st + M, np.repeat(seg_e, counts)))
        else:
            for s, e in zip(sort_starts, sort_stops):
                size = e - s
                n_leaves = math.ceil(size / M)
                s_count = math.ceil(n_leaves ** (1.0 / (d - dim)))
                slab = math.ceil(size / s_count)
                nxt.extend((st, min(st + slab, e)) for st in range(s, e, slab))
        active = nxt
    # Depth-first recursion emits leaves left to right over contiguous
    # position ranges, so position order *is* recursion order.
    starts = np.concatenate(leaf_start_parts)
    stops = np.concatenate(leaf_stop_parts)
    by_pos = np.argsort(starts, kind="stable")
    starts = starts[by_pos]
    sizes = stops[by_pos] - starts
    # Leaf MBRs: per-dimension contiguous gathers + 1-D reduceat (a row
    # gather of (n, d) points costs several times more than d 1-D passes).
    n_leaves_total = len(starts)
    lo = np.empty((n_leaves_total, d), dtype=np.float64)
    hi = np.empty((n_leaves_total, d), dtype=np.float64)
    for k in range(d):
        colv = np.ascontiguousarray(points[:, k])[perm]
        lo[:, k] = np.minimum.reduceat(colv, starts)
        hi[:, k] = np.maximum.reduceat(colv, starts)
    nc = sizes.copy()

    # Bottom-up packing: permute each level into STR order the moment its
    # parents form, remembering per-parent child ranges (local positions).
    lev_lo, lev_hi, lev_nc = [lo], [hi], [nc]
    lev_child_start: List[Optional[np.ndarray]] = [None]
    lev_child_count: List[Optional[np.ndarray]] = [None]
    leaf_starts, leaf_sizes = starts, sizes
    while len(lev_lo[-1]) > 1:
        cur_lo, cur_hi = lev_lo[-1], lev_hi[-1]
        order = _str_order((cur_lo + cur_hi) / 2.0, M)
        lev_lo[-1] = cur_lo = cur_lo[order]
        lev_hi[-1] = cur_hi = cur_hi[order]
        lev_nc[-1] = lev_nc[-1][order]
        if lev_child_start[-1] is not None:
            lev_child_start[-1] = lev_child_start[-1][order]
            lev_child_count[-1] = lev_child_count[-1][order]
        else:  # leaf level: the id ranges travel with their nodes
            leaf_starts = leaf_starts[order]
            leaf_sizes = leaf_sizes[order]
        length = len(cur_lo)
        group = np.arange(0, length, M, dtype=np.int64)
        lev_lo.append(np.minimum.reduceat(cur_lo, group, axis=0))
        lev_hi.append(np.maximum.reduceat(cur_hi, group, axis=0))
        lev_nc.append(np.add.reduceat(lev_nc[-1], group))
        lev_child_start.append(group)
        lev_child_count.append(np.diff(np.append(group, length)))

    # Top-down renumbering: each level's final BFS order is the concatenation
    # of its (ordered) parents' child ranges.
    n_levels = len(lev_lo)
    orderings: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    for li in range(n_levels - 1, 0, -1):
        po = orderings[-1]
        cs = lev_child_start[li][po]
        cc = lev_child_count[li][po]
        child_order, _ = _expand_csr(cs, cc)
        orderings.append(child_order)
    orderings.reverse()  # orderings[li] is the final order of level li

    levels = []
    for li in range(n_levels - 1, -1, -1):  # top-down
        o = orderings[li]
        cc = lev_child_count[li]
        level = {
            "lo": lev_lo[li][o],
            "hi": lev_hi[li][o],
            "nc": lev_nc[li][o],
            "child_count": cc[o] if cc is not None else np.zeros(len(o), dtype=np.int64),
        }
        if li == 0 and lev_child_start[0] is None:
            level["leaf_pos"] = leaf_starts[o]
            level["leaf_sizes"] = leaf_sizes[o]
        else:
            level["leaf_pos"] = np.zeros(len(o), dtype=np.int64)
            level["leaf_sizes"] = np.zeros(len(o), dtype=np.int64)
        levels.append(level)
    return _assemble_flat(levels, perm, d)


# ---------------------------------------------------------------------------
# k-d tree: presorted median split, level-synchronous
# ---------------------------------------------------------------------------


def bulk_build_kdtree(
    points: np.ndarray,
    leaf_size: int,
    perms: Optional[np.ndarray] = None,
    state_out: Optional[dict] = None,
) -> FlatTree:
    """Balanced k-d tree image built level-by-level from presorted perms.

    One permutation per dimension, each kept sorted by its coordinate within
    every tree segment.  A level then costs a handful of O(n) passes: tight
    boxes are the first/last elements of each segment per dimension, the
    widest-axis median split is *positional* in the split axis's permutation,
    and the other permutations follow through a vectorised stable two-way
    partition (exclusive-cumsum ranking) — no per-level sorting.

    ``perms`` supplies precomputed ``(d, n)`` coordinate-sorted permutations
    (any fixed tie order is a valid input — the split rule only needs sorted
    order); delta compaction passes the :func:`merge_dim_perms` merge of the
    previous fit's perms here, skipping the full re-sorts.  ``state_out``
    (a dict) receives a pristine ``"perms"`` copy for exactly that reuse.
    """
    n, d = points.shape
    leaf_size = int(leaf_size)
    coords = [np.ascontiguousarray(points[:, k]) for k in range(d)]
    idx_dtype = np.int32 if n < 2**31 - 1 else np.int64
    if perms is None:
        P = np.empty((d, n), dtype=idx_dtype)
        for k in range(d):
            # Introsort: deterministic; the in-segment tie order is unspecified
            # but fixed, which is all the bulk shape contract needs.
            P[k] = np.argsort(coords[k]).astype(idx_dtype, copy=False)
    else:
        P = np.asarray(perms).astype(idx_dtype, copy=True)  # partitioned in place
    if state_out is not None:
        state_out["perms"] = P.copy()

    starts = np.zeros(1, dtype=idx_dtype)
    sizes = np.full(1, n, dtype=idx_dtype)
    gl = np.empty(n, dtype=bool)  # per-id "goes left" bits, reused per level
    levels = []
    while True:
        S = len(starts)
        ends = starts + sizes - 1
        lo = np.empty((S, d), dtype=np.float64)
        hi = np.empty((S, d), dtype=np.float64)
        for k in range(d):
            lo[:, k] = coords[k][P[k][starts]]
            hi[:, k] = coords[k][P[k][ends]]
        ext = hi - lo
        axis = np.argmax(ext, axis=1)
        # Same rule as the reference: split while over capacity and the
        # widest axis still has extent (all-coincident segments become
        # leaves regardless of size).
        split = (sizes > leaf_size) & (ext[np.arange(S), axis] > 0.0)
        levels.append(
            {
                "lo": lo,
                "hi": hi,
                "nc": sizes,
                "child_count": np.where(split, 2, 0),
                "leaf_pos": np.where(split, 0, starts),
                "leaf_sizes": np.where(split, 0, sizes),
            }
        )
        if not split.any():
            break
        sp_starts = starts[split]
        sp_sizes = sizes[split]
        sp_axis = axis[split]
        half = (sp_sizes // 2).astype(idx_dtype)
        # Group the splitting segments by split axis and expand each group
        # once; the expansions are shared between the side-marking pass and
        # every other dimension's partition.
        groups = []
        for g in range(d):
            m = sp_axis == g
            if not m.any():
                continue
            st, sz, hf = sp_starts[m], sp_sizes[m], half[m]
            pos, local, off = _expand_segments(st, sz)
            hf_rep = np.repeat(hf, sz)
            # The median split is purely positional in the split axis's
            # permutation; mark each member id's side there.
            gl[P[g][pos]] = local < hf_rep
            groups.append((g, sz, pos, local, off, hf_rep))
        # Carry the split through the other dimensions' permutations with a
        # stable two-way partition (left block then right block, original
        # order preserved inside each block).
        for k in range(d):
            for g, sz, pos, local, off, hf_rep in groups:
                if g == k:
                    continue  # positional in its own axis: already in place
                vals = P[k][pos]
                left = gl[vals]
                excl = np.cumsum(left, dtype=idx_dtype)
                excl -= left
                lefts = excl - np.repeat(excl[off], sz)
                newpos = (pos - local) + np.where(
                    left, lefts, hf_rep + (local - lefts)
                )
                P[k][newpos] = vals
        # Refine segments: each split produces (left, right) in place; the
        # finalised leaves keep their (now inert) ranges in the perms.
        n_split = int(split.sum())
        new_starts = np.empty(2 * n_split, dtype=idx_dtype)
        new_sizes = np.empty(2 * n_split, dtype=idx_dtype)
        new_starts[0::2] = sp_starts
        new_sizes[0::2] = half
        new_starts[1::2] = sp_starts + half
        new_sizes[1::2] = sp_sizes - half
        starts, sizes = new_starts, new_sizes
    return _assemble_flat(levels, P[0].astype(np.int64, copy=False), d)


# ---------------------------------------------------------------------------
# Quadtree: Morton-key bulk subdivision
# ---------------------------------------------------------------------------

_MAX_MORTON_DEPTH = 32  # 2 bits per level in a uint64 key


def _spread_bits(a: np.ndarray) -> np.ndarray:
    """Interleave zeros between the low 32 bits of ``a`` (Morton spread)."""
    a = a.astype(np.uint64)
    a = (a | (a << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    a = (a | (a << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    a = (a | (a << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    a = (a | (a << np.uint64(2))) & np.uint64(0x3333333333333333)
    a = (a | (a << np.uint64(1))) & np.uint64(0x5555555555555555)
    return a


def _compact_bits(a: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits` (drop the odd bits)."""
    a = a & np.uint64(0x5555555555555555)
    a = (a | (a >> np.uint64(1))) & np.uint64(0x3333333333333333)
    a = (a | (a >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    a = (a | (a >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    a = (a | (a >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    a = (a | (a >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return a.astype(np.int64)


def _grid_cells(v: np.ndarray, lo: float, hi: float, w: float, ncell: int) -> np.ndarray:
    """Depth-D cell index per coordinate, consistent with the corner formula.

    Cells are ``[corner(i), corner(i + 1))`` with
    ``corner(i) = min(lo + i * w, hi)`` (and the last cell closed at ``hi``).
    Floor division lands within one cell of the truth; the fix-up loop nudges
    until every value satisfies the *same comparisons* the node boxes are
    built from, so membership and box bounds can never disagree.
    """
    iv = np.clip(((v - lo) / w).astype(np.int64), 0, ncell - 1)
    for _ in range(64):
        lo_c = np.minimum(lo + iv * w, hi)
        hi_c = np.minimum(lo + (iv + 1) * w, hi)
        bad_lo = v < lo_c
        bad_hi = (v >= hi_c) & (iv < ncell - 1)
        if not bad_lo.any() and not bad_hi.any():
            break
        iv = iv - bad_lo + bad_hi
    return iv


def morton_keys(
    points: np.ndarray, box_lo: np.ndarray, box_hi: np.ndarray, max_depth: int
) -> Optional[np.ndarray]:
    """Depth-``max_depth`` Morton key per 2-D point w.r.t. a fixed root box.

    Power-of-two scalings of the extent are exact, so corner values at
    depth ``t`` reproduce themselves at every deeper level (see
    :func:`_grid_cells`).  Returns ``None`` when the box has no usable
    lattice (underflowing or non-finite cell widths).
    """
    D = int(max_depth)
    ext = box_hi - box_lo
    ncell = 1 << D
    wx = ext[0] * (2.0 ** -D)
    wy = ext[1] * (2.0 ** -D)
    if not (wx > 0.0 and wy > 0.0 and np.isfinite(ext).all()):
        return None
    x = np.ascontiguousarray(points[:, 0])
    y = np.ascontiguousarray(points[:, 1])
    ix = _grid_cells(x, box_lo[0], box_hi[0], wx, ncell)
    iy = _grid_cells(y, box_lo[1], box_hi[1], wy, ncell)
    return (_spread_bits(iy) << np.uint64(1)) | _spread_bits(ix)


def bulk_build_quadtree(
    points: np.ndarray,
    capacity: int,
    max_depth: int,
    presorted: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    state_out: Optional[dict] = None,
) -> Optional[FlatTree]:
    """PR-quadtree image from one Morton-key pass (2-D).

    The quadtree's decomposition is fixed geometry, so every point's full
    quadrant path is computable up front: depth-``max_depth`` grid cells from
    exact power-of-two cell widths, interleaved into one Morton key per
    point.  A single sort then groups *all* levels at once and the level
    loop only walks segment boundaries (prefix changes in the sorted keys).
    Node boxes use the same clamped corner formula as cell membership —
    corners nest exactly across depths, and every point lies inside its
    leaf's box, which is what the contained/intersected query
    classifications rely on.

    Returns ``None`` when ``max_depth`` exceeds the 32 levels a 64-bit
    Morton key can encode; the caller falls back to the object-graph build.

    ``presorted`` supplies ``(sorted_keys, order)`` — Morton keys already in
    sorted order plus the matching point-id permutation — skipping the key
    derivation and sort entirely; delta compaction passes the
    :func:`merge_morton_runs` merge of two sorted runs here (valid only when
    the combined :func:`_padded_box` equals the one the keys were derived
    from).  ``state_out`` (a dict) receives ``"box"``, ``"keys"`` and
    ``"order"`` for exactly that reuse.
    """
    if max_depth > _MAX_MORTON_DEPTH:
        return None
    n, d = points.shape
    capacity = int(capacity)
    D = int(max_depth)
    box_lo, box_hi = _padded_box(points)
    ext = box_hi - box_lo  # positive on both axes after padding
    if presorted is None:
        key = morton_keys(points, box_lo, box_hi, D)
        if key is None:
            # Denormal-scale extents underflow the depth-D cell width to zero
            # (and infinite extents have no grid at all): no usable Morton
            # lattice — fall back to the object-graph build.
            return None
        # Stable: ties (points sharing a final cell) land in id order inside
        # their leaf — results never see the order, but it makes a
        # merge-compacted image node-for-node identical to a fresh build.
        order = _stable_argsort(key)
        ks = key[order]
    else:
        ks, order = presorted
        ks = np.asarray(ks, dtype=np.uint64)
        order = np.asarray(order, dtype=np.int64)
    if state_out is not None:
        state_out["box"] = (box_lo, box_hi)
        state_out["keys"] = ks
        state_out["order"] = order

    def _node_boxes(starts: np.ndarray, depth: int) -> Tuple[np.ndarray, np.ndarray]:
        L = len(starts)
        lo_b = np.empty((L, 2), dtype=np.float64)
        hi_b = np.empty((L, 2), dtype=np.float64)
        if depth == 0:
            lo_b[:] = box_lo
            hi_b[:] = box_hi
            return lo_b, hi_b
        pref = ks[starts] >> np.uint64(2 * (D - depth))
        jx = _compact_bits(pref)
        jy = _compact_bits(pref >> np.uint64(1))
        top = 1 << depth
        wxt = ext[0] * (2.0 ** -depth)
        wyt = ext[1] * (2.0 ** -depth)
        lo_b[:, 0] = np.minimum(box_lo[0] + jx * wxt, box_hi[0])
        lo_b[:, 1] = np.minimum(box_lo[1] + jy * wyt, box_hi[1])
        hi_b[:, 0] = np.where(
            jx + 1 == top, box_hi[0], np.minimum(box_lo[0] + (jx + 1) * wxt, box_hi[0])
        )
        hi_b[:, 1] = np.where(
            jy + 1 == top, box_hi[1], np.minimum(box_lo[1] + (jy + 1) * wyt, box_hi[1])
        )
        return lo_b, hi_b

    levels = []
    seg_start = np.zeros(1, dtype=np.int64)
    seg_stop = np.full(1, n, dtype=np.int64)
    depth = 0
    while True:
        sizes = seg_stop - seg_start
        split = (sizes > capacity) & (depth < D)
        lo_b, hi_b = _node_boxes(seg_start, depth)
        level = {
            "lo": lo_b,
            "hi": hi_b,
            "nc": sizes,
            "leaf_pos": np.where(split, 0, seg_start),
            "leaf_sizes": np.where(split, 0, sizes),
        }
        levels.append(level)
        if not split.any():
            level["child_count"] = np.zeros(len(sizes), dtype=np.int64)
            break
        # Children = runs of equal depth-(t+1) prefixes inside each split
        # segment: one global prefix-change pass, then boundary arithmetic.
        shift = np.uint64(2 * (D - depth - 1))
        pref = ks >> shift
        bp = np.flatnonzero(pref[1:] != pref[:-1]) + 1
        sp_start = seg_start[split]
        sp_stop = seg_stop[split]
        first_bp = np.searchsorted(bp, sp_start, side="right")
        stop_bp = np.searchsorted(bp, sp_stop, side="left")
        inner = stop_bp - first_bp
        child_counts = inner + 1
        level["child_count"] = np.zeros(len(sizes), dtype=np.int64)
        level["child_count"][split] = child_counts
        total = int(child_counts.sum())
        cs = np.empty(total, dtype=np.int64)
        first_pos = np.cumsum(child_counts) - child_counts
        cs[first_pos] = sp_start
        rest = np.ones(total, dtype=bool)
        rest[first_pos] = False
        if rest.any():
            take, _ = _expand_csr(first_bp, inner)
            cs[rest] = bp[take]
        ce = np.empty(total, dtype=np.int64)
        ce[:-1] = cs[1:]
        ce[first_pos + child_counts - 1] = sp_stop
        seg_start, seg_stop = cs, ce
        depth += 1
    return _assemble_flat(levels, order.astype(np.int64, copy=False), d)


def _padded_box(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The quadtree root box: tight bounds, degenerate sides inflated.

    Shared by the object and bulk quadtree builds so both decompose the
    exact same root region.  (Reduced along contiguous columns — an
    axis-0 reduction over C-ordered points is strided and several times
    slower; the values are identical.)
    """
    cols = np.ascontiguousarray(points.T)
    lo = cols.min(axis=1)
    hi = cols.max(axis=1)
    extent = hi - lo
    pad = np.where(extent == 0.0, 1.0, 0.0)
    return lo - pad, hi + pad


# ---------------------------------------------------------------------------
# Sorted-order merges (LSM-style delta compaction)
# ---------------------------------------------------------------------------


def merge_dim_perms(
    points: np.ndarray, base_perms: np.ndarray, base_n: int
) -> np.ndarray:
    """Merge per-dimension sorted perms of a base prefix with its delta suffix.

    ``base_perms`` is the ``(d, base_n)`` coordinate-sorted permutation set a
    previous :func:`bulk_build_kdtree` ran from (its ``state_out["perms"]``);
    ``points`` is the combined ``(n, d)`` array whose first ``base_n`` rows
    are the base points.  Each dimension sorts the delta ids alone
    (O(Δ log Δ)) and interleaves them into the base order with one
    ``searchsorted`` — ``side="right"`` keeps base ids ahead of equal-valued
    delta ids, so the result is a valid stable-ish sorted perm without
    re-sorting the base.
    """
    n, d = points.shape
    merged = np.empty((d, n), dtype=base_perms.dtype)
    for k in range(d):
        col = np.ascontiguousarray(points[:, k])
        delta_order = np.argsort(col[base_n:]) + base_n
        ins = np.searchsorted(col[base_perms[k]], col[delta_order], side="right")
        merged[k] = np.insert(base_perms[k], ins, delta_order)
    return merged


def merge_morton_runs(
    base_keys: np.ndarray,
    base_order: np.ndarray,
    delta_keys: np.ndarray,
    base_n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge a sorted base Morton run with an *unsorted* delta key array.

    ``delta_keys[i]`` belongs to point ``base_n + i`` (keys must come from
    the same root box / depth as ``base_keys``).  Returns the combined
    ``(sorted_keys, order)`` pair for :func:`bulk_build_quadtree`'s
    ``presorted`` input.  ``side="right"`` plus the stable delta sort makes
    the merge exactly the stable argsort of the concatenated key array —
    the compacted image is node-for-node what a fresh build would produce.
    """
    dord = _stable_argsort(delta_keys)
    dks = delta_keys[dord]
    ins = np.searchsorted(base_keys, dks, side="right")
    merged_keys = np.insert(base_keys, ins, dks)
    merged_order = np.insert(base_order, ins, dord.astype(np.int64) + base_n)
    return merged_keys, merged_order


# ---------------------------------------------------------------------------
# Object-graph materialisation (reference frontiers, introspection)
# ---------------------------------------------------------------------------


def tree_from_flat(flat: FlatTree):
    """Materialise a ``TreeNode`` graph from a flat image (flat-id order).

    Bulk-built indexes have no object tree; the per-object reference
    frontiers (``frontier="heap"/"stack"``), structure introspection and
    tests that walk ``index.root`` trigger this lazily.  The returned root
    is finalised (counts, tuple boxes) and ``flat.nodes`` is filled so the
    per-run ``maxrho`` annotation can scatter vectorised values back onto
    the nodes.
    """
    from repro.indexes.treebase import TreeNode

    child_start = flat.child_start
    child_count = flat.child_count
    leaf_start = flat.leaf_start
    leaf_size = flat.leaf_size
    nodes = []
    for i in range(flat.n_nodes):
        if child_count[i] > 0:
            node = TreeNode(flat.lo[i], flat.hi[i], children=[])
        else:
            ids = flat.leaf_ids[leaf_start[i] : leaf_start[i] + leaf_size[i]]
            node = TreeNode(flat.lo[i], flat.hi[i], ids=np.asarray(ids, dtype=np.int64))
        nodes.append(node)
    for i in range(flat.n_nodes):
        cc = int(child_count[i])
        if cc > 0:
            cs = int(child_start[i])
            nodes[i].children = nodes[cs : cs + cc]
    root = nodes[0]
    root.finalize_counts()
    flat.nodes = nodes
    return root
