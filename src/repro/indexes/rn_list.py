"""Approximate list-based indexes — the RN-List of paper Section 3.3.

For memory-constrained systems the paper truncates every N-List at a
*neighbour threshold* τ: only neighbours with ``dist < τ`` are stored (the
Reduced Neighbor List).  Consequences, all reproduced here:

* ρ is **exact** whenever ``dc ≤ τ``; for ``dc > τ`` no search is performed
  and the (undercounted) list length is returned — the paper's "running time
  drops at the expense of loss of accuracy";
* δ is exact for objects whose denser neighbour lies within τ (the vast
  majority: non-peaks have small δ); objects whose RN-List contains no denser
  neighbour get δ set to a large value so they still surface in the decision
  graph as centre/outlier candidates;
* memory shrinks from Θ(n²) to Θ(n·k_τ), the paper's Figure 9b.

A row that happens to contain *all* ``n-1`` neighbours is provably complete,
so its peak δ uses the exact ``max_q dist`` convention — which makes a
τ ≥ diameter RN-List bit-identical to the exact List Index (tested).

:class:`RNCHIndex` layers cumulative histograms over the truncated lists,
i.e. the approximate variant of the CH Index (the paper applies the
approximation "to the above indices", plural).

Both the ρ search and the δ scan run through the batched CSR kernels in
:mod:`repro.indexes.kernels`; ``rho_all_multi`` answers a whole ``dc`` grid
in one call and ``quantities_multi`` shares the pre-gathered first scan
block across the grid.
"""

from __future__ import annotations

from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, DPCQuantities, TieBreak
from repro.geometry.distance import Metric
from repro.indexes.base import DPCIndex
from repro.indexes.kernels import (
    bounded_searchsorted,
    build_row_histograms,
    ch_rho_from_histograms,
    scan_first_denser,
)
from repro.indexes.ch_index import CumulativeHistogramMixin
from repro.indexes.list_index import _order_key, sweep_quantities

__all__ = ["RNListIndex", "RNCHIndex"]


class RNListIndex(DPCIndex):
    """Truncated (approximate) List Index with neighbour threshold τ.

    Parameters
    ----------
    tau:
        Truncation radius.  The paper's guidance: "usually τ should be set to
        a large value greater than any possible value of dc to be tested".
    metric, build_block_rows, scan_block:
        As in :class:`~repro.indexes.list_index.ListIndex`.
    """

    name: ClassVar[str] = "rn-list"
    exact: ClassVar[bool] = False

    def __init__(
        self,
        tau: float,
        metric: "str | Metric" = "euclidean",
        build_block_rows: int = 512,
        scan_block: int = 32,
    ):
        super().__init__(metric)
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if build_block_rows <= 0:
            raise ValueError(f"build_block_rows must be positive, got {build_block_rows}")
        if scan_block <= 0:
            raise ValueError(f"scan_block must be positive, got {scan_block}")
        self.tau = float(tau)
        self.build_block_rows = build_block_rows
        self.scan_block = scan_block
        # CSR layout: row p occupies [offsets[p], offsets[p+1]) in ids/dists.
        self._offsets: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._dists: Optional[np.ndarray] = None
        self._big_delta: float = float("inf")

    # -- construction ------------------------------------------------------------

    def _build(self) -> None:
        points = self.points
        n = len(points)
        if n < 2:
            raise ValueError(f"{type(self).__name__} needs at least 2 points")
        all_ids = np.arange(n, dtype=np.int32)
        row_ids: list = []
        row_dists: list = []
        lengths = np.empty(n, dtype=np.int64)
        max_seen = 0.0
        for start in range(0, n, self.build_block_rows):
            stop = min(start + self.build_block_rows, n)
            block = self.metric.cross(points[start:stop], points)
            max_seen = max(max_seen, float(block.max()))
            for i, p in enumerate(range(start, stop)):
                row = block[i]
                keep = (row < self.tau) & (all_ids != p)
                neigh = all_ids[keep]
                d = row[keep]
                sorting = np.argsort(d, kind="stable")
                row_ids.append(neigh[sorting])
                row_dists.append(d[sorting])
                lengths[p] = len(neigh)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        self._offsets = offsets
        self._ids = (
            np.concatenate(row_ids) if offsets[-1] else np.empty(0, dtype=np.int32)
        )
        self._dists = (
            np.concatenate(row_dists) if offsets[-1] else np.empty(0, dtype=np.float64)
        )
        # "A large value" for truncated peaks: anything ≥ the data diameter
        # keeps them at the top of the decision graph.
        self._big_delta = max(max_seen, self.tau)

    def row_lengths(self) -> np.ndarray:
        self._require_fitted()
        return np.diff(self._offsets)

    # -- ρ query -------------------------------------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        offsets = self._offsets
        if dc > self.tau:
            # Paper 5.3.1: beyond τ no search happens; the truncated length is
            # the (approximate) answer.
            return np.diff(offsets)
        pos = bounded_searchsorted(self._dists, offsets[:-1], offsets[1:], float(dc))
        self._stats.binary_searches += self.n
        return pos - offsets[:-1]

    def rho_all_multi(self, dcs) -> np.ndarray:
        """One batched binary search for every ``dc ≤ τ`` of the grid."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        offsets = self._offsets
        rho = np.empty((len(dcs), self.n), dtype=np.int64)
        beyond = dcs > self.tau
        if beyond.any():
            rho[beyond] = np.diff(offsets)[None, :]
        within = np.flatnonzero(~beyond)
        if len(within):
            pos = bounded_searchsorted(
                self._dists,
                offsets[:-1, None],
                offsets[1:, None],
                dcs[within][None, :],
            )
            rho[within] = (pos - offsets[:-1, None]).T
            self._stats.binary_searches += self.n * len(within)
        return rho

    # -- δ query ---------------------------------------------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        self._require_fitted()
        if len(order) != self.n:
            raise ValueError(f"order has {len(order)} objects, index has {self.n}")
        return self._delta_from_order(order)

    def _delta_from_order(
        self, order: DensityOrder, prefetch=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = self.n
        offsets, ids, dists = self._offsets, self._ids, self._dists
        # Vectorised near-to-far scan over the CSR rows (Algorithm 2 lines
        # 7-13 restricted to the stored τ-neighbourhood).
        delta, mu, resolved, scanned = scan_first_denser(
            offsets, ids, dists, _order_key(order), block=self.scan_block, prefetch=prefetch
        )
        self._stats.objects_scanned += scanned

        # No denser neighbour within τ.  Two cases:
        lengths = np.diff(offsets)
        for p in np.flatnonzero(~resolved):
            if lengths[p] == n - 1:
                # Complete row ⇒ p is a true peak; exact convention applies.
                delta[p] = dists[offsets[p + 1] - 1]
            else:
                delta[p] = self._big_delta
        return delta, mu

    # -- multi-dc sweep ----------------------------------------------------------------

    def quantities_multi(
        self, dcs, tie_break: "str | TieBreak" = TieBreak.ID
    ) -> "list[DPCQuantities]":
        self._require_fitted()
        return sweep_quantities(
            self, dcs, self._offsets, self._ids, self._dists, tie_break
        )

    # -- bookkeeping --------------------------------------------------------------------

    def memory_bytes(self) -> int:
        if self._offsets is None:
            return 0
        return int(self._offsets.nbytes + self._ids.nbytes + self._dists.nbytes)


class RNCHIndex(CumulativeHistogramMixin, RNListIndex):
    """Approximate CH Index: cumulative histograms over truncated RN-Lists.

    ρ queries use the O(1) bin lookup of Algorithm 4 restricted to the stored
    τ-neighbourhood; δ queries are inherited from :class:`RNListIndex`.
    As in :class:`~repro.indexes.ch_index.CHIndex`, ``bin_width`` is the
    configured value (``None`` = auto) and ``bin_width_`` the one resolved at
    fit time, so refits never reuse a stale width.
    """

    name: ClassVar[str] = "rn-ch"
    exact: ClassVar[bool] = False

    def __init__(
        self,
        tau: float,
        metric: "str | Metric" = "euclidean",
        bin_width: Optional[float] = None,
        default_bins: int = 64,
        build_block_rows: int = 512,
        scan_block: int = 32,
    ):
        super().__init__(tau, metric, build_block_rows, scan_block)
        self._init_bin_width(bin_width, default_bins)
        self._hist_offsets: Optional[np.ndarray] = None
        self._hist_values: Optional[np.ndarray] = None

    def _build(self) -> None:
        super()._build()
        if self.bin_width is None:
            self.bin_width_ = self.tau / self.default_bins
        else:
            self.bin_width_ = float(self.bin_width)
        w = float(self.bin_width_)
        offsets = self._offsets
        n = self.n
        lengths = np.diff(offsets)
        # Bins must cover every stored neighbour, i.e. up to τ.
        n_bins = np.full(n, int(np.floor(self.tau / w)) + 1, dtype=np.int64)
        edges = w * np.arange(1, int(n_bins[0]) + 1, dtype=np.float64)
        hist_offsets, values = build_row_histograms(self._dists, offsets, n_bins, edges)
        values[hist_offsets[1:] - 1] = lengths
        self._hist_offsets = hist_offsets
        self._hist_values = values

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        if dc > self.tau:
            return super().rho_all(dc)
        rho, scanned, searches = ch_rho_from_histograms(
            self._hist_offsets,
            self._hist_values,
            self._dists,
            self._offsets[:-1],
            float(dc),
            self._resolved_bin_width(),
        )
        self._stats.objects_scanned += scanned
        self._stats.binary_searches += searches
        return rho

    def rho_all_multi(self, dcs) -> np.ndarray:
        """Histogram-guided ρ per cut-off (each already one batched pass)."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        return np.stack([self.rho_all(float(dc)) for dc in dcs])

    def histogram_memory_bytes(self) -> int:
        if self._hist_values is None:
            return 0
        return int(self._hist_values.nbytes + self._hist_offsets.nbytes)

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.histogram_memory_bytes()
