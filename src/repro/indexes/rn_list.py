"""Approximate list-based indexes — the RN-List of paper Section 3.3.

For memory-constrained systems the paper truncates every N-List at a
*neighbour threshold* τ: only neighbours with ``dist < τ`` are stored (the
Reduced Neighbor List).  Consequences, all reproduced here:

* ρ is **exact** whenever ``dc ≤ τ``; for ``dc > τ`` no search is performed
  and the (undercounted) list length is returned — the paper's "running time
  drops at the expense of loss of accuracy";
* δ is exact for objects whose denser neighbour lies within τ (the vast
  majority: non-peaks have small δ); objects whose RN-List contains no denser
  neighbour get δ set to a large value so they still surface in the decision
  graph as centre/outlier candidates;
* memory shrinks from Θ(n²) to Θ(n·k_τ), the paper's Figure 9b.

A row that happens to contain *all* ``n-1`` neighbours is provably complete,
so its peak δ uses the exact ``max_q dist`` convention — which makes a
τ ≥ diameter RN-List bit-identical to the exact List Index (tested).

:class:`RNCHIndex` layers cumulative histograms over the truncated lists,
i.e. the approximate variant of the CH Index (the paper applies the
approximation "to the above indices", plural).

Both the ρ search and the δ scan run through the batched CSR kernels in
:mod:`repro.indexes.kernels`; ``rho_all_multi`` answers a whole ``dc`` grid
in one call and ``quantities_multi`` shares the pre-gathered first scan
block across the grid.
"""

from __future__ import annotations

from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, DPCQuantities, TieBreak
from repro.geometry.distance import Metric
from repro.indexes import parallel
from repro.indexes.base import DPCIndex
from repro.indexes.kernels import build_row_histograms
from repro.indexes.ch_index import CumulativeHistogramMixin
from repro.indexes.list_index import sharded_delta_scan, sweep_quantities

__all__ = ["RNListIndex", "RNCHIndex"]


class RNListIndex(DPCIndex):
    """Truncated (approximate) List Index with neighbour threshold τ.

    Parameters
    ----------
    tau:
        Truncation radius.  The paper's guidance: "usually τ should be set to
        a large value greater than any possible value of dc to be tested".
    metric, build_block_rows, scan_block:
        As in :class:`~repro.indexes.list_index.ListIndex`.
    """

    name: ClassVar[str] = "rn-list"
    exact: ClassVar[bool] = False

    def __init__(
        self,
        tau: float,
        metric: "str | Metric" = "euclidean",
        build_block_rows: int = 512,
        scan_block: int = 32,
        backend: "str" = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        super().__init__(metric, backend=backend, n_jobs=n_jobs, chunk_size=chunk_size)
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if build_block_rows <= 0:
            raise ValueError(f"build_block_rows must be positive, got {build_block_rows}")
        if scan_block <= 0:
            raise ValueError(f"scan_block must be positive, got {scan_block}")
        self.tau = float(tau)
        self.build_block_rows = build_block_rows
        self.scan_block = scan_block
        # CSR layout: row p occupies [offsets[p], offsets[p+1]) in ids/dists.
        self._offsets: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._dists: Optional[np.ndarray] = None
        self._big_delta: float = float("inf")

    # -- construction ------------------------------------------------------------

    def _build(self) -> None:
        points = self.points
        n = len(points)
        if n < 2:
            raise ValueError(f"{type(self).__name__} needs at least 2 points")
        all_ids = np.arange(n, dtype=np.int32)
        row_ids: list = []
        row_dists: list = []
        lengths = np.empty(n, dtype=np.int64)
        max_seen = 0.0
        for start in range(0, n, self.build_block_rows):
            stop = min(start + self.build_block_rows, n)
            block = self.metric.cross(points[start:stop], points)
            max_seen = max(max_seen, float(block.max()))
            for i, p in enumerate(range(start, stop)):
                row = block[i]
                keep = (row < self.tau) & (all_ids != p)
                neigh = all_ids[keep]
                d = row[keep]
                sorting = np.argsort(d, kind="stable")
                row_ids.append(neigh[sorting])
                row_dists.append(d[sorting])
                lengths[p] = len(neigh)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        self._offsets = offsets
        self._ids = (
            np.concatenate(row_ids) if offsets[-1] else np.empty(0, dtype=np.int32)
        )
        self._dists = (
            np.concatenate(row_dists) if offsets[-1] else np.empty(0, dtype=np.float64)
        )
        # "A large value" for truncated peaks: anything ≥ the data diameter
        # keeps them at the top of the decision graph.
        self._big_delta = max(max_seen, self.tau)

    def row_lengths(self) -> np.ndarray:
        self._require_fitted()
        return np.diff(self._offsets)

    # -- sharded-execution image (repro.indexes.parallel) -------------------------

    def _shard_arrays(self):
        return {"ids": self._ids, "dists": self._dists, "offsets": self._offsets}

    def _shard_meta(self):
        return {"n": self.n}

    # -- ρ query -------------------------------------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        if dc > self.tau:
            # Paper 5.3.1: beyond τ no search happens; the truncated length is
            # the (approximate) answer.
            return np.diff(self._offsets)
        return self._csr_rho(float(dc))

    def _csr_rho(self, needles):
        payloads = [
            {"start": start, "stop": stop, "needles": needles}
            for start, stop in self._execution().plan(self.n)
        ]
        outs = self._dispatch(parallel.csr_rho_task, payloads)
        return np.concatenate([o["rho"] for o in outs]).astype(np.int64, copy=False)

    def rho_all_multi(self, dcs) -> np.ndarray:
        """One sharded batched binary search for every ``dc ≤ τ`` of the grid."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        rho = np.empty((len(dcs), self.n), dtype=np.int64)
        beyond = dcs > self.tau
        if beyond.any():
            rho[beyond] = np.diff(self._offsets)[None, :]
        within = np.flatnonzero(~beyond)
        if len(within):
            pos = self._csr_rho([float(dc) for dc in dcs[within]])
            rho[within] = pos.T
        return rho

    # -- δ query ---------------------------------------------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        self._require_fitted()
        if len(order) != self.n:
            raise ValueError(f"order has {len(order)} objects, index has {self.n}")
        return self._delta_sweep([order], prefetch_width=0)[0]

    def _delta_sweep(self, orders, prefetch_width: int = 0):
        """Sharded near-to-far scans over the stored τ-neighbourhoods."""
        return sharded_delta_scan(self, orders, prefetch_width)

    def _finish_unresolved(self, delta: np.ndarray, mu: np.ndarray) -> None:
        # No denser neighbour within τ.  Two cases:
        n = self.n
        offsets, dists = self._offsets, self._dists
        lengths = np.diff(offsets)
        for p in np.flatnonzero(mu == NO_NEIGHBOR):
            if lengths[p] == n - 1:
                # Complete row ⇒ p is a true peak; exact convention applies.
                delta[p] = dists[offsets[p + 1] - 1]
            else:
                delta[p] = self._big_delta

    # -- multi-dc sweep ----------------------------------------------------------------

    def _quantities_multi_impl(
        self, dcs, tie_break: "str | TieBreak"
    ) -> "list[DPCQuantities]":
        return sweep_quantities(self, dcs, tie_break)

    # -- bookkeeping --------------------------------------------------------------------

    def memory_bytes(self) -> int:
        if self._offsets is None:
            return 0
        return int(self._offsets.nbytes + self._ids.nbytes + self._dists.nbytes)


class RNCHIndex(CumulativeHistogramMixin, RNListIndex):
    """Approximate CH Index: cumulative histograms over truncated RN-Lists.

    ρ queries use the O(1) bin lookup of Algorithm 4 restricted to the stored
    τ-neighbourhood; δ queries are inherited from :class:`RNListIndex`.
    As in :class:`~repro.indexes.ch_index.CHIndex`, ``bin_width`` is the
    configured value (``None`` = auto) and ``bin_width_`` the one resolved at
    fit time, so refits never reuse a stale width.
    """

    name: ClassVar[str] = "rn-ch"
    exact: ClassVar[bool] = False

    def __init__(
        self,
        tau: float,
        metric: "str | Metric" = "euclidean",
        bin_width: Optional[float] = None,
        default_bins: int = 64,
        build_block_rows: int = 512,
        scan_block: int = 32,
        backend: "str" = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        super().__init__(
            tau,
            metric,
            build_block_rows,
            scan_block,
            backend=backend,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
        )
        self._init_bin_width(bin_width, default_bins)
        self._hist_offsets: Optional[np.ndarray] = None
        self._hist_values: Optional[np.ndarray] = None

    def _build(self) -> None:
        super()._build()
        if self.bin_width is None:
            self.bin_width_ = self.tau / self.default_bins
        else:
            self.bin_width_ = float(self.bin_width)
        w = float(self.bin_width_)
        offsets = self._offsets
        n = self.n
        lengths = np.diff(offsets)
        # Bins must cover every stored neighbour, i.e. up to τ.
        n_bins = np.full(n, int(np.floor(self.tau / w)) + 1, dtype=np.int64)
        edges = w * np.arange(1, int(n_bins[0]) + 1, dtype=np.float64)
        hist_offsets, values = build_row_histograms(self._dists, offsets, n_bins, edges)
        values[hist_offsets[1:] - 1] = lengths
        self._hist_offsets = hist_offsets
        self._hist_values = values

    def _shard_arrays(self):
        arrays = super()._shard_arrays()
        arrays["hist_offsets"] = self._hist_offsets
        arrays["hist_values"] = self._hist_values
        return arrays

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        if dc > self.tau:
            return super().rho_all(dc)
        return self._ch_rho_wave([float(dc)])[0]

    def rho_all_multi(self, dcs) -> np.ndarray:
        """Histogram-guided ρ for every ``dc ≤ τ`` in one ``(dc, chunk)``
        wave; cut-offs beyond τ take the no-search truncated-length answer."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        rho = np.empty((len(dcs), self.n), dtype=np.int64)
        beyond = dcs > self.tau
        if beyond.any():
            rho[beyond] = np.diff(self._offsets)[None, :]
        within = np.flatnonzero(~beyond)
        if len(within):
            rows = self._ch_rho_wave([float(dcs[i]) for i in within])
            for i, row in zip(within, rows):
                rho[i] = row
        return rho

    def histogram_memory_bytes(self) -> int:
        if self._hist_values is None:
            return 0
        return int(self._hist_values.nbytes + self._hist_offsets.nbytes)

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.histogram_memory_bytes()
