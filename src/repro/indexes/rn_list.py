"""Approximate list-based indexes — the RN-List of paper Section 3.3.

For memory-constrained systems the paper truncates every N-List at a
*neighbour threshold* τ: only neighbours with ``dist < τ`` are stored (the
Reduced Neighbor List).  Consequences, all reproduced here:

* ρ is **exact** whenever ``dc ≤ τ``; for ``dc > τ`` no search is performed
  and the (undercounted) list length is returned — the paper's "running time
  drops at the expense of loss of accuracy";
* δ is exact for objects whose denser neighbour lies within τ (the vast
  majority: non-peaks have small δ); objects whose RN-List contains no denser
  neighbour get δ set to a large value so they still surface in the decision
  graph as centre/outlier candidates;
* memory shrinks from Θ(n²) to Θ(n·k_τ), the paper's Figure 9b.

A row that happens to contain *all* ``n-1`` neighbours is provably complete,
so its peak δ uses the exact ``max_q dist`` convention — which makes a
τ ≥ diameter RN-List bit-identical to the exact List Index (tested).

:class:`RNCHIndex` layers cumulative histograms over the truncated lists,
i.e. the approximate variant of the CH Index (the paper applies the
approximation "to the above indices", plural).
"""

from __future__ import annotations

from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, TieBreak
from repro.geometry.distance import Metric
from repro.indexes.base import DPCIndex

__all__ = ["RNListIndex", "RNCHIndex"]


class RNListIndex(DPCIndex):
    """Truncated (approximate) List Index with neighbour threshold τ.

    Parameters
    ----------
    tau:
        Truncation radius.  The paper's guidance: "usually τ should be set to
        a large value greater than any possible value of dc to be tested".
    metric, build_block_rows, scan_block:
        As in :class:`~repro.indexes.list_index.ListIndex`.
    """

    name: ClassVar[str] = "rn-list"
    exact: ClassVar[bool] = False

    def __init__(
        self,
        tau: float,
        metric: "str | Metric" = "euclidean",
        build_block_rows: int = 512,
        scan_block: int = 32,
    ):
        super().__init__(metric)
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if build_block_rows <= 0:
            raise ValueError(f"build_block_rows must be positive, got {build_block_rows}")
        if scan_block <= 0:
            raise ValueError(f"scan_block must be positive, got {scan_block}")
        self.tau = float(tau)
        self.build_block_rows = build_block_rows
        self.scan_block = scan_block
        # CSR layout: row p occupies [offsets[p], offsets[p+1]) in ids/dists.
        self._offsets: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._dists: Optional[np.ndarray] = None
        self._big_delta: float = float("inf")

    # -- construction ------------------------------------------------------------

    def _build(self) -> None:
        points = self.points
        n = len(points)
        if n < 2:
            raise ValueError(f"{type(self).__name__} needs at least 2 points")
        all_ids = np.arange(n, dtype=np.int32)
        row_ids: list = []
        row_dists: list = []
        lengths = np.empty(n, dtype=np.int64)
        max_seen = 0.0
        for start in range(0, n, self.build_block_rows):
            stop = min(start + self.build_block_rows, n)
            block = self.metric.cross(points[start:stop], points)
            max_seen = max(max_seen, float(block.max()))
            for i, p in enumerate(range(start, stop)):
                row = block[i]
                keep = (row < self.tau) & (all_ids != p)
                neigh = all_ids[keep]
                d = row[keep]
                sorting = np.argsort(d, kind="stable")
                row_ids.append(neigh[sorting])
                row_dists.append(d[sorting])
                lengths[p] = len(neigh)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        self._offsets = offsets
        self._ids = (
            np.concatenate(row_ids) if offsets[-1] else np.empty(0, dtype=np.int32)
        )
        self._dists = (
            np.concatenate(row_dists) if offsets[-1] else np.empty(0, dtype=np.float64)
        )
        # "A large value" for truncated peaks: anything ≥ the data diameter
        # keeps them at the top of the decision graph.
        self._big_delta = max(max_seen, self.tau)

    def row_lengths(self) -> np.ndarray:
        self._require_fitted()
        return np.diff(self._offsets)

    # -- ρ query -------------------------------------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        offsets, dists = self._offsets, self._dists
        n = self.n
        rho = np.empty(n, dtype=np.int64)
        if dc > self.tau:
            # Paper 5.3.1: beyond τ no search happens; the truncated length is
            # the (approximate) answer.
            rho[:] = np.diff(offsets)
            return rho
        for p in range(n):
            start, stop = offsets[p], offsets[p + 1]
            rho[p] = np.searchsorted(dists[start:stop], dc, side="left")
        self._stats.binary_searches += n
        return rho

    # -- δ query ---------------------------------------------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        self._require_fitted()
        n = self.n
        if len(order) != n:
            raise ValueError(f"order has {len(order)} objects, index has {n}")
        offsets, ids, dists = self._offsets, self._ids, self._dists
        lengths = np.diff(offsets)
        delta = np.empty(n, dtype=np.float64)
        mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)

        # Vectorised near-to-far scan over the CSR rows, mirroring
        # ListIndex.delta_all but with per-row lengths.
        unresolved = np.arange(n)
        col = 0
        max_len = int(lengths.max()) if n else 0
        block = self.scan_block
        while len(unresolved) and col < max_len:
            width = min(block, max_len - col)
            rows = unresolved
            base = offsets[rows][:, None] + col + np.arange(width)[None, :]
            valid = (col + np.arange(width))[None, :] < lengths[rows][:, None]
            flat = np.where(valid, base, 0)
            cand = ids[flat] if len(ids) else np.zeros_like(flat, dtype=np.int32)
            if order.tie_break is TieBreak.ID:
                denser = order.rank[cand] < order.rank[rows, None]
            else:
                denser = order.rho[cand] > order.rho[rows, None]
            denser &= valid
            self._stats.objects_scanned += int(valid.sum())
            found = denser.any(axis=1)
            if found.any():
                first = denser[found].argmax(axis=1)
                hit_rows = rows[found]
                flat_hit = offsets[hit_rows] + col + first
                delta[hit_rows] = dists[flat_hit]
                mu[hit_rows] = ids[flat_hit]
                unresolved = unresolved[~found]
            # Rows whose list is exhausted can never resolve; drop them now to
            # keep later blocks small.
            unresolved = unresolved[lengths[unresolved] > col + width]
            col += width

        # No denser neighbour within τ.  Two cases:
        resolved = mu != NO_NEIGHBOR
        for p in np.flatnonzero(~resolved):
            if lengths[p] == n - 1:
                # Complete row ⇒ p is a true peak; exact convention applies.
                delta[p] = dists[offsets[p + 1] - 1]
            else:
                delta[p] = self._big_delta
        return delta, mu

    # -- bookkeeping --------------------------------------------------------------------

    def memory_bytes(self) -> int:
        if self._offsets is None:
            return 0
        return int(self._offsets.nbytes + self._ids.nbytes + self._dists.nbytes)


class RNCHIndex(RNListIndex):
    """Approximate CH Index: cumulative histograms over truncated RN-Lists.

    ρ queries use the O(1) bin lookup of Algorithm 4 restricted to the stored
    τ-neighbourhood; δ queries are inherited from :class:`RNListIndex`.
    """

    name: ClassVar[str] = "rn-ch"
    exact: ClassVar[bool] = False

    def __init__(
        self,
        tau: float,
        metric: "str | Metric" = "euclidean",
        bin_width: Optional[float] = None,
        default_bins: int = 64,
        build_block_rows: int = 512,
        scan_block: int = 32,
    ):
        super().__init__(tau, metric, build_block_rows, scan_block)
        if bin_width is not None and bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if default_bins <= 0:
            raise ValueError(f"default_bins must be positive, got {default_bins}")
        self.bin_width = bin_width
        self.default_bins = default_bins
        self._hist_offsets: Optional[np.ndarray] = None
        self._hist_values: Optional[np.ndarray] = None

    def _build(self) -> None:
        super()._build()
        if self.bin_width is None:
            self.bin_width = self.tau / self.default_bins
        w = float(self.bin_width)
        offsets, dists = self._offsets, self._dists
        n = self.n
        lengths = np.diff(offsets)
        # Bins must cover every stored neighbour, i.e. up to τ.
        n_bins = np.full(n, int(np.floor(self.tau / w)) + 1, dtype=np.int64)
        hist_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(n_bins, out=hist_offsets[1:])
        values = np.empty(int(hist_offsets[-1]), dtype=np.int64)
        for p in range(n):
            row = dists[offsets[p] : offsets[p + 1]]
            edges = w * np.arange(1, n_bins[p] + 1, dtype=np.float64)
            values[hist_offsets[p] : hist_offsets[p + 1]] = np.searchsorted(
                row, edges, side="left"
            )
            values[hist_offsets[p + 1] - 1] = lengths[p]
        self._hist_offsets = hist_offsets
        self._hist_values = values

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        if dc > self.tau:
            return super().rho_all(dc)
        w = float(self.bin_width)
        offsets, dists = self._offsets, self._dists
        h_off, values = self._hist_offsets, self._hist_values
        n = self.n
        bin_real = dc / w
        target = int(np.floor(bin_real))
        on_edge = bin_real == target
        rho = np.empty(n, dtype=np.int64)
        for p in range(n):
            hs, he = h_off[p], h_off[p + 1]
            size = he - hs
            if target >= size:
                rho[p] = values[he - 1]
            elif on_edge:
                rho[p] = values[hs + target - 1] if target > 0 else 0
            else:
                first = values[hs + target - 1] if target > 0 else 0
                last = values[hs + target]
                if first == last:
                    rho[p] = first
                else:
                    row = dists[offsets[p] + first : offsets[p] + last]
                    rho[p] = first + np.searchsorted(row, dc, side="left")
                    self._stats.objects_scanned += int(last - first)
                    self._stats.binary_searches += 1
        return rho

    def histogram_memory_bytes(self) -> int:
        if self._hist_values is None:
            return 0
        return int(self._hist_values.nbytes + self._hist_offsets.nbytes)

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.histogram_memory_bytes()
