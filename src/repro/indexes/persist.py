"""Save / load fitted indexes.

The paper's Table 4 is the motivation: List/CH construction is
``O(n² log n)`` and dominates everything else, so a user iterating on ``dc``
across sessions wants to pay it once.  ``save_index`` writes a single
``.npz`` with the constructor parameters, the points, and — for the
list-based indexes — the expensive precomputed arrays, so ``load_index``
restores them without recomputation.  Tree indexes persist their flattened
:class:`~repro.indexes.kernels.FlatTree` image (the structure every query
path consumes), so a load — and a serving cold start — skips both the
rebuild and the re-flatten and is query-ready immediately.  The grid
rebuilds from points at load time (one vectorised binning pass).

Round-trip contract (tested): a loaded index answers every query exactly
like the one that was saved, and a loaded flat image equals a fresh
flatten/bulk-build of the stored points bit for bit.

Durability contract: :func:`save_index` is **atomic** — the payload is
written to a same-directory temp file, fsynced, and ``os.replace``-d into
place, so a crash mid-save leaves either the old file or the new one,
never a truncated hybrid.  :func:`load_index` treats every unreadable or
integrity-failing payload as a :class:`CorruptSnapshotError` (a
``ValueError``) and, by default, **quarantines** the bad file by renaming
it to ``<path>.corrupt`` — a serving process restarted in a crash loop
then gets a clean :exc:`FileNotFoundError` instead of re-tripping on the
same bytes, and the evidence survives for the operator.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zipfile
import zlib
from typing import Any, Dict, Optional

import numpy as np

from repro import faults
from repro.indexes.base import DPCIndex
from repro.indexes.ch_index import CHIndex
from repro.indexes.kernels import FlatTree
from repro.indexes.list_index import ListIndex
from repro.indexes.partition import PartitionedIndex
from repro.indexes.registry import INDEX_CLASSES
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.treebase import TreeIndexBase

__all__ = [
    "CorruptSnapshotError",
    "export_index_image",
    "index_fingerprint",
    "load_index",
    "restore_index_image",
    "save_index",
]


class CorruptSnapshotError(ValueError):
    """A snapshot file is unreadable or failed an integrity check.

    Subclasses ``ValueError`` so callers that guarded the old error type
    keep working; carries the offending ``path`` and, when quarantine ran,
    the ``quarantined_to`` path the bad file was renamed to.  (A valid
    ``.npz`` that simply isn't an index file still raises ``KeyError`` for
    the missing ``meta`` entry — that's a wrong-file mistake, not
    corruption, and the file is left alone.)
    """

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        quarantined_to: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.quarantined_to = quarantined_to


def _quarantine(path: str) -> Optional[str]:
    """Rename a corrupt payload to ``<path>.corrupt`` (best effort)."""
    target = f"{path}.corrupt"
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def _corrupt(path: str, message: str, quarantine: bool) -> CorruptSnapshotError:
    quarantined_to = _quarantine(path) if quarantine else None
    if quarantined_to is not None:
        message = f"{message} (quarantined to {quarantined_to!r})"
    return CorruptSnapshotError(message, path=path, quarantined_to=quarantined_to)

_FORMAT_VERSION = 1

#: Version of the fingerprint *recipe*; bumping it retires every cached
#: result keyed on older fingerprints (the serving cache keys on the
#: fingerprint string, so a recipe change must never collide with old keys).
#: v2 added the ``segments`` entry (LSM base/delta layout): a segmented
#: index and its compacted equivalent answer queries identically, but they
#: are different *payloads* — restoring one must reproduce the other's
#: layout exactly for the round-trip contract to stay checkable.
_FINGERPRINT_VERSION = 2

#: Index classes whose heavy arrays are persisted (vs rebuilt on load).
_ARRAY_STATE = {
    ListIndex: ("_neighbor_ids", "_neighbor_dists"),
    CHIndex: ("_neighbor_ids", "_neighbor_dists", "_hist_offsets", "_hist_values"),
    RNListIndex: ("_offsets", "_ids", "_dists"),
    RNCHIndex: ("_offsets", "_ids", "_dists", "_hist_offsets", "_hist_values"),
}


def _state_attrs(index: DPCIndex):
    # Subclass entries must win over base entries (CHIndex before ListIndex).
    for cls in type(index).__mro__:
        if cls in _ARRAY_STATE:
            return _ARRAY_STATE[cls]
    return ()


#: Runtime configuration is machine/session state, not index state: the
#: execution backend (repro.indexes.parallel) because a payload built on a
#: 64-core box must restore cleanly on a laptop, and the construction path
#: (``build="bulk"|"objects"``) because results are bit-identical across
#: both and a restored index does not rebuild at all.  These keys are never
#: written and are dropped defensively when found in a (hand-edited /
#: future-version) file.  Keeping ``build`` out of the params also keeps
#: the fingerprint recipe unchanged across this PR.
_EXECUTION_PARAMS = ("backend", "n_jobs", "chunk_size", "build")


def _constructor_params(index: DPCIndex) -> Dict[str, Any]:
    """Keyword arguments that recreate ``index`` (metric by name).

    Deliberately a fixed allowlist — in particular the execution-backend
    knobs (``backend``/``n_jobs``/``chunk_size``) exist on every index but
    must never be serialised (see :data:`_EXECUTION_PARAMS`).
    """
    params: Dict[str, Any] = {"metric": index.metric.name}
    for attr in (
        "build_block_rows",
        "scan_block",
        "bin_width",
        "default_bins",
        "tau",
        "capacity",
        "max_depth",
        "max_entries",
        "min_entries",
        "packing",
        "leaf_size",
        "cell_size",
        "target_occupancy",
        "delta_mode",
        "density_pruning",
        "distance_pruning",
        "frontier",
        # Partitioned layer (repro.indexes.partition).  ``halo`` here is the
        # *configured* initial width; the fit-resolved ``halo_`` is excluded
        # on purpose — results are independent of it, so two snapshots that
        # only differ in how far their halos auto-grew must share answers
        # (they still fingerprint apart via the configured params).
        "family",
        "partitions",
        "halo",
        "scheme",
        "family_params",
    ):
        if hasattr(index, attr):
            params[attr] = getattr(index, attr)
    return params


def _resolved_params(index: DPCIndex) -> Dict[str, float]:
    """Fit-resolved values (configured params may be None = auto)."""
    return {
        attr: float(getattr(index, attr))
        for attr in ("bin_width_", "cell_size_")
        if getattr(index, attr, None) is not None
    }


def index_fingerprint(index: DPCIndex) -> str:
    """Stable content fingerprint of a fitted index.

    SHA-256 over the index family, its constructor parameters, the
    fit-resolved parameters and the exact point bytes.  Two indexes with
    equal fingerprints answer every ``quantities``/``cluster`` query
    identically (same family + same params + same points ⇒ deterministic
    build ⇒ identical answers), so the serving layer keys its result cache
    on this string.  Execution-backend configuration is deliberately
    excluded (results are bit-identical across backends); the fingerprint
    survives a :func:`save_index`/:func:`load_index` round trip unchanged.
    """
    if not index.is_fitted:
        raise ValueError("cannot fingerprint an unfitted index; call fit(points) first")
    points = index.points
    head = {
        "fingerprint_version": _FINGERPRINT_VERSION,
        "index": index.name,
        "params": _constructor_params(index),
        "resolved": _resolved_params(index),
        "dtype": str(points.dtype),
        "shape": list(points.shape),
        "segments": [int(s) for s in index._segment_lengths()],
    }
    digest = hashlib.sha256(json.dumps(head, sort_keys=True).encode())
    digest.update(np.ascontiguousarray(points).tobytes())
    return digest.hexdigest()


def _flat_digest(flat: FlatTree) -> str:
    """SHA-256 over a flat tree image (levels + every array, fixed order).

    The content fingerprint hashes family + params + points — enough when
    every structure was rebuilt from those points on load.  A persisted
    flat image is loaded verbatim instead, so it carries its own integrity
    hash: without one, a payload with intact points but corrupted or
    hand-edited ``flat*`` arrays would load cleanly and silently serve
    wrong answers under a fingerprint honest snapshots share.  Like the
    fingerprint, this is a keyless checksum — it catches corruption and
    casual edits, not an adversary who recomputes the digest; snapshot
    files are trusted inputs.
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps([[int(a), int(b)] for a, b in flat.levels]).encode()
    )
    for name in FlatTree.ARRAY_FIELDS:
        value = np.ascontiguousarray(getattr(flat, name))
        digest.update(name.encode())
        digest.update(str(value.dtype).encode())
        digest.update(json.dumps(list(value.shape)).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _partition_digest(halo: float, assign: np.ndarray, members) -> str:
    """SHA-256 over a partitioned layout (halo + assignment + member ids).

    Same rationale as :func:`_flat_digest`: the per-partition payload is
    loaded verbatim instead of being re-derived from the points, so it
    carries its own integrity hash — a corrupted or hand-edited member
    array would otherwise fit plausible sub-indexes that silently answer
    wrong under an honest fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(repr(float(halo)).encode())
    digest.update(np.ascontiguousarray(assign, dtype=np.int64).tobytes())
    for mem in members:
        digest.update(b"|")
        digest.update(np.ascontiguousarray(mem, dtype=np.int64).tobytes())
    return digest.hexdigest()


def export_index_image(index: DPCIndex) -> "tuple[Dict[str, Any], Dict[str, np.ndarray]]":
    """A fitted index as ``(meta, arrays)`` — the persisted payload, in memory.

    ``meta`` is the JSON-safe header :func:`save_index` writes (format
    version, constructor params, fingerprint, segment/flat/partition
    layout); ``arrays`` the named numpy payload (``points``, per-family
    state, the flat query image).  :func:`restore_index_image` is the exact
    inverse.  ``save_index`` is this plus an atomic file write — the split
    exists so the serving tier can publish the same image into shared
    memory and have worker processes attach and restore it **without a file
    round trip or a per-worker copy** (the restored index's big arrays are
    views into the attached segment).
    """
    if not index.is_fitted:
        raise ValueError("cannot save an unfitted index; call fit(points) first")
    meta = {
        "format_version": _FORMAT_VERSION,
        "index_name": index.name,
        "params": _constructor_params(index),
        "build_seconds": index.build_seconds,
        "fingerprint": index_fingerprint(index),
        "fingerprint_version": _FINGERPRINT_VERSION,
        # LSM segment layout.  Two entries mean the points array splits into
        # a base prefix and a delta suffix; the load path restores the base
        # structures verbatim and re-ingests the suffix through the same
        # deterministic delta builders, reproducing the side image bit for
        # bit (the list family merges on append, so it is always [n]).
        "segments": [int(s) for s in index._segment_lengths()],
    }
    # The CH histograms were built with the *resolved* bin width, so a
    # restored index must query with it, not re-resolve.  (Indexes that
    # rebuild from points on load re-resolve deterministically and ignore
    # this; it must stay in lockstep with the fingerprint recipe.)
    resolved = _resolved_params(index)
    if resolved:
        meta["resolved"] = resolved
    arrays = {"points": index.points}
    state = _state_attrs(index)
    meta["state_attrs"] = list(state)
    for attr in state:
        value = getattr(index, attr)
        if value is None:
            raise ValueError(f"index state {attr} is missing; index looks corrupt")
        arrays[f"state{attr}"] = value
    if hasattr(index, "_big_delta"):
        meta["big_delta"] = float(index._big_delta)
    if isinstance(index, PartitionedIndex):
        # Per-partition payload: the tile assignment, the resolved halo and
        # each tile's member ids.  A load adopts the layout verbatim (no
        # curve sort, no halo rect pass) and refits the per-tile
        # sub-indexes deterministically over their stored members.
        arrays["partassign"] = index._assign
        for t, mem in enumerate(index._members):
            arrays[f"partmembers{t}"] = mem
        meta["partitioned"] = {
            "partitions": int(index.partitions_),
            "halo": float(index.halo_),
            "digest": _partition_digest(
                index.halo_, index._assign, index._members
            ),
        }
    if isinstance(index, TreeIndexBase):
        # Persist the flattened query image: a load (serving cold start)
        # then skips both the rebuild and the re-flatten.
        flat = index._flat_tree()
        for name in FlatTree.ARRAY_FIELDS:
            arrays[f"flat{name}"] = getattr(flat, name)
        meta["flat"] = {
            "levels": [[int(a), int(b)] for a, b in flat.levels],
            "n_nodes": int(flat.n_nodes),
            "build": index.build_,
            "digest": _flat_digest(flat),
        }
    return meta, arrays


def save_index(index: DPCIndex, path: str) -> None:
    """Serialise a fitted index to ``path`` (a ``.npz`` file), atomically.

    The payload lands in a same-directory temp file first and is renamed
    over ``path`` only once fully written and fsynced — a crash mid-save
    (power loss, OOM kill, the injected ``persist.save`` fault) leaves the
    previous file intact or no file at all, never a truncated one.
    """
    meta, arrays = export_index_image(index)
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"  # np.savez appends it; the rename target must match
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, meta=json.dumps(meta), **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        # Chaos point: a crash here (temp written, not yet renamed) must
        # leave the previous payload at ``path`` untouched.
        faults.trip("persist.save")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if faults.decide("persist.payload") is not None:
        _flip_byte(path)  # simulated bitrot, after the durable rename


def _flip_byte(path: str) -> None:
    """XOR one mid-file byte in place (fault injection only)."""
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        offset = size // 2
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def load_index(path: str, quarantine: bool = True) -> DPCIndex:
    """Restore an index saved by :func:`save_index`.

    List-based indexes come back without recomputation; tree indexes
    restore their persisted flat image (no rebuild, no re-flatten); the
    grid rebuilds from the stored points with the stored parameters.

    An unreadable payload (truncated file, bitrot) or a failed integrity
    check raises :class:`CorruptSnapshotError`; unless ``quarantine=False``
    the bad file is first renamed to ``<path>.corrupt`` so a retry loop
    fails cleanly instead of re-reading the same bytes.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {key: data[key] for key in data.files if key != "meta"}
            if "points" not in arrays:
                raise KeyError("points")
    except FileNotFoundError:
        raise  # missing ≠ corrupt: the caller's path is simply wrong
    except KeyError:
        raise  # a valid .npz that isn't an index file (wrong file, not rot)
    except (zipfile.BadZipFile, zlib.error, struct.error, EOFError, ValueError, OSError) as exc:
        raise _corrupt(
            path,
            f"unreadable index payload in {path!r} "
            f"({type(exc).__name__}: {exc}) — file truncated or corrupt",
            quarantine,
        ) from exc
    try:
        return restore_index_image(meta, arrays)
    except CorruptSnapshotError as exc:
        # Integrity failures gain the file context (and quarantine) here;
        # in-memory restores (the serving workers) surface them bare.
        raise _corrupt(path, f"{exc} — payload {path!r}", quarantine) from exc


def restore_index_image(
    meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> DPCIndex:
    """Rebuild a fitted index from an exported ``(meta, arrays)`` image.

    The exact inverse of :func:`export_index_image`, and the shared tail of
    :func:`load_index`: list-based families restore their precomputed
    arrays without recomputation, tree families adopt the flat query image
    verbatim (digest-checked), the partitioned wrapper adopts its stored
    tile layout, and the grid refits deterministically from the points.
    The restored index keeps **views** of the arrays it was handed wherever
    it can — restoring from shared-memory-attached arrays copies nothing
    big — and the stored content fingerprint is re-verified, so a corrupt
    or torn image raises :class:`CorruptSnapshotError` (without the file
    quarantine, which only :func:`load_index` owns) instead of serving
    wrong answers.
    """
    points = arrays["points"]
    state_attrs = meta.get("state_attrs", [])
    state = {attr: arrays[f"state{attr}"] for attr in state_attrs}
    flat_meta = meta.get("flat")
    flat_arrays = (
        {name_: arrays[f"flat{name_}"] for name_ in FlatTree.ARRAY_FIELDS}
        if flat_meta is not None
        else None
    )
    part_meta = meta.get("partitioned")
    part_assign = part_members = None
    if part_meta is not None:
        part_assign = arrays["partassign"]
        part_members = [
            arrays[f"partmembers{t}"] for t in range(int(part_meta["partitions"]))
        ]
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported index file version {meta.get('format_version')!r}"
        )
    name = meta["index_name"]
    if name not in INDEX_CLASSES:
        raise ValueError(f"file holds unknown index type {name!r}")
    cls = INDEX_CLASSES[name]
    params = dict(meta["params"])
    for key in _EXECUTION_PARAMS:
        params.pop(key, None)

    index = cls(**params)
    segments = meta.get("segments") or [len(points)]
    base_n = int(segments[0])
    if state:
        # Restore without rebuilding: place points + arrays directly.
        index.points = np.ascontiguousarray(points, dtype=np.float64)
        for attr, value in state.items():
            setattr(index, attr, value)
        for attr, value in meta.get("resolved", {}).items():
            setattr(index, attr, value)
        if "big_delta" in meta:
            index._big_delta = meta["big_delta"]
        index.build_seconds = float(meta.get("build_seconds", float("nan")))
    elif flat_arrays is not None and isinstance(index, TreeIndexBase):
        # Restore the flat query image directly — no rebuild, no flatten.
        # The image covers the base segment; any delta suffix re-ingests
        # below through the same deterministic side-image builder.
        index.points = np.ascontiguousarray(points[:base_n], dtype=np.float64)
        flat = FlatTree.from_arrays(
            flat_arrays, flat_meta["levels"], flat_meta["n_nodes"]
        )
        # Every file that carries flat arrays carries their digest (no older
        # format ever wrote them), so absence is as suspect as a mismatch —
        # accepting it would let an edited payload skip the integrity check.
        stored_digest = flat_meta.get("digest")
        if stored_digest is None:
            raise CorruptSnapshotError(
                "flat image has no integrity digest — image corrupt or "
                "hand-edited"
            )
        actual_digest = _flat_digest(flat)
        if actual_digest != stored_digest:
            raise CorruptSnapshotError(
                f"flat-image digest mismatch: stored {stored_digest[:12]}…, "
                f"recomputed {actual_digest[:12]}… — image corrupt or "
                "hand-edited"
            )
        index._flat = flat
        index.build_ = flat_meta.get("build")
        index._base_n = base_n
        index.build_seconds = float(meta.get("build_seconds", float("nan")))
        if base_n < len(points):
            index.add_points(points[base_n:])
    elif part_meta is not None and isinstance(index, PartitionedIndex):
        # Adopt the per-partition layout verbatim; the per-tile sub-indexes
        # refit deterministically over their stored member ids.
        stored_digest = part_meta.get("digest")
        actual_digest = _partition_digest(
            part_meta["halo"], part_assign, part_members
        )
        if stored_digest is None or actual_digest != stored_digest:
            raise CorruptSnapshotError(
                "partition-layout digest mismatch — image corrupt or "
                "hand-edited"
            )
        index._restore_layout(
            points, part_meta["halo"], part_assign, part_members
        )
        index.build_seconds = float(meta.get("build_seconds", float("nan")))
    else:
        # Families that rebuild from points on load (the grid): refit the
        # base segment, then re-ingest the delta suffix so the restored
        # side image — and therefore the v2 fingerprint — matches the
        # saved one exactly.
        if base_n < len(points):
            index.fit(points[:base_n])
            index.add_points(points[base_n:])
        else:
            index.fit(points)
    stored = meta.get("fingerprint")
    if stored is not None and meta.get("fingerprint_version") == _FINGERPRINT_VERSION:
        # (A payload from an older/newer recipe skips verification; its
        # fingerprint is simply recomputed lazily under the current recipe.)
        # Integrity check: the restored index must hash to what was saved —
        # a mismatch means the file was edited or the recipe drifted, and a
        # serving cache keyed on the stale string would silently miss (or,
        # worse, a hand-edited payload could impersonate another snapshot).
        actual = index_fingerprint(index)
        if actual != stored:
            raise CorruptSnapshotError(
                f"fingerprint mismatch: stored {stored[:12]}…, recomputed "
                f"{actual[:12]}… — image corrupt or hand-edited"
            )
        index._fingerprint_ = stored
    return index
