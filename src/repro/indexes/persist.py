"""Save / load fitted indexes.

The paper's Table 4 is the motivation: List/CH construction is
``O(n² log n)`` and dominates everything else, so a user iterating on ``dc``
across sessions wants to pay it once.  ``save_index`` writes a single
``.npz`` with the constructor parameters, the points, and — for the
list-based indexes — the expensive precomputed arrays, so ``load_index``
restores them without recomputation.  Tree and grid indexes rebuild from
points at load time (their construction is ``O(n log n)``, usually cheaper
than deserialising a pointer structure).

Round-trip contract (tested): a loaded index answers every query exactly
like the one that was saved.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.indexes.base import DPCIndex
from repro.indexes.ch_index import CHIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.registry import INDEX_CLASSES
from repro.indexes.rn_list import RNCHIndex, RNListIndex

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1

#: Index classes whose heavy arrays are persisted (vs rebuilt on load).
_ARRAY_STATE = {
    ListIndex: ("_neighbor_ids", "_neighbor_dists"),
    CHIndex: ("_neighbor_ids", "_neighbor_dists", "_hist_offsets", "_hist_values"),
    RNListIndex: ("_offsets", "_ids", "_dists"),
    RNCHIndex: ("_offsets", "_ids", "_dists", "_hist_offsets", "_hist_values"),
}


def _state_attrs(index: DPCIndex):
    # Subclass entries must win over base entries (CHIndex before ListIndex).
    for cls in type(index).__mro__:
        if cls in _ARRAY_STATE:
            return _ARRAY_STATE[cls]
    return ()


#: Runtime execution configuration (repro.indexes.parallel) is machine
#: state, not index state: a payload built on a 64-core box must restore
#: cleanly on a laptop, and results are bit-identical across backends
#: anyway.  These keys are never written and are dropped defensively when
#: found in a (hand-edited / future-version) file.
_EXECUTION_PARAMS = ("backend", "n_jobs", "chunk_size")


def _constructor_params(index: DPCIndex) -> Dict[str, Any]:
    """Keyword arguments that recreate ``index`` (metric by name).

    Deliberately a fixed allowlist — in particular the execution-backend
    knobs (``backend``/``n_jobs``/``chunk_size``) exist on every index but
    must never be serialised (see :data:`_EXECUTION_PARAMS`).
    """
    params: Dict[str, Any] = {"metric": index.metric.name}
    for attr in (
        "build_block_rows",
        "scan_block",
        "bin_width",
        "default_bins",
        "tau",
        "capacity",
        "max_depth",
        "max_entries",
        "min_entries",
        "packing",
        "leaf_size",
        "cell_size",
        "target_occupancy",
        "delta_mode",
        "density_pruning",
        "distance_pruning",
        "frontier",
    ):
        if hasattr(index, attr):
            params[attr] = getattr(index, attr)
    return params


def save_index(index: DPCIndex, path: str) -> None:
    """Serialise a fitted index to ``path`` (a ``.npz`` file)."""
    if not index.is_fitted:
        raise ValueError("cannot save an unfitted index; call fit(points) first")
    meta = {
        "format_version": _FORMAT_VERSION,
        "index_name": index.name,
        "params": _constructor_params(index),
        "build_seconds": index.build_seconds,
    }
    # Fit-resolved values (configured params may be None = auto): the CH
    # histograms were built with the *resolved* bin width, so a restored
    # index must query with it, not re-resolve.
    resolved = {
        attr: float(getattr(index, attr))
        for attr in ("bin_width_",)
        if getattr(index, attr, None) is not None
    }
    if resolved:
        meta["resolved"] = resolved
    arrays = {"points": index.points}
    state = _state_attrs(index)
    meta["state_attrs"] = list(state)
    for attr in state:
        value = getattr(index, attr)
        if value is None:
            raise ValueError(f"index state {attr} is missing; index looks corrupt")
        arrays[f"state{attr}"] = value
    if hasattr(index, "_big_delta"):
        meta["big_delta"] = float(index._big_delta)
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)


def load_index(path: str) -> DPCIndex:
    """Restore an index saved by :func:`save_index`.

    List-based indexes come back without recomputation; tree/grid indexes
    are rebuilt from the stored points with the stored parameters.
    """
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index file version {meta.get('format_version')!r}"
            )
        name = meta["index_name"]
        if name not in INDEX_CLASSES:
            raise ValueError(f"file holds unknown index type {name!r}")
        cls = INDEX_CLASSES[name]
        params = dict(meta["params"])
        for key in _EXECUTION_PARAMS:
            params.pop(key, None)
        points = data["points"]
        state_attrs = meta.get("state_attrs", [])
        state = {attr: data[f"state{attr}"] for attr in state_attrs}

    index = cls(**params)
    if state:
        # Restore without rebuilding: place points + arrays directly.
        index.points = np.ascontiguousarray(points, dtype=np.float64)
        for attr, value in state.items():
            setattr(index, attr, value)
        for attr, value in meta.get("resolved", {}).items():
            setattr(index, attr, value)
        if "big_delta" in meta:
            index._big_delta = meta["big_delta"]
        index.build_seconds = float(meta.get("build_seconds", float("nan")))
    else:
        index.fit(points)
    return index
