"""Index structures for DPC: list-based, histogram, approximate, and trees."""

from repro.indexes.base import DPCIndex, IndexStats
from repro.indexes.build import (
    bulk_build_kdtree,
    bulk_build_quadtree,
    bulk_build_str,
    tree_from_flat,
)
from repro.indexes.parallel import ExecutionBackend, plan_chunks
from repro.indexes.list_index import ListIndex
from repro.indexes.ch_index import CHIndex
from repro.indexes.rn_list import RNListIndex, RNCHIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.grid import GridIndex
from repro.indexes.persist import (
    CorruptSnapshotError,
    index_fingerprint,
    load_index,
    save_index,
)
from repro.indexes.registry import available_indexes, make_index

__all__ = [
    "DPCIndex",
    "IndexStats",
    "ExecutionBackend",
    "plan_chunks",
    "ListIndex",
    "CHIndex",
    "RNListIndex",
    "RNCHIndex",
    "QuadtreeIndex",
    "RTreeIndex",
    "KDTreeIndex",
    "GridIndex",
    "available_indexes",
    "make_index",
    "save_index",
    "load_index",
    "index_fingerprint",
    "CorruptSnapshotError",
    "bulk_build_str",
    "bulk_build_kdtree",
    "bulk_build_quadtree",
    "tree_from_flat",
]
